//! Degraded read-only mode: survive a dying disk, then resume after repair.
//!
//! ```text
//! cargo run --example degraded_mode
//! ```
//!
//! Builds a W-BOX document on a WAL-journaled pager whose disk is governed
//! by a deterministic fault plan, then kills the write path mid-session.
//! The pager retries with tick backoff, gives up when the fault outlives
//! the budget, parks the unwritten frames in its volatile overlay, and
//! degrades to read-only: every lookup keeps answering committed state
//! while mutations fail fast with a typed reason. After the "disk" is
//! replaced (the plan heals), `try_resume` re-applies the parked frames and
//! the session continues as if nothing happened.

use boxes_audit::Auditable;
use boxes_core::pager::{
    DegradedReason, FaultPlan, FaultPlanConfig, Health, Pager, PagerConfig, PagerError,
};
use boxes_core::wal::{Wal, WalConfig};
use boxes_core::wbox::WBoxConfig;
use boxes_core::{LabelingScheme, WBoxScheme};

const BLOCK_SIZE: usize = 1024;
const SEED: u64 = 0xD15C_FA11;

/// 10 empty sibling elements: tag 2i pairs with tag 2i+1.
fn base_partners() -> Vec<usize> {
    (0..20).map(|i| i ^ 1).collect()
}

fn main() {
    // Typed pager errors unwind as `PagerError` panics that the `try_*`
    // wrappers catch; keep the default hook for real panics but don't let
    // the expected rejections spam stderr with backtraces.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !info.payload().is::<PagerError>() {
            prev(info);
        }
    }));

    // A journaled pager whose disk obeys a deterministic fault plan (quiet
    // for now — no probabilistic noise, only the scheduled failure below).
    let pager = Pager::new(PagerConfig::with_block_size(BLOCK_SIZE));
    let wal = Wal::new(BLOCK_SIZE, WalConfig::default());
    pager.attach_journal(wal);
    let plan = FaultPlan::new(FaultPlanConfig::quiet(SEED, BLOCK_SIZE));
    pager.attach_fault_injector(plan.clone());

    let mut scheme = WBoxScheme::new(pager.clone(), WBoxConfig::from_block_size(BLOCK_SIZE));
    let lids = scheme.bulk_load_document(&base_partners());
    println!("healthy: {} labels bulk-loaded", scheme.len());

    // The disk's write path dies. The next mutation discovers it: the
    // commit record is durable in the log, but the frames cannot reach the
    // media — after the retry budget is spent they are parked in the
    // volatile overlay and the pager degrades. The discovering operation
    // itself still returns Ok: nothing committed was lost.
    plan.fail_all_writes_after(0);
    scheme
        .try_insert_element_before(lids[8])
        .expect("the degrading op committed durably before the apply failed");
    let Health::Degraded(reason) = pager.health() else {
        unreachable!("a dead write path must degrade the pager");
    };
    println!(
        "write path died: pager degraded ({reason:?}) after {} retries, {} backoff ticks",
        pager.stats().retries,
        pager.stats().backoff_ticks,
    );

    // Mutations now fail fast with the typed reason — no partial writes, no
    // silent drift between memory and disk.
    match scheme.try_insert_element_before(lids[2]) {
        Err(PagerError::Degraded(DegradedReason::WriteFault { block })) => {
            println!("insert rejected: write to {block:?} exhausted the retry budget");
        }
        other => unreachable!("degraded mutations must be rejected, got {other:?}"),
    }

    // Lookups keep answering committed state — the parked frames are
    // consulted before the dead media, so even the degrading insert is
    // visible and the document order is intact.
    let labels: Vec<u64> = lids
        .iter()
        .map(|&lid| scheme.try_lookup(lid).expect("reads survive degradation"))
        .collect();
    assert!(
        labels.windows(2).all(|w| w[0] < w[1]),
        "bulk-loaded tags must still be in document order"
    );
    println!(
        "degraded reads: all {} committed labels answered, order intact",
        labels.len()
    );

    // The faulty disk is replaced: the plan heals and `try_resume`
    // re-applies the parked overlay frames to the media.
    plan.heal();
    pager
        .try_resume()
        .expect("resume applies the parked frames");
    assert!(pager.health().is_ok(), "resume restores write service");
    scheme
        .try_insert_element_before(lids[2])
        .expect("mutations resume after repair");
    println!(
        "resumed: write service restored, {} labels live",
        scheme.len()
    );

    let report = scheme.audit();
    assert!(
        report.is_clean(),
        "post-resume audit must be clean:\n{report}"
    );
    println!(
        "structure audit clean; the outage cost {} degraded entry and zero labels",
        pager.degraded_entries()
    );
}
