//! A simulated editing session over a live document — the read-heavy,
//! occasionally-written workload §6 of the paper targets.
//!
//! ```text
//! cargo run --release --example versioned_editor
//! ```
//!
//! An "editor" keeps bookmarks (cached label references) into an auction
//! document while a stream of edits lands: paragraphs inserted at a hot
//! spot, elements deleted, and one big cut+paste of a subtree. With the
//! caching+logging layer of §6, most bookmark refreshes cost zero I/O.

use boxes_core::cache::CachedRef;
use boxes_core::pager::{Pager, PagerConfig};
use boxes_core::wbox::{WBox, WBoxConfig};
use boxes_core::CachedWBox;

fn main() {
    let block_size = 8192;
    let pager = Pager::new(PagerConfig::with_block_size(block_size));
    let mut wbox = WBox::new(pager.clone(), WBoxConfig::from_block_size(block_size));
    let lids = wbox.bulk_load(60_000); // a 30k-element document's tags
    println!(
        "loaded {} labels on {} blocks",
        wbox.len(),
        pager.allocated_blocks()
    );

    // The §6 layer: a 32-entry modification log.
    let mut editor = CachedWBox::new(wbox, 32);

    // Twenty bookmarks spread through the document.
    let mut bookmarks: Vec<(boxes_core::lidf::Lid, CachedRef<u64>)> = (0..20)
        .map(|i| (lids[i * 2_999], CachedRef::new()))
        .collect();
    for (lid, r) in bookmarks.iter_mut() {
        editor.lookup(*lid, r);
    }
    editor.stats = Default::default();

    // The editing session: 1,000 edits at a hot spot, each followed by the
    // editor refreshing every bookmark (e.g. to redraw a navigation pane).
    let hot = lids[30_000];
    let session_start = pager.stats();
    for round in 0..1_000 {
        if round % 10 == 9 {
            // Occasionally delete the most recent insertion instead.
            let doomed = editor.insert_before(hot);
            editor.delete(doomed);
        } else {
            editor.insert_element_before(hot);
        }
        for (lid, r) in bookmarks.iter_mut() {
            let got = editor.lookup(*lid, r);
            debug_assert_eq!(got, editor.wbox.lookup(*lid));
        }
    }
    let session_io = pager.stats().since(&session_start);

    println!("\nafter 1,000 edits with 20 bookmark refreshes each:");
    println!("  bookmark lookups: {:?}", editor.stats);
    println!(
        "  {:.1}% of lookups avoided I/O entirely (cache hit or log replay)",
        editor.stats.avoidance_rate() * 100.0
    );
    println!("  whole session: {session_io}");

    // One bulk cut + paste: move 2,000 labels from one region to another.
    let cut_from = editor.wbox.iter_lids();
    let (a, b) = (cut_from[10_000], cut_from[12_000]);
    let before = pager.stats();
    editor.wbox.delete_subtree(a, b);
    let pasted = editor.wbox.insert_subtree_before(cut_from[40_000], 2_001);
    println!(
        "\ncut 2,001 labels and pasted them elsewhere in bulk: {} ({} new labels)",
        pager.stats().since(&before),
        pasted.len()
    );
    editor.wbox.validate();
    println!("structure validated: all §4 invariants hold after the session");
}
