//! Concurrent reader sessions over a streaming writer.
//!
//! ```text
//! cargo run --example concurrent_sessions
//! ```
//!
//! Bulk-loads an XMark-like document into a WAL-journaled W-BOX, then runs
//! one writer streaming element inserts while four reader threads open
//! snapshot sessions. Each snapshot sees one *published epoch*: its labels
//! never move while the writer works, fresh snapshots see newer epochs, and
//! every session's I/O is attributed separately.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use boxes_core::driver::partner_map;
use boxes_core::{LabelingScheme, WBoxScheme};
use boxes_pager::{Pager, PagerConfig};
use boxes_session::SessionManager;
use boxes_wal::{Wal, WalConfig};
use boxes_wbox::WBoxConfig;
use boxes_xml::generate::xmark;

const BLOCK_SIZE: usize = 1024;
const READERS: usize = 4;
const WRITER_OPS: usize = 200;

fn main() {
    // A journaled pager: group-commit barriers define the epochs snapshots
    // pin (sync_every = 8 → one published epoch per 8 committed ops).
    let pager = Pager::new(PagerConfig::with_block_size(BLOCK_SIZE));
    pager.attach_journal(Wal::new(
        BLOCK_SIZE,
        WalConfig {
            sync_every: 8,
            checkpoint_every: 0,
        },
    ));
    let manager = Arc::new(SessionManager::<WBoxScheme>::create(
        pager.clone(),
        WBoxConfig::from_block_size(BLOCK_SIZE),
    ));

    // The writer session loads the document and publishes the first epoch.
    let doc = xmark(400, 7);
    let lids = {
        let mut writer = manager.writer().expect("writer free");
        let txn = pager.txn();
        let lids = writer.bulk_load_document(&partner_map(&doc));
        drop(txn);
        assert!(writer.publish(), "make the load visible to snapshots");
        lids
    };
    println!(
        "loaded {} tags ({} elements), published epoch {}",
        lids.len(),
        doc.len(),
        manager.published_epoch()
    );

    // Four readers each pin a snapshot and repeatedly verify it is frozen:
    // the same lid always answers the same label, however far the writer
    // has moved on.
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let manager = Arc::clone(&manager);
            let done = Arc::clone(&done);
            let probe = lids[r * 7 % lids.len()];
            std::thread::spawn(move || {
                let snap = manager.snapshot().expect("published state");
                let frozen = snap.lookup(probe);
                let mut rounds = 0u64;
                while !done.load(Ordering::SeqCst) {
                    assert_eq!(snap.lookup(probe), frozen, "snapshot labels never move");
                    rounds += 1;
                }
                (snap.epoch(), rounds, snap.io().reads)
            })
        })
        .collect();

    // Meanwhile the writer streams inserts through the journaled path.
    {
        let mut writer = manager.writer().expect("writer returned");
        for i in 0..WRITER_OPS {
            let anchor = lids[(i * 13) % lids.len()];
            writer.insert_element_before(anchor);
        }
        writer.publish();
    }
    done.store(true, Ordering::SeqCst);
    for handle in readers {
        let (epoch, rounds, reads) = handle.join().expect("reader clean");
        println!("reader: epoch {epoch}, {rounds} stable rounds, {reads} attributed reads");
    }

    // Readers are gone; a fresh snapshot observes the post-stream epoch.
    let fresh = manager.snapshot().expect("snapshot");
    println!(
        "writer streamed {WRITER_OPS} inserts; fresh snapshot: epoch {}, {} labels",
        fresh.epoch(),
        fresh.len()
    );
    assert_eq!(
        fresh.len(),
        u64::try_from(lids.len() + 2 * WRITER_OPS).expect("small")
    );
}
