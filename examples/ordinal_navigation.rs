//! Ordinal labels (§3): exact tag positions for navigation-style queries.
//!
//! ```text
//! cargo run --release --example ordinal_navigation
//! ```
//!
//! With ordinal labeling an element's labels are its tags' exact positions
//! in the document, enabling queries that plain (gapped) labels answer only
//! with extra work — the paper's example: "to see if e1 is e2's last child,
//! check l>(e1) + 1 = l>(e2)".

use boxes_core::bbox::BBoxConfig;
use boxes_core::pager::{Pager, PagerConfig};
use boxes_core::xml::generate::xmark;
use boxes_core::{BBoxScheme, ElementLabeler, OrdinalScheme};

fn main() {
    let mut tree = xmark(5_000, 11);
    let pager = Pager::new(PagerConfig::with_block_size(8192));
    let scheme = BBoxScheme::new(
        pager.clone(),
        BBoxConfig::from_block_size(8192).with_ordinal(),
    );
    let mut labeler = ElementLabeler::load(scheme, &tree);
    println!("B-BOX-O over {} elements", tree.len());

    // Last-child tests across the whole document, verified against the tree.
    let order = tree.document_order();
    let mut checked = 0;
    for &parent in order.iter().step_by(37) {
        let children = tree.children(parent).to_vec();
        for (i, &c) in children.iter().enumerate() {
            let is_last = i + 1 == children.len();
            assert_eq!(
                labeler.is_last_child(c, parent),
                is_last,
                "mismatch under {parent:?}"
            );
            checked += 1;
        }
    }
    println!("verified {checked} last-child predicates against the tree");

    // Exact document positions survive updates.
    let site = tree.root();
    let regions = tree.children(site)[0];
    println!(
        "\n<regions> starts at tag position {}",
        labeler.ordinal_start(regions)
    );
    let new_first = tree.insert_before(regions, "preamble");
    labeler.on_insert_before(new_first, regions);
    println!(
        "after inserting <preamble> before it: position {} (shifted by 2)",
        labeler.ordinal_start(regions)
    );

    // Ordinal lookups are O(log_B N): count the I/Os.
    let before = pager.stats();
    let (start_lid, _) = labeler.lids(regions);
    let pos = labeler.scheme.ordinal_of(start_lid);
    println!(
        "ordinal lookup of position {pos} cost {}",
        pager.stats().since(&before)
    );
}
