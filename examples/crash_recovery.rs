//! Crash recovery: kill a document build mid-insert, then pick up where
//! the log left off.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```
//!
//! Builds a W-BOX document inside a WAL-journaled environment, injects a
//! deterministic crash in the middle of a subtree insertion, recovers from
//! the surviving disk image plus durable log, and verifies that every
//! committed label is intact while the torn insertion vanished atomically.

use boxes_audit::Auditable;
use boxes_core::wal::WalConfig;
use boxes_core::wbox::WBoxConfig;
use boxes_core::{reopen_wbox, DurableEnv, LabelingScheme, WBoxScheme};

const BLOCK_SIZE: usize = 1024;
const SEED: u64 = 0x0DD_BA11;

/// 10 empty sibling elements: tag 2i pairs with tag 2i+1.
fn base_partners() -> Vec<usize> {
    (0..20).map(|i| i ^ 1).collect()
}

fn main() {
    // Injected crashes unwind with `CrashSignal`; keep the default hook
    // for real panics but don't let the simulated power cut spam stderr.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !info.payload().is::<boxes_core::pager::CrashSignal>() {
            prev(info);
        }
    }));

    // Rehearsal with a disarmed crash clock: learn how many crash points
    // (WAL appends, sync barriers, applied block writes) the session has
    // and record the labels that will be committed before the fatal op.
    let (committed_labels, ticks_before_insert) = {
        let env = DurableEnv::new(BLOCK_SIZE, WalConfig::default(), SEED);
        let mut scheme =
            WBoxScheme::new(env.pager().clone(), WBoxConfig::from_block_size(BLOCK_SIZE));
        let lids = scheme.bulk_load_document(&base_partners());
        let labels: Vec<u64> = lids.iter().map(|&l| scheme.lookup(l)).collect();
        let before = env.clock().ticks();
        scheme.insert_subtree_before(lids[6], &[1, 0, 3, 2, 5, 4]);
        let total = env.clock().ticks();
        println!("rehearsal: {total} crash points; the subtree insertion starts after #{before}");
        assert!(total > before, "the insertion must cross crash points");
        (labels, before)
    };

    // The real run: same seed, same workload, but the clock is armed to
    // raise a crash while the subtree insertion commits to the log.
    let env = DurableEnv::new(BLOCK_SIZE, WalConfig::default(), SEED);
    env.clock().arm(ticks_before_insert + 1);
    let outcome = env.run_to_crash(|| {
        let mut scheme =
            WBoxScheme::new(env.pager().clone(), WBoxConfig::from_block_size(BLOCK_SIZE));
        let lids = scheme.bulk_load_document(&base_partners());
        scheme.insert_subtree_before(lids[6], &[1, 0, 3, 2, 5, 4]);
        unreachable!("the armed crash fires inside insert_subtree_before");
    });
    assert!(outcome.is_none(), "the workload must have crashed");
    println!("crash injected mid-insert; in-memory state is gone");

    // Recovery: redo the committed log over the surviving disk image and
    // reopen the W-BOX from its recovered meta snapshot.
    let recovered = env.recover().expect("durable log decodes cleanly");
    println!(
        "recovered {} committed operations from {} bytes of durable log",
        recovered.commits,
        env.wal().durable_len(),
    );
    let scheme = reopen_wbox(&recovered, WBoxConfig::from_block_size(BLOCK_SIZE))
        .expect("committed state includes the W-BOX snapshot");

    // The structure is internally consistent ...
    let report = scheme.audit();
    assert!(
        report.is_clean(),
        "recovered audit must be clean:\n{report}"
    );

    // ... every committed label survived verbatim ...
    assert_eq!(scheme.len(), committed_labels.len() as u64);
    let mut fresh = WBoxScheme::new(
        boxes_core::pager::Pager::new(boxes_core::pager::PagerConfig::with_block_size(BLOCK_SIZE)),
        WBoxConfig::from_block_size(BLOCK_SIZE),
    );
    let lids = fresh.bulk_load_document(&base_partners());
    for (&lid, &label) in lids.iter().zip(&committed_labels) {
        assert_eq!(scheme.lookup(lid), label, "committed label must survive");
    }

    // ... and the half-done subtree insertion left no trace: its WAL
    // record never became durable, so recovery rolled it back atomically.
    println!(
        "all {} committed labels intact; the torn subtree insertion vanished atomically",
        scheme.len()
    );
}
