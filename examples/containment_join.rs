//! Containment join over an auction document — the workload order-based
//! labels exist for (§1 of the paper: "containment join and twig
//! matching").
//!
//! ```text
//! cargo run --release --example containment_join
//! ```
//!
//! Generates an XMark-like document, then answers the join
//! `//item[.//keyword]` (every item paired with each keyword inside it)
//! three ways: by tree traversal (ground truth), with W-BOX labels, and
//! with B-BOX labels — comparing I/O.

use boxes_core::bbox::BBoxConfig;
use boxes_core::pager::{Pager, PagerConfig};
use boxes_core::wbox::WBoxConfig;
use boxes_core::xml::generate::xmark;
use boxes_core::xml::tree::ElementId;
use boxes_core::{BBoxScheme, ElementLabeler, WBoxScheme};

fn main() {
    let tree = xmark(20_000, 7);
    let order = tree.document_order();
    let items: Vec<ElementId> = order
        .iter()
        .copied()
        .filter(|&e| tree.tag(e) == "item")
        .collect();
    let keywords: Vec<ElementId> = order
        .iter()
        .copied()
        .filter(|&e| tree.tag(e) == "keyword")
        .collect();
    println!(
        "document: {} elements, {} items, {} keywords",
        tree.len(),
        items.len(),
        keywords.len()
    );

    // Ground truth by walking the tree (what labels let us avoid).
    let mut truth = 0usize;
    for &k in &keywords {
        for &i in &items {
            if tree.is_ancestor(i, k) {
                truth += 1;
            }
        }
    }

    // W-BOX: constant-time label lookups.
    let pager = Pager::new(PagerConfig::with_block_size(8192));
    let labeler = ElementLabeler::load(
        WBoxScheme::new(pager.clone(), WBoxConfig::from_block_size(8192)),
        &tree,
    );
    let before = pager.stats();
    let pairs = labeler.containment_join(&items, &keywords);
    let wbox_io = pager.stats().since(&before);
    assert_eq!(pairs.len(), truth);
    println!(
        "W-BOX join:  {} pairs, {} ({:.2} I/Os per input element)",
        pairs.len(),
        wbox_io,
        wbox_io.total() as f64 / (items.len() + keywords.len()) as f64
    );

    // B-BOX: logarithmic lookups, still no traversal.
    let pager = Pager::new(PagerConfig::with_block_size(8192));
    let labeler = ElementLabeler::load(
        BBoxScheme::new(pager.clone(), BBoxConfig::from_block_size(8192)),
        &tree,
    );
    let before = pager.stats();
    let pairs = labeler.containment_join(&items, &keywords);
    let bbox_io = pager.stats().since(&before);
    assert_eq!(pairs.len(), truth);
    println!(
        "B-BOX join:  {} pairs, {} ({:.2} I/Os per input element)",
        pairs.len(),
        bbox_io,
        bbox_io.total() as f64 / (items.len() + keywords.len()) as f64
    );

    println!("\nboth joins agree with the tree-walk ground truth ({truth} pairs)");
}
