//! Quickstart: label an XML document, query it, update it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks through the whole public API once: parse a document, bulk-load a
//! W-BOX, check ancestorship with two integer comparisons, insert and
//! delete elements, and watch the I/O meter.

use boxes_core::pager::{Pager, PagerConfig};
use boxes_core::wbox::WBoxConfig;
use boxes_core::xml::parse;
use boxes_core::{ElementLabeler, LabelingScheme, WBoxScheme};

fn main() {
    // The example document of the paper's Figure 1 (abridged).
    let source = "<site>\
        <regions>\
            <africa><item/><item/></africa>\
            <asia><item/></asia>\
        </regions>\
        <people><person/><person/></people>\
    </site>";
    let mut tree = parse(source).expect("well-formed XML");
    println!("parsed {} elements", tree.len());

    // Label it with a W-BOX on a simulated 8 KB-block disk.
    let pager = Pager::new(PagerConfig::with_block_size(8192));
    let scheme = WBoxScheme::new(pager.clone(), WBoxConfig::from_block_size(8192));
    let mut labeler = ElementLabeler::load(scheme, &tree);

    let order = tree.document_order();
    for &e in &order {
        let (s, x) = labeler.labels(e);
        println!("  <{}>  start={s:>3}  end={x:>3}", tree.tag(e));
    }

    // Ancestor checks are two comparisons — no tree traversal.
    let regions = order[1];
    let item = order[3];
    let person = order[8];
    assert!(labeler.is_descendant(item, regions));
    assert!(!labeler.is_descendant(person, regions));
    println!("\nitem is inside <regions>; person is not — decided from labels alone");

    // Updates keep every label consistent with document order.
    let asia = order[5];
    let new_item = tree.add_child(asia, "item");
    labeler.on_add_child(new_item, asia);
    assert!(labeler.is_descendant(new_item, regions));

    let before = pager.stats();
    let (s, x) = labeler.labels(new_item);
    println!(
        "new <item> labeled ({s}, {x}); the pair lookup cost {}",
        pager.stats().since(&before)
    );

    tree.remove_element(new_item);
    labeler.on_remove_element(new_item);
    println!(
        "after deleting it again the scheme holds {} labels on {} blocks",
        labeler.scheme.len(),
        pager.allocated_blocks()
    );
}
