#!/usr/bin/env python3
"""Substitute measured tables from results/ into EXPERIMENTS.md."""
import pathlib, re, sys

scale = sys.argv[1] if len(sys.argv) > 1 else "small"
root = pathlib.Path(__file__).parent
results = root / "results"

def table_of(name):
    path = results / f"{name}_{scale}.txt"
    if not path.exists():
        return f"*(missing: run `./run_experiments.sh {scale}`)*"
    text = path.read_text().strip()
    return text if text else "*(empty output)*"

mapping = {
    "PLACEHOLDER_FIG5": "fig5_concentrated",
    "PLACEHOLDER_FIG7": "fig7_scattered",
    "PLACEHOLDER_FIG8": "fig8_xmark",
    "PLACEHOLDER_QUERY": "tab_query_cost",
    "PLACEHOLDER_BULK": "tab_bulk_insert",
    "PLACEHOLDER_BITS": "tab_label_bits",
    "PLACEHOLDER_A1": "abl_wbox_params",
    "PLACEHOLDER_A2": "abl_bbox_fill",
    "PLACEHOLDER_A3": "abl_cache_log",
    "PLACEHOLDER_A4": "abl_buffer_pool",
}

doc = (root / "EXPERIMENTS.md").read_text()
for placeholder, name in mapping.items():
    block = "```text\n" + table_of(name) + "\n```"
    doc = doc.replace(placeholder, block)
(root / "EXPERIMENTS.md").write_text(doc)
print("EXPERIMENTS.md updated from results/*_%s.txt" % scale)
