//! The `analyze` command: orchestration of the workspace static-analysis
//! gate. The individual passes live in the submodules —
//! [`sweeps`] (crate-root attribute audits), [`lint`] (the `boxes-lint`
//! source analyzer), [`semantic`] (auditor-driven workload replay),
//! [`crash`] (WAL crash-injection sweeps with recovery verification),
//! [`chaos`] (seeded faulty-disk sweeps: retry, read-repair, degraded
//! mode), [`sessions`] (concurrent snapshot-reader stress plus the
//! `session-report.json` artifact), and [`profile`] (trace-attribution
//! identity checks plus the `trace-report.json` / `BENCH_boxes.json`
//! artifacts).

mod chaos;
mod crash;
pub(crate) mod crashfile;
mod lint;
mod profile;
mod semantic;
mod sessions;
mod sweeps;

use std::path::Path;
use std::process::Command;

/// Entry point for `cargo xtask analyze`. Returns the process exit code.
pub(crate) fn analyze(args: &[String]) -> i32 {
    let mut seed: u64 = 0xb0c5_ed01;
    let mut skip_cargo = false;
    let mut lint_only = false;
    let mut chaos_only = false;
    let mut crash_file_only = false;
    let mut profile_only = false;
    let mut sessions_only = false;
    let mut baseline = false;
    let mut explain: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--explain" => match it.next() {
                Some(id) => explain = Some(id.clone()),
                None => {
                    eprintln!("--explain needs a rule ID (e.g. --explain BX010)");
                    return 2;
                }
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs an integer argument");
                    return 2;
                }
            },
            "--skip-cargo" => skip_cargo = true,
            "--lint-only" => lint_only = true,
            "--chaos-only" => chaos_only = true,
            "--crash-file-only" => crash_file_only = true,
            "--profile-only" => profile_only = true,
            "--sessions-only" => sessions_only = true,
            "--baseline" => baseline = true,
            other => {
                eprintln!("unknown argument `{other}`");
                return 2;
            }
        }
    }

    let root = crate::workspace_root();

    if let Some(id) = explain {
        return i32::from(!lint::explain(&id));
    }
    if baseline {
        return i32::from(!lint::emit_baseline(&root));
    }
    if lint_only {
        return i32::from(!lint::run(&root));
    }
    if chaos_only {
        return i32::from(!chaos::chaos_lint(seed, &root));
    }
    if crash_file_only {
        return i32::from(!crashfile::crash_file_lint(seed, &root));
    }
    if profile_only {
        return i32::from(!profile::profile_lint(seed, &root));
    }
    if sessions_only {
        return i32::from(!sessions::sessions_lint(&root));
    }

    let mut failures = 0u32;
    let mut step = |name: &str, ok: bool| {
        println!("analyze: {name:<24} {}", if ok { "ok" } else { "FAILED" });
        if !ok {
            failures += 1;
        }
    };

    if skip_cargo {
        println!("analyze: fmt/clippy skipped (--skip-cargo)");
    } else {
        step("cargo fmt --check", run_fmt_check(&root));
        step("cargo clippy", run_clippy(&root));
    }
    step("unsafe-code audit", sweeps::audit_unsafe(&root));
    step("missing_docs sweep", sweeps::audit_missing_docs(&root));
    step("source lint", lint::run(&root));
    step("semantic lint", semantic::semantic_lint(seed));
    step("crash recovery", crash::crash_recovery_lint(seed));
    step("crash-file matrix", crashfile::crash_file_lint(seed, &root));
    step("chaos sweep", chaos::chaos_lint(seed, &root));
    step("session stress", sessions::sessions_lint(&root));
    step("profile/attribution", profile::profile_lint(seed, &root));

    if failures == 0 {
        println!("analyze: all checks passed");
        0
    } else {
        eprintln!("analyze: {failures} check(s) failed");
        1
    }
}

fn run_fmt_check(root: &Path) -> bool {
    run_cargo(root, &["fmt", "--all", "--check"])
}

fn run_clippy(root: &Path) -> bool {
    run_cargo(
        root,
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
            "-D",
            "clippy::dbg_macro",
            "-D",
            "clippy::todo",
            "-D",
            "clippy::unimplemented",
        ],
    )
}

fn run_cargo(root: &Path, args: &[&str]) -> bool {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    match Command::new(cargo).args(args).current_dir(root).status() {
        Ok(status) => status.success(),
        Err(e) => {
            eprintln!("analyze: failed to spawn cargo {}: {e}", args.join(" "));
            false
        }
    }
}
