//! The source-lint step: drive `boxes-lint` over the workspace, print
//! human diagnostics, and drop the JSON report in `target/lint-report.json`.

use std::path::Path;

use boxes_lint::report::Outcome;

/// Run the BX001–BX009 catalog against the `lint.toml` baseline. Prints
/// every unsuppressed finding and every stale suppression; returns whether
/// the gate is clean.
pub(crate) fn run(root: &Path) -> bool {
    let Some(outcome) = lint_workspace(root) else {
        return false;
    };
    write_json_report(root, &outcome);
    for d in &outcome.unsuppressed {
        eprintln!("  {}", d.human());
    }
    for stale in &outcome.stale_allows {
        eprintln!("  {stale}");
    }
    println!(
        "  lint: {} file(s), {} finding(s) baselined, {} unsuppressed, {} stale \
         suppression(s)",
        outcome.files_scanned,
        outcome.suppressed.len(),
        outcome.unsuppressed.len(),
        outcome.stale_allows.len()
    );
    outcome.is_clean()
}

/// `--baseline`: print ready-to-paste `[[allow]]` entries for the current
/// unsuppressed findings. The justification is left as a TODO on purpose —
/// the gate rejects entries without one, so each must be filled in by hand.
pub(crate) fn emit_baseline(root: &Path) -> bool {
    let Some(outcome) = lint_workspace(root) else {
        return false;
    };
    if outcome.unsuppressed.is_empty() {
        println!("# no unsuppressed findings — nothing to baseline");
        return true;
    }
    for d in &outcome.unsuppressed {
        println!("[[allow]]");
        println!("rule = \"{}\"", d.rule);
        println!("path = \"{}\"", d.path);
        if !d.snippet.is_empty() {
            println!(
                "contains = \"{}\"",
                d.snippet.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        println!("justification = \"TODO: why is this finding acceptable?\"");
        println!();
    }
    true
}

fn lint_workspace(root: &Path) -> Option<Outcome> {
    let config = match boxes_lint::load_config(root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("  lint: {e}");
            return None;
        }
    };
    match boxes_lint::lint_workspace(root, &config) {
        Ok(o) => Some(o),
        Err(e) => {
            eprintln!("  lint: workspace scan failed: {e}");
            None
        }
    }
}

fn write_json_report(root: &Path, outcome: &Outcome) {
    let dir = root.join("target");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("  lint: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("lint-report.json");
    if let Err(e) = std::fs::write(&path, outcome.to_json()) {
        eprintln!("  lint: cannot write {}: {e}", path.display());
    }
}
