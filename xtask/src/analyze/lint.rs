//! The source-lint step: drive `boxes-lint` over the workspace, print
//! human diagnostics, and drop the JSON artifacts in
//! `target/lint-report.json`, `target/sync-readiness.json`, and
//! `target/lock-order.json`.

use std::path::Path;
use std::time::Instant;

use boxes_lint::report::Outcome;

/// Run the BX001–BX020 catalog against the `lint.toml` baseline. Prints
/// every unsuppressed finding, stale suppression/ratchet, and budget
/// violation; returns whether the gate is clean. Also writes the lint
/// report (with pass and lock-analysis runtimes), the BX011
/// concurrency-readiness inventory, and the BX015 lock-order graph.
pub(crate) fn run(root: &Path) -> bool {
    let start = Instant::now();
    let Some(mut outcome) = lint_workspace(root) else {
        return false;
    };
    outcome.lint_pass_ms = start.elapsed().as_millis();
    write_analysis_artifacts(root, &mut outcome);
    write_json_report(root, &outcome);
    for d in &outcome.unsuppressed {
        eprintln!("  {}", d.human());
    }
    for stale in &outcome.stale_allows {
        eprintln!("  {stale}");
    }
    for stale in &outcome.stale_ratchets {
        eprintln!("  {stale}");
    }
    for violation in &outcome.budget_violations {
        eprintln!("  {violation}");
    }
    println!(
        "  lint: {} file(s), {} finding(s) baselined, {} ratcheted, {} unsuppressed, \
         {} stale suppression(s), {} stale ratchet(s), {} ms (+{} ms lock analysis)",
        outcome.files_scanned,
        outcome.suppressed.len(),
        outcome.ratcheted.len(),
        outcome.unsuppressed.len(),
        outcome.stale_allows.len(),
        outcome.stale_ratchets.len(),
        outcome.lint_pass_ms,
        outcome.lock_analysis_ms
    );
    outcome.is_clean()
}

/// `--explain BXnnn`: print a rule's rationale and fix recipe.
pub(crate) fn explain(id: &str) -> bool {
    match boxes_lint::rules::rule_doc(id) {
        Some(doc) => {
            println!("{}: {}", doc.id, doc.title);
            println!("\nwhy:\n  {}", doc.rationale);
            println!("\nfix:\n  {}", doc.fix);
            true
        }
        None => {
            eprintln!(
                "unknown rule `{id}` — known rules: {}",
                boxes_lint::rules::RULE_IDS.join(", ")
            );
            false
        }
    }
}

/// `--baseline`: print ready-to-paste `[[allow]]` entries for the current
/// unsuppressed findings. The justification is left as a TODO on purpose —
/// the gate rejects entries without one, so each must be filled in by hand.
pub(crate) fn emit_baseline(root: &Path) -> bool {
    let Some(outcome) = lint_workspace(root) else {
        return false;
    };
    if outcome.unsuppressed.is_empty() {
        println!("# no unsuppressed findings — nothing to baseline");
        return true;
    }
    for d in &outcome.unsuppressed {
        println!("[[allow]]");
        println!("rule = \"{}\"", d.rule);
        println!("path = \"{}\"", d.path);
        if !d.snippet.is_empty() {
            println!(
                "contains = \"{}\"",
                d.snippet.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        println!("justification = \"TODO: why is this finding acceptable?\"");
        println!();
    }
    true
}

fn lint_workspace(root: &Path) -> Option<Outcome> {
    let config = match boxes_lint::load_config(root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("  lint: {e}");
            return None;
        }
    };
    match boxes_lint::lint_workspace(root, &config) {
        Ok(o) => Some(o),
        Err(e) => {
            eprintln!("  lint: workspace scan failed: {e}");
            None
        }
    }
}

fn write_json_report(root: &Path, outcome: &Outcome) {
    let dir = root.join("target");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("  lint: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("lint-report.json");
    if let Err(e) = std::fs::write(&path, outcome.to_json()) {
        eprintln!("  lint: cannot write {}: {e}", path.display());
    }
}

/// Write `target/sync-readiness.json` (the shared-state inventory with
/// reaching public APIs) and `target/lock-order.json` (the witnessed
/// lock-order graph BX015 checks for cycles). Records the lock-analysis
/// wall-clock on the outcome so lint-report.json tracks its cost.
fn write_analysis_artifacts(root: &Path, outcome: &mut Outcome) {
    let analysis = match boxes_lint::analyze_workspace(root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("  lint: workspace analysis for artifacts failed: {e}");
            return;
        }
    };
    let target = root.join("target");
    let path = target.join("sync-readiness.json");
    if let Err(e) = std::fs::write(&path, analysis.sync_readiness_json()) {
        eprintln!("  lint: cannot write {}: {e}", path.display());
    }
    let start = Instant::now();
    let lock_order = analysis.lock_order_json();
    outcome.lock_analysis_ms = start.elapsed().as_millis();
    let path = target.join("lock-order.json");
    if let Err(e) = std::fs::write(&path, lock_order) {
        eprintln!("  lint: cannot write {}: {e}", path.display());
    }
}
