//! The process-kill crash matrix: real files, real kills.
//!
//! The in-process sweeps in [`crash`](super::crash) prove the WAL protocol
//! against *simulated* crashes (an unwound panic, in-memory byte buffers).
//! This pass removes both simulations. A child process (`cargo xtask
//! crash-child`, re-entered via `current_exe`) runs the same deterministic
//! workload against a file-backed pager and a file-backed WAL in a scratch
//! directory, with a crash clock armed at one tick; when the clock fires the
//! child calls [`std::process::abort`] — no destructors, no flushes, the
//! kernel reclaims the process mid-write. The parent then plays coroner:
//! it reads the dead process's files cold ([`FileLogStore::read_log`] +
//! [`recover_image`]), recovers, and holds the result to the same
//! committed-prefix oracle and structure audits as the in-process sweeps,
//! plus a durability floor: every operation whose group-commit fsync was
//! observed by the child **before** the kill must be present after recovery.
//!
//! Each configuration runs twice: once recovering the files exactly as the
//! dead process left them (a process kill preserves the OS page cache, so
//! unsynced-but-complete appends may legitimately survive), and once after
//! *shredding* — truncating the log to a 512-byte sector boundary, modeling
//! a power loss that tears the final in-flight sector. Shredding never cuts
//! below the fsync-covered prefix (real sectors don't lose acknowledged
//! writes; they lose in-flight ones).
//!
//! The pass ends with the fsyncgate negative control: a fault-wrapped log
//! file whose nth fsync fails must poison the WAL, degrade the pager, and
//! provably never ack the failed operation — recovery yields exactly the
//! pre-fault prefix. The machine-readable summary lands in
//! `target/crash-file-report.json`.

use std::path::{Path, PathBuf};
use std::process::Command;

use boxes_audit::Auditable;
use boxes_core::bbox::BBoxConfig;
use boxes_core::durable::{reopen_bbox, reopen_wbox};
use boxes_core::pager::{
    codec, recover_image, sector_floor, CrashSignal, FaultFile, FileFaultPlan, Pager, PagerConfig,
    RawFile, SharedPager,
};
use boxes_core::wal::crashpoint::{ClockFault, CrashClock};
use boxes_core::wal::store::{FileLogStore, HEADER_SIZE};
use boxes_core::wal::{recover, Recovered, Wal, WalConfig};
use boxes_core::wbox::WBoxConfig;
use boxes_core::{BBoxScheme, LabelingScheme, WBoxScheme};

use super::crash::{
    apply_op, committed_ops, silence_crash_signal_panics, verify_recovered, DocState, OPS,
};

/// Group commit width for the matrix: wide enough that kills land between
/// an op's append and its batch's fsync.
const SYNC_EVERY: u64 = 2;
/// Checkpoint cadence: low enough that kills land inside a file rotation.
const CHECKPOINT_EVERY: u64 = 2;

fn block_size_of(scheme: &str) -> Option<usize> {
    match scheme {
        "wbox" => Some(1024),
        "bbox" => Some(256),
        _ => None,
    }
}

/// The child's workload: identical op stream and harness meta to the
/// in-process sweeps (so the parent can reuse their oracle), plus the
/// durability-floor progress file — whenever the WAL's fsync counter
/// advances after op `i`, ops `0..=i` are on the medium, and the child
/// records that floor where the parent's post-mortem can read it.
fn child_workload<S: LabelingScheme>(
    build: impl FnOnce(SharedPager) -> S,
    pager: &SharedPager,
    wal: &Wal,
    progress: &Path,
) {
    let mut s = build(pager.clone());
    let mut st = DocState::default();
    let mut syncs = wal.stats().syncs;
    for i in 0..=OPS {
        let txn = pager.txn();
        apply_op(&mut s, i, &mut st);
        pager.txn_meta("harness", || {
            let mut w = boxes_core::pager::VecWriter::new();
            w.u64(i + 1);
            w.into_bytes()
        });
        txn.commit();
        let now = wal.stats().syncs;
        if now > syncs {
            syncs = now;
            // Plain write, no fsync: a process kill keeps the page cache,
            // which is exactly the durability class this file needs.
            let _ = std::fs::write(progress, format!("{} {}", i + 1, wal.durable_len()));
        }
    }
}

/// Entry point of the `crash-child` xtask mode. Arguments:
/// `<dir> <scheme> <seed> <kill_tick>`; `kill_tick` 0 runs to completion
/// and prints `TICKS <n>` (the tick-counting pass), any other value arms
/// the crash clock at that tick and **aborts the process** when it fires.
pub(crate) fn crash_child(args: &[String]) -> i32 {
    let parsed = (|| -> Option<(PathBuf, String, u64, u64)> {
        let [dir, scheme, seed, kill] = args else {
            return None;
        };
        Some((
            PathBuf::from(dir),
            scheme.clone(),
            seed.parse().ok()?,
            kill.parse().ok()?,
        ))
    })();
    let Some((dir, scheme, seed, kill)) = parsed else {
        eprintln!("usage: xtask crash-child <dir> <scheme> <seed> <kill_tick>");
        return 2;
    };
    let Some(bs) = block_size_of(&scheme) else {
        eprintln!("crash-child: unknown scheme `{scheme}`");
        return 2;
    };
    silence_crash_signal_panics();
    let pager = Pager::new(PagerConfig::with_block_size(bs).backed_by_file(dir.join("db.bin")));
    let store = match FileLogStore::create(&dir.join("wal.bin"), bs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("crash-child: creating the log: {e}");
            return 3;
        }
    };
    let clock = CrashClock::new(seed);
    let config = WalConfig {
        sync_every: SYNC_EVERY,
        checkpoint_every: CHECKPOINT_EVERY,
    };
    let wal = Wal::with_store(bs, config, Some(clock.clone()), Box::new(store));
    pager.attach_journal(wal.clone());
    pager.attach_fault_injector(ClockFault::new(clock.clone(), bs));
    if kill > 0 {
        clock.arm(kill);
    }
    let progress = dir.join("progress.txt");
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match scheme.as_str() {
            "wbox" => child_workload(
                |p| WBoxScheme::new(p, WBoxConfig::from_block_size(1024)),
                &pager,
                &wal,
                &progress,
            ),
            "bbox" => child_workload(
                |p| BBoxScheme::new(p, BBoxConfig::from_block_size(256)),
                &pager,
                &wal,
                &progress,
            ),
            _ => unreachable!("scheme validated above"),
        }));
    match outcome {
        Ok(()) => {
            println!("TICKS {}", clock.ticks());
            0
        }
        Err(payload) if payload.is::<CrashSignal>() => {
            // The point of the exercise: die the way a kill -9 dies. No
            // unwinding, no Drop impls, no flushes.
            std::process::abort();
        }
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Truncate a dead process's log the way a power cut would: down to a
/// sector boundary, but never below the fsync-acknowledged prefix (the
/// durability floor the child recorded) — acknowledged sectors are stable,
/// only the in-flight tail tears.
fn shred_log(path: &Path, durable_payload: u64) -> Result<(), String> {
    let len = std::fs::metadata(path)
        .map_err(|e| format!("shred: stat {}: {e}", path.display()))?
        .len();
    let floor = codec::usize_to_u64(sector_floor(codec::u64_to_index(len)));
    let keep = (HEADER_SIZE + durable_payload).max(floor).min(len);
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| format!("shred: open {}: {e}", path.display()))?;
    file.set_len(keep)
        .map_err(|e| format!("shred: truncate {}: {e}", path.display()))?;
    Ok(())
}

/// `(committed_ops_floor, durable_payload_bytes)` the child last recorded,
/// or zeros when it died before the first group-commit fsync.
fn read_progress(dir: &Path) -> (u64, u64) {
    let Ok(text) = std::fs::read_to_string(dir.join("progress.txt")) else {
        return (0, 0);
    };
    let mut it = text.split_whitespace();
    let ops = it.next().and_then(|t| t.parse().ok()).unwrap_or(0);
    let dlen = it.next().and_then(|t| t.parse().ok()).unwrap_or(0);
    (ops, dlen)
}

/// Recover the child's remains and verify against the oracle + audits.
fn verify_scheme(scheme: &str, label: &str, target: u64, rec: &Recovered) -> Result<(), String> {
    match scheme {
        "wbox" => {
            let fresh = || WBoxScheme::with_block_size(1024);
            let reopen = |r: &Recovered| reopen_wbox(r, WBoxConfig::from_block_size(1024));
            let audit = |s: &WBoxScheme| {
                let report = s.inner().audit();
                report
                    .is_clean()
                    .then_some(())
                    .ok_or_else(|| report.to_string())
            };
            verify_recovered(label, target, rec, &reopen, &fresh, &audit)
        }
        "bbox" => {
            let fresh = || {
                BBoxScheme::new(
                    Pager::new(PagerConfig::with_block_size(256)),
                    BBoxConfig::from_block_size(256),
                )
            };
            let reopen = |r: &Recovered| reopen_bbox(r, BBoxConfig::from_block_size(256));
            let audit = |s: &BBoxScheme| {
                let report = s.inner().audit();
                report
                    .is_clean()
                    .then_some(())
                    .ok_or_else(|| report.to_string())
            };
            verify_recovered(label, target, rec, &reopen, &fresh, &audit)
        }
        _ => Err(format!("{label}: unknown scheme `{scheme}`")),
    }
}

/// One matrix cell's aggregate, for the JSON report.
struct MatrixEntry {
    scheme: String,
    seed: u64,
    shred: bool,
    ticks: u64,
    kills: u64,
    min_committed: u64,
    max_committed: u64,
}

fn prep_dir(dir: &Path) -> Result<(), String> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))
}

fn child_command(exe: &Path, dir: &Path, scheme: &str, seed: u64, kill: u64) -> Command {
    let mut cmd = Command::new(exe);
    cmd.arg("crash-child")
        .arg(dir)
        .arg(scheme)
        .arg(seed.to_string())
        .arg(kill.to_string());
    cmd
}

/// Sweep every kill point of one (scheme, seed, shred) configuration.
fn sweep_one(
    exe: &Path,
    base: &Path,
    scheme: &str,
    seed: u64,
    shred: bool,
) -> Result<MatrixEntry, String> {
    let mode = if shred { "shred" } else { "noshred" };
    let label = format!("{scheme}/{seed:#x}/{mode}");
    let bs = block_size_of(scheme).ok_or_else(|| format!("unknown scheme `{scheme}`"))?;
    let dir = base.join(format!("{scheme}-{seed:x}-{mode}"));

    // Pass 1: run the child to completion to count the kill points.
    prep_dir(&dir)?;
    let out = child_command(exe, &dir, scheme, seed, 0)
        .output()
        .map_err(|e| format!("{label}: spawning tick-count child: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "{label}: tick-count child failed: {}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let ticks: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("TICKS ")?.trim().parse().ok())
        .ok_or_else(|| format!("{label}: child printed no tick count: {stdout:?}"))?;
    if ticks < 20 {
        return Err(format!(
            "{label}: only {ticks} kill points — workload too small to be meaningful"
        ));
    }

    // Pass 2: kill the child at every one of them, recover the remains.
    let mut entry = MatrixEntry {
        scheme: scheme.into(),
        seed,
        shred,
        ticks,
        kills: 0,
        min_committed: u64::MAX,
        max_committed: 0,
    };
    for target in 1..=ticks {
        prep_dir(&dir)?;
        let status = child_command(exe, &dir, scheme, seed, target)
            .output()
            .map_err(|e| format!("{label}: spawning kill child: {e}"))?
            .status;
        if status.success() {
            return Err(format!("{label}: tick {target} did not kill the child"));
        }
        entry.kills += 1;
        let (floor_ops, floor_bytes) = read_progress(&dir);
        let log_path = dir.join("wal.bin");
        if shred {
            shred_log(&log_path, floor_bytes)?;
        }
        let bytes = FileLogStore::read_log(&log_path, bs)
            .map_err(|e| format!("{label}: tick {target}: reading the dead log: {e}"))?;
        let image = recover_image(&dir.join("db.bin"), bs)
            .map_err(|e| format!("{label}: tick {target}: reading the dead image: {e}"))?;
        let rec = recover(&bytes, image)
            .map_err(|e| format!("{label}: tick {target}: recovery failed: {e}"))?;
        let committed = committed_ops(&rec);
        if committed < floor_ops {
            return Err(format!(
                "{label}: tick {target}: durability floor violated — the child saw \
                 {floor_ops} op(s) fsync-acknowledged but recovery kept {committed}"
            ));
        }
        verify_scheme(scheme, &label, target, &rec)?;
        entry.min_committed = entry.min_committed.min(committed);
        entry.max_committed = entry.max_committed.max(committed);
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(entry)
}

/// Aggregate of the fsyncgate negative control, for the JSON report.
struct NegativeControl {
    acked_before_fault: u64,
    recovered_committed: u64,
    sync_failures: u64,
    degraded_entries: u64,
}

/// The fsyncgate negative control: a log file whose 4th fsync fails
/// (header, scheme construction, op 0; op 1's barrier dies). The WAL must
/// poison, the pager must degrade, no post-fault op may ever be acked, and
/// recovery must yield exactly the pre-fault prefix.
fn fsync_negative_control(base: &Path) -> Result<NegativeControl, String> {
    const BS: usize = 1024;
    let dir = base.join("fsync-control");
    prep_dir(&dir)?;
    let plan = FileFaultPlan {
        fail_sync_at: Some(4),
        ..FileFaultPlan::default()
    };
    let store = FileLogStore::create_with(&dir.join("wal.bin"), BS, |f| -> Box<dyn RawFile> {
        Box::new(FaultFile::new(f, plan))
    })
    .map_err(|e| format!("fsync-control: creating the log: {e}"))?;
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let wal = Wal::with_store(BS, WalConfig::default(), None, Box::new(store));
    pager.attach_journal(wal.clone());
    let mut s = WBoxScheme::new(pager.clone(), WBoxConfig::from_block_size(BS));
    let mut st = DocState::default();
    let mut acked = 0u64;
    // Run real ops until the injected fsync failure poisons the log. The
    // faulted op itself must be *absorbed* (degraded entry, no panic, no
    // ack), so no iteration here may unwind.
    for i in 0..=OPS {
        if wal.poisoned() {
            break;
        }
        let txn = pager.txn();
        apply_op(&mut s, i, &mut st);
        pager.txn_meta("harness", || {
            let mut w = boxes_core::pager::VecWriter::new();
            w.u64(i + 1);
            w.into_bytes()
        });
        txn.commit();
        if !wal.poisoned() {
            acked = i + 1;
        }
    }
    if !wal.poisoned() {
        return Err("fsync-control: the injected fsync failure never fired".into());
    }
    if acked != 1 {
        return Err(format!(
            "fsync-control: expected exactly op 0 acknowledged before the fault, got {acked}"
        ));
    }
    // Every later mutation must be rejected with the typed degraded error —
    // repeatedly, because FaultFile lets later fsyncs succeed (the
    // fsyncgate trap a retrying implementation would fall into). The probe
    // goes through the fallible surface: `try_write` hits the same degraded
    // gate as every mutation, before any allocation checks.
    let mut denied = 0u64;
    let probe = vec![0u8; BS];
    for _ in 0..3 {
        match pager.try_write(boxes_core::pager::BlockId(0), &probe) {
            Ok(()) => {
                return Err("fsync-control: degraded pager accepted a mutation".into());
            }
            Err(boxes_core::pager::PagerError::Degraded(_)) => denied += 1,
            Err(other) => {
                return Err(format!(
                    "fsync-control: expected a typed degraded rejection, got {other:?}"
                ));
            }
        }
    }
    if denied != 3 {
        return Err(format!(
            "fsync-control: degraded mode rejected {denied} mutations, expected 3"
        ));
    }
    let stats = wal.stats();
    if stats.sync_failures != 1 {
        return Err(format!(
            "fsync-control: {} sync failures recorded — the fsync was retried",
            stats.sync_failures
        ));
    }
    if pager.health().is_ok() {
        return Err("fsync-control: pager did not enter degraded mode".into());
    }
    if pager.try_resume().is_ok() {
        return Err("fsync-control: resume must be refused while the journal is poisoned".into());
    }
    let rec = recover(&wal.durable_bytes(), pager.disk_image())
        .map_err(|e| format!("fsync-control: recovery failed: {e}"))?;
    let committed = committed_ops(&rec);
    if committed != acked {
        return Err(format!(
            "fsync-control: recovery kept {committed} op(s) but only {acked} was ever \
             fsync-acknowledged — a lost commit was acked"
        ));
    }
    verify_scheme("wbox", "fsync-control", 0, &rec)?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(NegativeControl {
        acked_before_fault: acked,
        recovered_committed: committed,
        sync_failures: stats.sync_failures,
        degraded_entries: pager.degraded_entries(),
    })
}

/// Render `crash-file-report.json` (schema `boxes-crash-file/1`).
fn render_report(entries: &[MatrixEntry], control: &NegativeControl) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"boxes-crash-file/1\",\"sync_every\":");
    out.push_str(&SYNC_EVERY.to_string());
    out.push_str(",\"checkpoint_every\":");
    out.push_str(&CHECKPOINT_EVERY.to_string());
    out.push_str(",\"matrix\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"scheme\":\"");
        out.push_str(&e.scheme);
        out.push_str("\",\"seed\":");
        out.push_str(&e.seed.to_string());
        out.push_str(",\"shred\":");
        out.push_str(if e.shred { "true" } else { "false" });
        out.push_str(",\"kill_points\":");
        out.push_str(&e.ticks.to_string());
        out.push_str(",\"kills\":");
        out.push_str(&e.kills.to_string());
        out.push_str(",\"min_committed\":");
        out.push_str(&e.min_committed.to_string());
        out.push_str(",\"max_committed\":");
        out.push_str(&e.max_committed.to_string());
        out.push('}');
    }
    out.push_str("],\"fsync_control\":{\"acked_before_fault\":");
    out.push_str(&control.acked_before_fault.to_string());
    out.push_str(",\"recovered_committed\":");
    out.push_str(&control.recovered_committed.to_string());
    out.push_str(",\"sync_failures\":");
    out.push_str(&control.sync_failures.to_string());
    out.push_str(",\"degraded_entries\":");
    out.push_str(&control.degraded_entries.to_string());
    out.push_str("}}\n");
    out
}

/// Run the full process-kill crash matrix; prints one line per cell and
/// writes `target/crash-file-report.json`. Returns overall success.
pub(crate) fn crash_file_lint(seed: u64, root: &Path) -> bool {
    super::chaos::silence_pager_error_panics();
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("  crash-file: cannot locate own executable: {e}");
            return false;
        }
    };
    let base = root.join("target").join("crash-file");
    let mut entries = Vec::new();
    let mut ok = true;
    for scheme in ["wbox", "bbox"] {
        for s in [seed, seed ^ 0x9e37_79b9] {
            for shred in [false, true] {
                match sweep_one(&exe, &base, scheme, s, shred) {
                    Ok(e) => {
                        println!(
                            "  crash-file: {scheme}/{s:#x}/{:<8} ok ({} kills, committed {}..={})",
                            if shred { "shred" } else { "noshred" },
                            e.kills,
                            e.min_committed,
                            e.max_committed
                        );
                        entries.push(e);
                    }
                    Err(msg) => {
                        eprintln!(
                            "  crash-file: {scheme}/{s:#x}/{:<8} FAILED\n{msg}",
                            if shred { "shred" } else { "noshred" }
                        );
                        ok = false;
                    }
                }
            }
        }
    }
    let control = match fsync_negative_control(&base) {
        Ok(c) => {
            println!(
                "  crash-file: fsync-negative-control ok ({} acked, {} recovered)",
                c.acked_before_fault, c.recovered_committed
            );
            Some(c)
        }
        Err(msg) => {
            eprintln!("  crash-file: fsync-negative-control FAILED\n{msg}");
            ok = false;
            None
        }
    };
    if let Some(control) = control {
        let report = render_report(&entries, &control);
        let path = root.join("target").join("crash-file-report.json");
        if let Err(e) = std::fs::write(&path, report) {
            eprintln!("  crash-file: writing {}: {e}", path.display());
            ok = false;
        }
    }
    ok
}
