//! Crate-root attribute audits: `#![forbid(unsafe_code)]` everywhere, no
//! `unsafe` tokens anywhere, and `#![warn(missing_docs)]` on every crate
//! root. Per-item documentation coverage is enforced token-aware by the
//! source lint's BX006; these sweeps keep the compiler-level lints pinned.

use std::path::{Path, PathBuf};

/// Every `.rs` file under the workspace's `crates/` and `xtask/` trees.
/// (`third_party/` holds vendored offline API stubs and is exempt.)
fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "xtask", "tests"] {
        collect_rs(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Crate roots that must carry the workspace-wide inner attributes.
fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.push(root.join("xtask/src/main.rs"));
    roots.sort();
    roots
}

/// Every crate root forbids unsafe code and no source line contains an
/// `unsafe` form outside comments.
pub(crate) fn audit_unsafe(root: &Path) -> bool {
    let mut ok = true;
    for lib in crate_roots(root) {
        let text = std::fs::read_to_string(&lib).unwrap_or_default();
        if !text.contains("#![forbid(unsafe_code)]") {
            eprintln!("  {} lacks #![forbid(unsafe_code)]", lib.display());
            ok = false;
        }
    }
    // Belt and braces: no unsafe blocks/fns/impls in any source line
    // outside comments. The keyword is assembled at runtime so this
    // scanner does not flag its own source.
    let kw = concat!("un", "safe");
    let forms: Vec<String> = ["fn", "{", "impl", "trait", "extern"]
        .iter()
        .map(|f| format!("{kw} {f}"))
        .collect();
    for path in source_files(root) {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            let code = line.split("//").next().unwrap_or("");
            if forms.iter().any(|f| code.contains(f.as_str())) {
                eprintln!("  {}:{}: {kw} code found", path.display(), i + 1);
                ok = false;
            }
        }
    }
    ok
}

/// Every crate root opts into the compiler's `missing_docs` lint.
pub(crate) fn audit_missing_docs(root: &Path) -> bool {
    let mut ok = true;
    for lib in crate_roots(root) {
        let text = std::fs::read_to_string(&lib).unwrap_or_default();
        if !text.contains("#![warn(missing_docs)]") {
            eprintln!("  {} lacks #![warn(missing_docs)]", lib.display());
            ok = false;
        }
    }
    ok
}
