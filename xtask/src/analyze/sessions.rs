//! The session stress pass: eight snapshot readers racing one streaming
//! writer under fixed seeds. Readers 0–3 each hold a *disjoint* quarter of
//! the document (their probe lids never overlap, so their reads land on
//! mostly-disjoint page-table shards); readers 4–7 probe the *full* range,
//! overlapping each other and the disjoint group on the same shards. Each
//! reader holds one *long-lived* snapshot for the whole run (its labels
//! must never move, however many epochs the writer publishes over it)
//! while also churning short-lived snapshots (whose epochs must be
//! monotone and never torn). The pass ends with a pager audit — dropping
//! every session must leave no pinned epoch, no frozen version, and no
//! pinned pool frame behind — and writes the machine-readable
//! `target/session-report.json` artifact (schema `boxes-session/2`,
//! including the per-seed shard-latch tallies).

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use boxes_audit::Auditable;
use boxes_core::pager::{splitmix64, Pager, PagerConfig, SharedPager};
use boxes_core::wal::{Wal, WalConfig};
use boxes_core::wbox::WBoxConfig;
use boxes_core::{LabelingScheme, WBoxScheme};
use boxes_session::SessionManager;

/// Reader threads per seed: the first `DISJOINT_READERS` probe disjoint
/// lid quarters, the rest probe the full overlapping range.
const READERS: usize = 8;
/// Readers pinned to disjoint quarters of the document.
const DISJOINT_READERS: usize = 4;
/// Writer operations per seed (beyond the bulk load).
const OPS: usize = 80;
/// The fixed stress seeds (CI runs exactly these).
const STRESS_SEEDS: [u64; 2] = [0x5e55_1001, 0xbeef];

/// What one reader thread observed.
struct ReaderStats {
    snapshots: u64,
    last_epoch: u64,
    reads: u64,
}

/// One seed's outcome.
struct SeedStats {
    seed: u64,
    final_epoch: u64,
    readers: Vec<ReaderStats>,
    /// Page-table shard latch acquisitions across the whole run.
    shard_acquisitions: u64,
    /// How many of those found the shard mutex already held.
    shard_contended: u64,
}

fn journaled_pager(block_size: usize) -> SharedPager {
    let pager = Pager::new(PagerConfig::with_block_size(block_size));
    pager.attach_journal(Wal::new(
        block_size,
        WalConfig {
            sync_every: 4,
            checkpoint_every: 0,
        },
    ));
    pager
}

/// Run the stress for one seed; returns the per-seed stats or a
/// description of the first violated invariant.
fn stress(seed: u64) -> Result<SeedStats, String> {
    let block_size = 1024;
    let manager = Arc::new(SessionManager::<WBoxScheme>::create(
        journaled_pager(block_size),
        WBoxConfig::from_block_size(block_size),
    ));

    // Bulk load a flat 8-element document and publish it so every reader
    // has a committed epoch from the start.
    let lids = {
        let mut writer = manager.writer().map_err(|e| e.to_string())?;
        let txn = manager.pager().txn();
        let partner: Vec<usize> = (0..16).map(|i| i ^ 1).collect();
        let lids = writer.bulk_load_document(&partner);
        drop(txn);
        if !writer.publish() {
            return Err("bulk load did not publish an epoch".into());
        }
        lids
    };

    let done = Arc::new(AtomicBool::new(false));
    // Open every long-lived snapshot *at the baseline epoch*, before the
    // writer streams: all probe lids are alive there, and the pager must
    // keep frozen pre-images of every block the writer later touches until
    // the owning thread exits.
    let mut helds = Vec::new();
    for _ in 0..READERS {
        helds.push(manager.snapshot().map_err(|e| e.to_string())?);
    }
    let readers: Vec<_> = helds
        .into_iter()
        .enumerate()
        .map(|(r, held)| {
            let manager = Arc::clone(&manager);
            let done = Arc::clone(&done);
            // Disjoint quarters for readers 0–3; the full overlapping
            // range for 4–7 — both shard-access patterns stay covered.
            let quarter = lids.len() / DISJOINT_READERS;
            let probes: Vec<_> = if r < DISJOINT_READERS {
                lids[r * quarter..(r + 1) * quarter].to_vec()
            } else {
                lids.clone()
            };
            std::thread::spawn(move || -> Result<ReaderStats, String> {
                let frozen: Vec<u64> = probes.iter().map(|&p| held.lookup(p)).collect();
                let held_len = held.len();
                let mut last_epoch = 0u64;
                let mut snapshots = 0u64;
                let mut reads = 0u64;
                loop {
                    let finished = done.load(Ordering::SeqCst);
                    let snap = manager.snapshot().map_err(|e| e.to_string())?;
                    snap.bind_current_thread();
                    if snap.epoch() < last_epoch {
                        return Err(format!(
                            "epoch went backwards: {} after {last_epoch}",
                            snap.epoch()
                        ));
                    }
                    if snap.len() % 2 != 0 {
                        return Err(format!(
                            "epoch {}: odd live-tag count {} (torn element pair)",
                            snap.epoch(),
                            snap.len()
                        ));
                    }
                    last_epoch = snap.epoch();
                    snapshots += 1;
                    reads += snap.io().reads;
                    drop(snap);
                    let now: Vec<u64> = probes.iter().map(|&p| held.lookup(p)).collect();
                    if now != frozen || held.len() != held_len {
                        return Err(format!(
                            "held snapshot (epoch {}) moved under the writer",
                            held.epoch()
                        ));
                    }
                    if finished {
                        break;
                    }
                }
                reads += held.io().reads;
                Ok(ReaderStats {
                    snapshots,
                    last_epoch,
                    reads,
                })
            })
        })
        .collect();

    // The writer streams a seeded insert/delete mix through the journaled
    // path; element pairs stay adjacent so live snapshots are always whole
    // documents.
    {
        let mut writer = manager.writer().map_err(|e| e.to_string())?;
        let mut elements: Vec<(boxes_core::lidf::Lid, boxes_core::lidf::Lid)> =
            lids.chunks(2).map(|c| (c[0], c[1])).collect();
        let mut state = seed;
        for _ in 0..OPS {
            state = splitmix64(state);
            let pick = usize::try_from(state >> 8).unwrap_or(0);
            if state % 10 < 7 || elements.len() <= 4 {
                let anchor = elements[pick % elements.len()].0;
                let txn = manager.pager().txn();
                let pair = writer.insert_element_before(anchor);
                drop(txn);
                elements.push(pair);
            } else {
                let (start, end) = elements.remove(pick % elements.len());
                let txn = manager.pager().txn();
                writer.delete_subtree(start, end);
                drop(txn);
            }
        }
        writer.publish();
    }
    done.store(true, Ordering::SeqCst);

    let mut stats = Vec::new();
    for handle in readers {
        stats.push(
            handle
                .join()
                .map_err(|_| "reader thread panicked".to_string())??,
        );
    }

    // Every session is gone: the pager must be pin- and version-clean.
    let report = manager.pager().audit();
    if !report.is_clean() {
        return Err(format!(
            "pager audit after all sessions closed: {} violation(s): {:?}",
            report.violations().len(),
            report.violations().first()
        ));
    }
    let (shard_acquisitions, shard_contended) = manager
        .shard_stats()
        .iter()
        .fold((0, 0), |(a, c), s| (a + s.acquisitions, c + s.contended));
    Ok(SeedStats {
        seed,
        final_epoch: manager.pager().published_epoch(),
        readers: stats,
        shard_acquisitions,
        shard_contended,
    })
}

/// Render `session-report.json` (schema `boxes-session/2`). Snapshot and
/// latch counts are timing-dependent by design — the artifact records what
/// the stress actually exercised, not a deterministic trajectory.
fn render_report(seeds: &[SeedStats]) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":\"boxes-session/2\",\"scheme\":\"W-BOX\",\"readers\":");
    out.push_str(&READERS.to_string());
    out.push_str(",\"disjoint_readers\":");
    out.push_str(&DISJOINT_READERS.to_string());
    out.push_str(",\"writer_ops\":");
    out.push_str(&OPS.to_string());
    out.push_str(",\"seeds\":[");
    for (si, s) in seeds.iter().enumerate() {
        if si > 0 {
            out.push(',');
        }
        out.push_str("{\"seed\":");
        out.push_str(&s.seed.to_string());
        out.push_str(",\"final_epoch\":");
        out.push_str(&s.final_epoch.to_string());
        out.push_str(",\"shard_acquisitions\":");
        out.push_str(&s.shard_acquisitions.to_string());
        out.push_str(",\"shard_contended\":");
        out.push_str(&s.shard_contended.to_string());
        out.push_str(",\"readers\":[");
        for (ri, r) in s.readers.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push_str("{\"snapshots\":");
            out.push_str(&r.snapshots.to_string());
            out.push_str(",\"last_epoch\":");
            out.push_str(&r.last_epoch.to_string());
            out.push_str(",\"reads\":");
            out.push_str(&r.reads.to_string());
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Run the stress under every fixed seed, write the report artifact, and
/// return overall success.
pub(crate) fn sessions_lint(root: &Path) -> bool {
    let mut ok = true;
    let mut seeds = Vec::new();
    for seed in STRESS_SEEDS {
        match stress(seed) {
            Ok(stats) => {
                let validated: u64 = stats.readers.iter().map(|r| r.snapshots).sum();
                println!(
                    "  sessions: seed {seed:#x} ok ({validated} snapshots validated, \
                     final epoch {})",
                    stats.final_epoch
                );
                seeds.push(stats);
            }
            Err(msg) => {
                eprintln!("  sessions: seed {seed:#x} FAILED\n    {msg}");
                ok = false;
            }
        }
    }
    let path = root.join("target").join("session-report.json");
    if let Some(parent) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("  sessions: mkdir {}: {e}", parent.display());
            return false;
        }
    }
    if let Err(e) = std::fs::write(&path, render_report(&seeds)) {
        eprintln!("  sessions: write {}: {e}", path.display());
        return false;
    }
    println!("  sessions: wrote {}", path.display());
    ok
}
