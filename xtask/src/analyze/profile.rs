//! The profile/attribution pass: replay seeded workloads through every
//! scheme with the `boxes-trace` layer live and enforce the **accounting
//! identity** — every block read/write/alloc/free (and every fault-service
//! retry, repair and backoff tick) the pager counted must be attributed to
//! some open operation span. An unattributed I/O means a scheme hot path
//! reached the pager outside any span, i.e. the observability wiring has a
//! hole; the gate fails.
//!
//! The identity is also enforced with **concurrent sessions**: eight
//! snapshot readers (each a `boxes-session` reader with its own trace
//! session) perform fixed lookups while the writer streams — per-session
//! attributed counters plus unattributed must equal the pager I/O delta
//! (base pager + every snapshot view) exactly.
//!
//! The pass also writes two deterministic artifacts:
//!
//! * `target/trace-report.json` — the `boxes-trace/2` span/counter report
//!   aggregated over every profiled leg (per-op I/O histograms, phase
//!   totals, per-session tallies, the attribution split);
//! * `target/BENCH_boxes.json` — the `boxes-bench/2` perf trajectory for a
//!   reduced lineup (per-op distributions, amortized windows, and the
//!   multithreaded `concurrent_lookup` scaling rows).

use std::path::Path;
use std::sync::{Arc, Barrier};

use boxes_bench::report::{bench_json_full, write_bench_json, ConcurrentLeg, JsonWorkload};
use boxes_bench::{run_schemes, SchemeKind};
use boxes_core::bbox::BBoxConfig;
use boxes_core::lidf::{BlockPtrRecord, Lidf};
use boxes_core::naive::NaiveConfig;
use boxes_core::pager::{
    BlockId, FaultPlan, FaultPlanConfig, IoStats, Pager, PagerConfig, RetryPolicy, SharedPager,
};
use boxes_core::wal::{Wal, WalConfig};
use boxes_core::wbox::WBoxConfig;
use boxes_core::xml::workload::{concentrated, scattered, UpdateStream};
use boxes_core::{BBoxScheme, DocumentDriver, LabelingScheme, NaiveScheme, WBoxScheme};
use boxes_session::{SessionManager, SessionScheme};
use boxes_trace as trace;

/// Retry budget for the faulty leg — generous, so in-budget noise never
/// surfaces as an operation failure.
const BUDGET: u32 = 8;

/// Snapshot of the trace attribution split, for leg-wise deltas.
struct TraceMark {
    attributed: trace::TraceCounters,
    unattributed: trace::TraceCounters,
}

fn mark() -> TraceMark {
    TraceMark {
        attributed: trace::attributed(),
        unattributed: trace::unattributed(),
    }
}

/// Enforce the identity for one leg: between `before` and now,
///
/// 1. nothing was recorded outside a span (`unattributed` did not move);
/// 2. the attributed counters agree field-for-field with the pager's own
///    [`IoStats`] delta on the seven shared counters;
/// 3. every span was closed (RAII discipline — no leaks).
fn check_identity(label: &str, before: &TraceMark, pager_delta: IoStats) -> Result<(), String> {
    let un = trace::unattributed().since(&before.unattributed);
    if !un.is_zero() {
        return Err(format!(
            "{label}: unattributed I/O (hot path outside any span): {un:?}"
        ));
    }
    let attr = trace::attributed().since(&before.attributed);
    let pairs: [(&str, u64, u64); 7] = [
        ("reads", attr.reads, pager_delta.reads),
        ("writes", attr.writes, pager_delta.writes),
        ("allocs", attr.allocs, pager_delta.allocs),
        ("frees", attr.frees, pager_delta.frees),
        ("retries", attr.retries, pager_delta.retries),
        ("repairs", attr.repairs, pager_delta.repairs),
        (
            "backoff_ticks",
            attr.backoff_ticks,
            pager_delta.backoff_ticks,
        ),
    ];
    for (name, traced, counted) in pairs {
        if traced != counted {
            return Err(format!(
                "{label}: accounting identity broken on `{name}`: \
                 trace attributed {traced}, pager counted {counted}"
            ));
        }
    }
    if trace::open_spans() != 0 {
        return Err(format!(
            "{label}: {} span(s) left open after the leg (RAII leak)",
            trace::open_spans()
        ));
    }
    Ok(())
}

/// Build a scheme on `pager`, replay `stream` through the document driver,
/// and check the identity over the whole leg (construction + bulk load +
/// every update op). The leg must do real work: a zero pager delta would
/// make the identity vacuous, so it fails too.
fn profile_stream<S: LabelingScheme>(
    label: &str,
    pager: SharedPager,
    scheme: S,
    stream: &UpdateStream,
) -> Result<(), String> {
    let before = mark();
    let stats0 = pager.stats();
    let mut driver = DocumentDriver::load(scheme, &stream.base);
    for op in &stream.ops {
        driver.apply(op);
    }
    let delta = pager.stats().since(&stats0);
    if delta.total() == 0 {
        return Err(format!("{label}: leg did no I/O — identity check vacuous"));
    }
    check_identity(label, &before, delta)
}

/// Journaled pager for the profiled legs (WAL attached so commit/sync and
/// read-repair activity shows up in the WAL counters too).
fn journaled_pager(block_size: usize) -> SharedPager {
    let pager = Pager::new(PagerConfig::with_block_size(block_size));
    pager.attach_journal(Wal::new(
        block_size,
        WalConfig {
            sync_every: 4,
            checkpoint_every: 8,
        },
    ));
    pager
}

/// Standalone LIDF leg: the allocator's own phase spans must attribute all
/// of its I/O even when no scheme-level op span is open.
fn profile_lidf(seed: u64) -> Result<(), String> {
    let before = mark();
    let pager = Pager::new(PagerConfig::with_block_size(256).with_pool(4));
    let stats0 = pager.stats();
    let mut lidf: Lidf<BlockPtrRecord> = Lidf::new(pager.clone());
    let mut lids = Vec::new();
    let mut state = seed;
    for i in 0..200u64 {
        let r = boxes_core::pager::splitmix64(state ^ i);
        state = r;
        if i % 5 == 4 && lids.len() > 8 {
            let victim = lids.swap_remove(usize::try_from(r).unwrap_or(0) % lids.len());
            lidf.free(victim);
        } else {
            lids.push(lidf.alloc(BlockPtrRecord::new(BlockId(
                u32::try_from(r & 0xffff).unwrap_or(0),
            ))));
        }
    }
    for lid in &lids {
        let _ = lidf.read(*lid);
        let _ = lidf.is_live(*lid);
    }
    let mut n = 0u64;
    lidf.scan(|_, _| n += 1);
    if n != lids.len() as u64 {
        return Err(format!(
            "lidf: scan saw {n} live records, expected {}",
            lids.len()
        ));
    }
    let delta = pager.stats().since(&stats0);
    if delta.total() == 0 {
        return Err("lidf: leg did no I/O — identity check vacuous".into());
    }
    check_identity("lidf", &before, delta)
}

/// Faulty leg: in-budget transient errors, latency stalls and bit rot over
/// a journaled W-BOX workload. The retries, repairs and backoff ticks the
/// fault service generates must be attributed to the operation span that
/// was open when the fault fired — fault-service I/O is not exempt from
/// the identity.
fn profile_faulty(seed: u64) -> Result<(), String> {
    let block_size = 1024;
    for derivation in 0..8u64 {
        let before = mark();
        let pager = journaled_pager(block_size);
        let plan = FaultPlan::new(FaultPlanConfig {
            read_error_rate: 3000,
            write_error_rate: 3000,
            bit_flip_rate: 1200,
            latency_rate: 1500,
            ..FaultPlanConfig::quiet(
                seed.wrapping_add(derivation.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                block_size,
            )
        });
        pager.attach_fault_injector(plan.clone());
        pager.set_retry_policy(RetryPolicy {
            budget: BUDGET,
            ..RetryPolicy::default()
        });
        let stats0 = pager.stats();
        let scheme = WBoxScheme::new(pager.clone(), WBoxConfig::from_block_size(block_size));
        let stream = scattered(120, 80);
        let mut driver = DocumentDriver::load(scheme, &stream.base);
        for op in &stream.ops {
            driver.apply(op);
        }
        let delta = pager.stats().since(&stats0);
        check_identity("faulty/wbox", &before, delta)?;
        // The leg is only meaningful if the plan actually made the fault
        // counters move; a quiet roll retries with a derived seed.
        if delta.retries > 0 && delta.repairs > 0 {
            return Ok(());
        }
    }
    Err("faulty/wbox: no derivation produced both retries and repairs".into())
}

/// Sum the seven shared counters of two [`IoStats`] deltas.
fn add_stats(a: &mut IoStats, b: &IoStats) {
    a.reads += b.reads;
    a.writes += b.writes;
    a.allocs += b.allocs;
    a.frees += b.frees;
    a.retries += b.retries;
    a.repairs += b.repairs;
    a.backoff_ticks += b.backoff_ticks;
}

/// A spin-yield token relay: participant `p` of `n` acts on every turn
/// `t` with `t % n == p`, so work interleaves in a fixed round-robin
/// order. The trace layer allocates span ids and ticks globally; the
/// relay makes that allocation deterministic while every session stays
/// *open* concurrently (existence is concurrent, execution is turn-based).
struct Relay {
    turn: std::sync::atomic::AtomicU64,
}

impl Relay {
    fn wait_for(&self, turn: u64) {
        use std::sync::atomic::Ordering;
        while self.turn.load(Ordering::Acquire) != turn {
            std::thread::yield_now();
        }
    }

    fn advance(&self) {
        use std::sync::atomic::Ordering;
        self.turn.fetch_add(1, Ordering::Release);
    }
}

/// Concurrent-session leg: eight reader threads hold open snapshot
/// sessions — all live at once for the entire leg — and each performs a
/// fixed lookup batch per relay round while the writer session streams
/// inserts on this thread. The accounting identity must hold *with
/// per-session attribution*: nothing lands unattributed, the attributed
/// delta equals the base pager's delta plus every snapshot view's own
/// delta, and the session tallies sum exactly to the attributed delta.
/// The relay keeps trace ticks deterministic, so the leg's spans land
/// byte-stably in `trace-report.json`.
fn profile_sessions() -> Result<(), String> {
    const READERS: usize = 8;
    const PARTIES: u64 = READERS as u64 + 1; // the writer is the last participant
    const ROUNDS: u64 = 5;
    const BATCH: usize = 8; // lookups per reader per round
    let block_size = 1024;
    let manager = Arc::new(SessionManager::<WBoxScheme>::create(
        journaled_pager(block_size),
        WBoxConfig::from_block_size(block_size),
    ));
    let lids = {
        let mut writer = manager.writer().map_err(|e| e.to_string())?;
        let partner: Vec<usize> = (0..32).map(|i| i ^ 1).collect();
        let lids = writer.bulk_load_document(&partner);
        writer.publish();
        lids
    };

    let before = mark();
    let base0 = manager.pager().stats();
    // Claim the writer before spawning readers so trace-session creation
    // order (hence the report's session ids) is deterministic.
    let mut writer = manager.writer().map_err(|e| e.to_string())?;
    let relay = Arc::new(Relay {
        turn: std::sync::atomic::AtomicU64::new(0),
    });
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let manager = Arc::clone(&manager);
            let relay = Arc::clone(&relay);
            let lids = lids.clone();
            std::thread::spawn(move || -> Result<(IoStats, trace::TraceCounters), String> {
                // Turn r of round 0: open this reader's session. It
                // stays open across every later round, so all eight
                // sessions (plus the writer) are live concurrently.
                relay.wait_for(r as u64);
                let snap = manager.snapshot().map_err(|e| e.to_string())?;
                snap.bind_current_thread();
                relay.advance();
                for round in 1..=ROUNDS {
                    relay.wait_for(round * PARTIES + r as u64);
                    for i in 0..BATCH {
                        let _ = snap.lookup(lids[(i * 5 + r) % lids.len()]);
                    }
                    relay.advance();
                }
                Ok((snap.io(), snap.trace().counters()))
            })
        })
        .collect();

    // The writer takes the last turn of each round (self-journaling ops,
    // so every commit lands inside the op's span).
    relay.wait_for(READERS as u64);
    relay.advance();
    for round in 1..=ROUNDS {
        relay.wait_for(round * PARTIES + READERS as u64);
        for i in 0..3 {
            writer.insert_element_before(lids[(round as usize * 3 + i) % lids.len()]);
        }
        if round == ROUNDS {
            writer.publish();
        }
        relay.advance();
    }
    let mut session_sum = writer.trace().counters();
    drop(writer);

    let mut pager_delta = manager.pager().stats().since(&base0);
    for handle in readers {
        let (io, tally) = handle
            .join()
            .map_err(|_| "reader thread panicked".to_string())??;
        add_stats(&mut pager_delta, &io);
        session_sum.merge(&tally);
    }
    check_identity("sessions/wbox-readers", &before, pager_delta)?;
    let attributed = trace::attributed().since(&before.attributed);
    if attributed != session_sum {
        return Err(format!(
            "sessions/wbox-readers: per-session tallies do not sum to the \
             attributed delta: sessions {session_sum:?}, attributed {attributed:?}"
        ));
    }
    Ok(())
}

/// Deterministic multithreaded snapshot-lookup legs for the trajectory:
/// for each thread count, that many reader sessions open concurrently and
/// each performs a fixed lookup batch. Throughput is lookups per
/// critical-path logical I/O (the busiest single session) — wall-clock
/// free, so the rows are byte-stable. Readers share no I/O, so the
/// aggregate must scale: the 4-reader leg is required to beat the
/// 1-reader leg by more than 2x.
fn concurrent_legs<S>(name: &str, config: S::Config) -> Result<Vec<ConcurrentLeg>, String>
where
    S: SessionScheme + 'static,
    S::Config: 'static,
{
    const LOOKUPS: u64 = 64;
    let mut legs = Vec::new();
    for threads in [1usize, 4, 8, 16] {
        let manager = Arc::new(SessionManager::<S>::create(
            journaled_pager(1024),
            config.clone(),
        ));
        let lids = {
            let mut writer = manager.writer().map_err(|e| e.to_string())?;
            let partner: Vec<usize> = (0..64).map(|i| i ^ 1).collect();
            let lids = writer.bulk_load_document(&partner);
            writer.publish();
            lids
        };
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let manager = Arc::clone(&manager);
                let barrier = Arc::clone(&barrier);
                let lids = lids.clone();
                std::thread::spawn(move || -> Result<u64, String> {
                    let snap = manager.snapshot().map_err(|e| e.to_string())?;
                    snap.bind_current_thread();
                    barrier.wait();
                    let io0 = snap.io().total();
                    for i in 0..usize::try_from(LOOKUPS).unwrap_or(0) {
                        let _ = snap.lookup(lids[(i * 7 + t) % lids.len()]);
                    }
                    Ok(snap.io().total() - io0)
                })
            })
            .collect();
        let mut ios = Vec::new();
        for handle in handles {
            ios.push(
                handle
                    .join()
                    .map_err(|_| "reader thread panicked".to_string())??,
            );
        }
        let max_session_io = ios.iter().copied().max().unwrap_or(0).max(1);
        let total_io: u64 = ios.iter().sum();
        legs.push(ConcurrentLeg {
            scheme: name.into(),
            threads,
            lookups_per_thread: LOOKUPS,
            max_session_io,
            total_io,
            throughput_per_io: (threads as u64 * LOOKUPS) as f64 / max_session_io as f64,
        });
    }
    let (t1, t4) = (legs[0].throughput_per_io, legs[1].throughput_per_io);
    if t4 <= 2.0 * t1 {
        return Err(format!(
            "{name}: 4-reader aggregate throughput {t4:.2}/io is not >2x \
             the 1-reader leg {t1:.2}/io"
        ));
    }
    Ok(legs)
}

/// Write `target/trace-report.json` from the aggregate tracer state.
fn write_trace_report(root: &Path) -> Result<(), String> {
    let report = trace::report();
    let path = root.join("target").join("trace-report.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
    }
    std::fs::write(&path, report.to_json())
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("  profile: wrote {}", path.display());
    Ok(())
}

/// Write `target/BENCH_boxes.json`: the reduced-lineup perf trajectory
/// plus the multithreaded `concurrent_lookup` scaling rows.
fn write_bench_trajectory(root: &Path) -> Result<(), String> {
    let lineup = [
        SchemeKind::WBox,
        SchemeKind::WBoxO,
        SchemeKind::BBox,
        SchemeKind::Naive(8),
    ];
    let block_size = 1024;
    let conc = concentrated(1200, 400);
    let scat = scattered(1200, 300);
    let conc_results = run_schemes(&lineup, &conc, block_size);
    let scat_results = run_schemes(&lineup, &scat, block_size);
    let workloads = [
        JsonWorkload {
            name: "concentrated",
            results: &conc_results,
        },
        JsonWorkload {
            name: "scattered",
            results: &scat_results,
        },
    ];
    let mut concurrent = concurrent_legs::<WBoxScheme>("W-BOX", WBoxConfig::from_block_size(1024))?;
    concurrent.extend(concurrent_legs::<BBoxScheme>(
        "B-BOX",
        BBoxConfig::from_block_size(1024),
    )?);
    let json = bench_json_full(block_size, &workloads, &concurrent);
    let path = root.join("target").join("BENCH_boxes.json");
    write_bench_json(&path, &json).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("  profile: wrote {}", path.display());
    Ok(())
}

/// Run every attribution leg; prints one line per leg and returns overall
/// success.
pub(crate) fn profile_lint(seed: u64, root: &Path) -> bool {
    trace::reset();

    let mut checks: Vec<(String, Result<(), String>)> = Vec::new();

    // Every scheme variant over a seeded stream, journaled.
    let stream_c = concentrated(160, 90);
    let stream_s = scattered(200, 70);

    let p = journaled_pager(1024);
    checks.push((
        "wbox/concentrated".into(),
        profile_stream(
            "wbox/concentrated",
            p.clone(),
            WBoxScheme::new(p.clone(), WBoxConfig::from_block_size(1024)),
            &stream_c,
        ),
    ));
    let p = journaled_pager(1024);
    checks.push((
        "wbox-pair/scattered".into(),
        profile_stream(
            "wbox-pair/scattered",
            p.clone(),
            WBoxScheme::new(p.clone(), WBoxConfig::from_block_size_paired(1024)),
            &stream_s,
        ),
    ));
    let p = journaled_pager(1024);
    checks.push((
        "wbox-ordinal/concentrated".into(),
        profile_stream(
            "wbox-ordinal/concentrated",
            p.clone(),
            WBoxScheme::new(p.clone(), WBoxConfig::from_block_size(1024).with_ordinal()),
            &stream_c,
        ),
    ));
    let p = journaled_pager(256);
    checks.push((
        "bbox/concentrated".into(),
        profile_stream(
            "bbox/concentrated",
            p.clone(),
            BBoxScheme::new(p.clone(), BBoxConfig::from_block_size(256)),
            &stream_c,
        ),
    ));
    let p = journaled_pager(256);
    checks.push((
        "bbox-ordinal/scattered".into(),
        profile_stream(
            "bbox-ordinal/scattered",
            p.clone(),
            BBoxScheme::new(p.clone(), BBoxConfig::from_block_size(256).with_ordinal()),
            &stream_s,
        ),
    ));
    let p = journaled_pager(1024);
    checks.push((
        "naive-8/scattered".into(),
        profile_stream(
            "naive-8/scattered",
            p.clone(),
            NaiveScheme::new(p.clone(), NaiveConfig { extra_bits: 8 }),
            &stream_s,
        ),
    ));

    // Allocator and fault-service legs.
    checks.push(("lidf/standalone".into(), profile_lidf(seed)));
    checks.push(("faulty/wbox".into(), profile_faulty(seed)));

    // Concurrent sessions: the identity with four live snapshot readers.
    checks.push(("sessions/wbox-readers".into(), profile_sessions()));

    let mut ok = true;
    for (name, result) in checks {
        match result {
            Ok(()) => println!("  profile: {name:<28} ok"),
            Err(msg) => {
                eprintln!("  profile: {name:<28} FAILED\n    {msg}");
                ok = false;
            }
        }
    }

    // Artifacts: the span/counter report over everything profiled above,
    // then the bench trajectory (run last — it is not identity-checked).
    if let Err(msg) = write_trace_report(root) {
        eprintln!("  profile: trace-report FAILED: {msg}");
        ok = false;
    }
    if let Err(msg) = write_bench_trajectory(root) {
        eprintln!("  profile: bench trajectory FAILED: {msg}");
        ok = false;
    }
    ok
}
