//! The semantic lint: replay randomized update streams through every
//! scheme, auditing invariants after each operation, plus a corruption
//! negative control that proves the auditors can still see damage.

use boxes_audit::Auditable;
use boxes_core::bbox::{BBox, BBoxConfig};
use boxes_core::driver::partner_map;
use boxes_core::pager::{BlockId, Pager, PagerConfig};
use boxes_core::wbox::{WBox, WBoxConfig};
use boxes_core::xml::generate::{two_level, xmark};
use boxes_core::xml::workload::{
    concentrated, document_order, insert_delete_churn_with_prefill, scattered, UpdateStream,
};
use boxes_core::{BBoxScheme, CachedBBox, CachedOrdinal, CachedWBox, DocumentDriver, WBoxScheme};
use boxes_core::{LabelingScheme, OrdinalScheme};

/// splitmix64: cheap deterministic stream of sub-seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Replay `stream` on `scheme`, auditing after every operation; returns an
/// error description naming the first op whose audit was not clean.
fn drive_with_audit<S: LabelingScheme + Auditable>(
    label: &str,
    scheme: S,
    stream: &UpdateStream,
) -> Result<(), String> {
    let report = scheme.audit();
    if !report.is_clean() {
        return Err(format!("{label}: dirty before load:\n{report}"));
    }
    let mut driver = DocumentDriver::load(scheme, &stream.base);
    let report = driver.scheme.audit();
    if !report.is_clean() {
        return Err(format!("{label}: dirty after bulk load:\n{report}"));
    }
    for (i, op) in stream.ops.iter().enumerate() {
        driver.apply(op);
        let report = driver.scheme.audit();
        if !report.is_clean() {
            return Err(format!("{label}: dirty after op {i}:\n{report}"));
        }
    }
    driver.verify_document_order();
    Ok(())
}

/// Negative control: corrupt one allocated block behind the auditor's back
/// and demand a *reported* (not panicked) violation. A clean report means
/// the auditor has gone blind, which must itself fail the gate.
fn corruption_control() -> Result<(), String> {
    let audit_must_flag = |what: &str, report: Option<boxes_audit::AuditReport>| match report {
        None => Err(format!("{what} auditor panicked on a garbage block")),
        Some(r) if r.is_clean() => Err(format!("{what} auditor missed a garbage-filled block")),
        Some(_) => Ok(()),
    };

    // W-BOX: trash an allocated block with garbage bytes.
    let pager = Pager::new(PagerConfig::with_block_size(1024));
    let mut wbox = WBox::new(pager.clone(), WBoxConfig::from_block_size(1024));
    let _lids = wbox.bulk_load(500);
    let victim = (0..u32::MAX)
        .map(BlockId)
        .find(|id| pager.is_allocated(*id))
        .expect("a 500-record W-BOX allocates blocks");
    pager.write(victim, &vec![0xA5u8; 1024]);
    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wbox.audit())).ok();
    audit_must_flag("W-BOX", report)?;

    // B-BOX: same, through its own pager.
    let pager = Pager::new(PagerConfig::with_block_size(256));
    let mut bbox = BBox::new(pager.clone(), BBoxConfig::from_block_size(256));
    let _lids = bbox.bulk_load(500);
    let victim = (0..u32::MAX)
        .map(BlockId)
        .find(|id| pager.is_allocated(*id))
        .expect("a 500-record B-BOX allocates blocks");
    pager.write(victim, &vec![0x5Au8; 256]);
    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bbox.audit())).ok();
    audit_must_flag("B-BOX", report)?;
    Ok(())
}

/// Drive every §6 cached wrapper with checkpointed anchors, auditing the
/// replay consistency after each mutation.
fn cached_wrapper_lint(seed: u64) -> Result<(), String> {
    let mut state = seed;

    // CachedWBox over flat labels.
    let pager = Pager::new(PagerConfig::with_block_size(1024));
    let mut wbox = WBox::new(pager, WBoxConfig::from_block_size(1024));
    let lids = wbox.bulk_load(200);
    let mut cached = CachedWBox::new(wbox, 16);
    let anchors: Vec<_> = lids.iter().step_by(23).copied().collect();
    cached.checkpoint(&anchors);
    let mut cursors: Vec<_> = lids.iter().step_by(11).copied().collect();
    for i in 0..120 {
        let r = splitmix64(&mut state) as usize;
        if i % 3 == 2 && cursors.len() > 4 {
            cached.delete(cursors.swap_remove(r % cursors.len()));
        } else {
            let at = cursors[r % cursors.len()];
            cursors.push(cached.insert_before(at));
        }
        let report = cached.audit();
        if !report.is_clean() {
            return Err(format!("cached-wbox: dirty after mutation {i}:\n{report}"));
        }
    }

    // CachedBBox over path labels.
    let pager = Pager::new(PagerConfig::with_block_size(256));
    let mut bbox = BBox::new(pager, BBoxConfig::from_block_size(256));
    let lids = bbox.bulk_load(200);
    let mut cached = CachedBBox::new(bbox, 16);
    let anchors: Vec<_> = lids.iter().step_by(19).copied().collect();
    cached.checkpoint(&anchors);
    let mut cursors: Vec<_> = lids.iter().step_by(7).copied().collect();
    for i in 0..120 {
        let r = splitmix64(&mut state) as usize;
        if i % 4 == 3 && cursors.len() > 4 {
            cached.delete(cursors.swap_remove(r % cursors.len()));
        } else {
            let at = cursors[r % cursors.len()];
            cursors.push(cached.insert_before(at));
        }
        let report = cached.audit();
        if !report.is_clean() {
            return Err(format!("cached-bbox: dirty after mutation {i}:\n{report}"));
        }
    }

    // CachedOrdinal over both ordinal-capable schemes.
    cached_ordinal_lint(
        "cached-ordinal/wbox",
        WBoxScheme::new(
            Pager::new(PagerConfig::with_block_size(1024)),
            WBoxConfig::from_block_size(1024).with_ordinal(),
        ),
        &mut state,
    )?;
    cached_ordinal_lint(
        "cached-ordinal/bbox",
        BBoxScheme::new(
            Pager::new(PagerConfig::with_block_size(256)),
            BBoxConfig::from_block_size(256).with_ordinal(),
        ),
        &mut state,
    )?;
    Ok(())
}

fn cached_ordinal_lint<S: OrdinalScheme + Auditable>(
    label: &str,
    mut scheme: S,
    state: &mut u64,
) -> Result<(), String> {
    let lids = scheme.bulk_load_document(&partner_map(&two_level(75)));
    let mut cached = CachedOrdinal::new(scheme, 12);
    let anchors: Vec<_> = lids.iter().step_by(17).copied().collect();
    cached.checkpoint(&anchors);
    let mut cursors: Vec<_> = lids.iter().step_by(5).copied().collect();
    for i in 0..100 {
        let r = splitmix64(state) as usize;
        if i % 5 == 4 && cursors.len() > 4 {
            cached.delete(cursors.swap_remove(r % cursors.len()));
        } else {
            let at = cursors[r % cursors.len()];
            cursors.push(cached.insert_before(at));
        }
        let report = cached.audit();
        if !report.is_clean() {
            return Err(format!("{label}: dirty after mutation {i}:\n{report}"));
        }
    }
    Ok(())
}

/// Run every semantic check; prints one line per check and returns overall
/// success.
pub(crate) fn semantic_lint(seed: u64) -> bool {
    let mut state = seed;
    let jitter = |state: &mut u64, lo: usize, span: usize| lo + (splitmix64(state) as usize) % span;

    let mut checks: Vec<(String, Result<(), String>)> = Vec::new();

    // W-BOX, plain labels, scattered single inserts.
    let (base, ins) = (jitter(&mut state, 250, 100), jitter(&mut state, 80, 40));
    checks.push((
        format!("wbox/scattered({base},{ins})"),
        drive_with_audit(
            "wbox/scattered",
            WBoxScheme::with_block_size(1024),
            &scattered(base, ins),
        ),
    ));

    // W-BOX with the pair optimization, concentrated subtree growth.
    let (base, sub) = (jitter(&mut state, 150, 80), jitter(&mut state, 60, 40));
    checks.push((
        format!("wbox-pair/concentrated({base},{sub})"),
        drive_with_audit(
            "wbox-pair/concentrated",
            WBoxScheme::new(
                Pager::new(PagerConfig::with_block_size(1024)),
                WBoxConfig::from_block_size_paired(1024),
            ),
            &concentrated(base, sub),
        ),
    ));

    // W-BOX-O under insert/delete churn (exercises tombstones + rebuild).
    let rounds = jitter(&mut state, 80, 60);
    checks.push((
        format!("wbox-ordinal/churn({rounds})"),
        drive_with_audit(
            "wbox-ordinal/churn",
            WBoxScheme::new(
                Pager::new(PagerConfig::with_block_size(1024)),
                WBoxConfig::from_block_size(1024).with_ordinal(),
            ),
            &insert_delete_churn_with_prefill(120, rounds, 40),
        ),
    ));

    // B-BOX over a randomized XMark document replayed in document order.
    let doc_seed = splitmix64(&mut state);
    let doc = xmark(jitter(&mut state, 500, 300), doc_seed);
    checks.push((
        format!("bbox/xmark(seed={doc_seed:#x})"),
        drive_with_audit(
            "bbox/xmark",
            BBoxScheme::with_block_size(256),
            &document_order(&doc, 0),
        ),
    ));

    // B-BOX-O under churn (exercises borrow/merge + size maintenance).
    let rounds = jitter(&mut state, 80, 60);
    checks.push((
        format!("bbox-ordinal/churn({rounds})"),
        drive_with_audit(
            "bbox-ordinal/churn",
            BBoxScheme::new(
                Pager::new(PagerConfig::with_block_size(256)),
                BBoxConfig::from_block_size(256).with_ordinal(),
            ),
            &insert_delete_churn_with_prefill(120, rounds, 40),
        ),
    ));

    // §6 cached wrappers with checkpointed replay consistency.
    checks.push((
        "cached-wrappers".into(),
        cached_wrapper_lint(splitmix64(&mut state)),
    ));

    // The auditors themselves must still see deliberate corruption.
    checks.push(("corruption-control".into(), corruption_control()));

    let mut ok = true;
    for (name, result) in checks {
        match result {
            Ok(()) => println!("  semantic: {name:<40} ok"),
            Err(msg) => {
                eprintln!("  semantic: {name:<40} FAILED\n{msg}");
                ok = false;
            }
        }
    }
    ok
}
