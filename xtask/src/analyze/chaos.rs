//! The chaos semantic pass: seeded faulty-disk sweeps over randomized
//! labeling workloads. Where [`crash`](super::crash) kills the process at
//! every WAL boundary, this pass runs disks that misbehave *without* dying —
//! transient and persistent `EIO`, short writes, latency stalls, silent bit
//! rot — and demands that:
//!
//! * in-budget noise is semantically invisible: every workload completes,
//!   structure audits come back clean, and every label agrees with a
//!   fault-free oracle replaying the same operations;
//! * injected bit rot is detected by the per-block checksum and repaired
//!   from the journal (`IoStats::repairs` must move), including across
//!   group-commit batches and checkpoint rotations;
//! * a write path that dies mid-workload degrades the pager to read-only
//!   exactly once — lookups keep answering committed state, mutations are
//!   rejected with a typed error, and a heal + resume re-applies the parked
//!   frames and lets the workload finish;
//! * the negative control holds: an unrepairable flip (no journal to repair
//!   from) must surface as a typed checksum fault and a degraded pager,
//!   never as a clean audit.
//!
//! Every fault plan's transcript is written to `target/chaos-transcript.txt`
//! so a failing seed can be replayed from the exact fault history.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use boxes_audit::Auditable;
use boxes_core::bbox::BBoxConfig;
use boxes_core::lidf::{BlockPtrRecord, Lid, Lidf};
use boxes_core::naive::NaiveConfig;
use boxes_core::pager::{
    codec, splitmix64, BlockId, DegradedReason, FaultPlan, FaultPlanConfig, Health, IoStats, Pager,
    PagerConfig, PagerError, RetryPolicy, SharedPager,
};
use boxes_core::wal::{Wal, WalConfig};
use boxes_core::wbox::WBoxConfig;
use boxes_core::{BBoxScheme, LabelingScheme, NaiveScheme, WBoxScheme};

/// Number of element pairs in the bulk-loaded base document.
const BASE: usize = 8;
/// Mutating operations after the bulk load (op indices 1..=OPS).
const OPS: u64 = 24;
/// Retry budget for every chaos pager: generous enough that independent
/// per-attempt fault rolls cannot plausibly exhaust it, so any budget
/// exhaustion under probabilistic noise is a real retry-logic bug.
const BUDGET: u32 = 8;
/// Per-65536 rate (~6 %) for the probabilistic fault cells.
const RATE: u16 = 4000;
/// Per-65536 bit-rot rate (~2 %): every hit forces a journal read-repair.
const FLIP_RATE: u16 = 1500;

/// One successfully applied workload primitive, logged by the faulty run so
/// the fault-free oracle can replay *exactly* the operations that took
/// effect (under a dying disk an op may be cut short mid-element).
#[derive(Clone, Copy)]
enum Prim {
    /// The op-0 bulk load of the `BASE`-pair base document.
    Bulk,
    /// `insert_element_before(anchor)`.
    InsertElement(Lid),
    /// `insert_subtree_before(anchor, ..)` of the fixed 2-element batch.
    InsertSubtree(Lid),
    /// `delete(lid)` of one tag.
    Delete(Lid),
}

/// Live-document bookkeeping for the seeded workload.
#[derive(Default)]
struct Doc {
    lids: Vec<Lid>,
    dead: BTreeSet<Lid>,
    last_pair: Option<(Lid, Lid)>,
}

impl Doc {
    fn live(&self) -> Vec<Lid> {
        self.lids
            .iter()
            .copied()
            .filter(|l| !self.dead.contains(l))
            .collect()
    }
}

/// Apply op `i` of the seeded workload through the fallible scheme surface.
/// The op mix (element insert / 2-element subtree insert / deletion of the
/// most recent still-empty element) and every anchor are pure functions of
/// `(seed, i)`, so a fault-free replay of the logged primitives reproduces
/// the exact same LIDF allocations and labels. `st` and `log` record only
/// the primitives that actually succeeded — on a typed error the structure
/// was left untouched by the gate-first `try_*` contract.
fn drive_op<S: LabelingScheme>(
    s: &mut S,
    seed: u64,
    i: u64,
    st: &mut Doc,
    log: &mut Vec<Prim>,
) -> Result<(), PagerError> {
    if i == 0 {
        let partner_of: Vec<usize> = (0..2 * BASE).map(|t| t ^ 1).collect();
        st.lids = PagerError::catch(|| s.bulk_load_document(&partner_of))?;
        log.push(Prim::Bulk);
        return Ok(());
    }
    let live = st.live();
    let h = splitmix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    match h % 4 {
        0 if st.last_pair.is_some() => {
            let (a, b) = st.last_pair.take().expect("checked is_some");
            s.try_delete(a)?;
            st.dead.insert(a);
            log.push(Prim::Delete(a));
            s.try_delete(b)?;
            st.dead.insert(b);
            log.push(Prim::Delete(b));
        }
        1 => {
            let anchor = live[codec::u64_to_index(h >> 8) % live.len()];
            let new = s.try_insert_subtree_before(anchor, &[1, 0, 3, 2])?;
            st.lids.extend(new);
            log.push(Prim::InsertSubtree(anchor));
        }
        _ => {
            let anchor = live[codec::u64_to_index(h >> 8) % live.len()];
            let (start, end) = s.try_insert_element_before(anchor)?;
            st.lids.push(start);
            st.lids.push(end);
            st.last_pair = Some((start, end));
            log.push(Prim::InsertElement(anchor));
        }
    }
    Ok(())
}

/// Replay logged primitives on a fault-free scheme. Anchors are replayed by
/// Lid: allocation order is deterministic, so the oracle mints the same Lids
/// the faulty run did.
fn replay<S: LabelingScheme>(s: &mut S, log: &[Prim]) {
    for p in log {
        match *p {
            Prim::Bulk => {
                let partner_of: Vec<usize> = (0..2 * BASE).map(|t| t ^ 1).collect();
                s.bulk_load_document(&partner_of);
            }
            Prim::InsertElement(anchor) => {
                s.insert_element_before(anchor);
            }
            Prim::InsertSubtree(anchor) => {
                s.insert_subtree_before(anchor, &[1, 0, 3, 2]);
            }
            Prim::Delete(lid) => s.delete(lid),
        }
    }
}

/// Audit the faulty-run scheme and compare it label-for-label against a
/// fault-free oracle that replays the successful-primitive log.
fn verify_against_oracle<S: LabelingScheme>(
    label: &str,
    s: &S,
    st: &Doc,
    log: &[Prim],
    fresh: impl FnOnce() -> S,
    audit: &impl Fn(&S) -> Result<(), String>,
) -> Result<(), String> {
    audit(s).map_err(|msg| format!("{label}: audit under faults: {msg}"))?;
    let mut oracle = fresh();
    replay(&mut oracle, log);
    if s.len() != oracle.len() {
        return Err(format!(
            "{label}: len {} vs fault-free oracle {}",
            s.len(),
            oracle.len()
        ));
    }
    for lid in st.live() {
        let got = s.lookup(lid);
        let want = oracle.lookup(lid);
        if got != want {
            return Err(format!(
                "{label}: label of {lid:?} diverges under faults: {got:?} vs oracle {want:?}"
            ));
        }
    }
    Ok(())
}

/// One chaos scenario's fixed parameters.
#[derive(Clone, Copy)]
struct Setup<'a> {
    label: &'a str,
    block_size: usize,
    wal: WalConfig,
    cfg: FaultPlanConfig,
    /// Workload seed (independent of the fault plan's `cfg.seed`).
    seed: u64,
}

/// Journaled pager + attached fault plan, retry budget raised to `BUDGET`.
fn chaos_pager(setup: &Setup<'_>) -> (SharedPager, Arc<FaultPlan>) {
    let pager = Pager::new(PagerConfig::with_block_size(setup.block_size));
    let wal = Wal::new(setup.block_size, setup.wal);
    pager.attach_journal(wal);
    let plan = FaultPlan::new(setup.cfg);
    pager.attach_fault_injector(plan.clone());
    pager.set_retry_policy(RetryPolicy {
        budget: BUDGET,
        ..RetryPolicy::default()
    });
    (pager, plan)
}

/// Append one scenario's fault-plan transcript section.
fn append_transcript(t: &mut String, label: &str, plan: &FaultPlan) {
    let _ = writeln!(t, "## {label}: {} fault(s) injected", plan.injected());
    for e in plan.events() {
        let _ = writeln!(t, "{e}");
    }
    let _ = writeln!(t);
}

/// Run the full workload under a probabilistic (in-budget) fault plan and
/// demand the faults were both *real* (the plan injected, the expected
/// `IoStats` counter moved) and *invisible* (no degradation, clean audits,
/// oracle agreement).
///
/// A probabilistic plan can legitimately roll a run where the cell's fault
/// kind never fires (the workload only issues so many attempts), so derived
/// plan seeds are tried until the expected counter moves — the correctness
/// assertions stay hard on every attempt; only the vacuity retry is soft.
fn noisy_one<S: LabelingScheme>(
    setup: Setup<'_>,
    build: impl Fn(SharedPager) -> S,
    audit: impl Fn(&S) -> Result<(), String>,
    stat_check: impl Fn(IoStats) -> Result<(), String>,
    transcript: &mut String,
) -> Result<(), String> {
    let label = setup.label;
    let mut last_miss = String::new();
    for derivation in 0..8u64 {
        let mut attempt = setup;
        attempt.cfg.seed = setup
            .cfg
            .seed
            .wrapping_add(derivation.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (pager, plan) = chaos_pager(&attempt);
        let mut s = build(pager.clone());
        let mut st = Doc::default();
        let mut log = Vec::new();
        for i in 0..=OPS {
            drive_op(&mut s, attempt.seed, i, &mut st, &mut log)
                .map_err(|e| format!("{label}: op {i} failed under in-budget noise: {e}"))?;
        }
        if !pager.health().is_ok() || pager.degraded_entries() != 0 {
            return Err(format!(
                "{label}: in-budget noise must never degrade the pager (health {:?})",
                pager.health()
            ));
        }
        let fresh = || build(Pager::new(PagerConfig::with_block_size(attempt.block_size)));
        verify_against_oracle(label, &s, &st, &log, fresh, &audit)?;
        if plan.injected() > 0 {
            if let Err(miss) = stat_check(pager.stats()) {
                last_miss = miss;
                continue;
            }
            append_transcript(transcript, label, &plan);
            return Ok(());
        }
        last_miss = "the plan injected nothing".into();
    }
    Err(format!(
        "{label}: vacuous across 8 derived plan seeds — {last_miss}"
    ))
}

/// Assert one `IoStats` counter moved — proof the scenario exercised the
/// pager response it was built for.
#[must_use = "the returned check must be handed to a scenario runner"]
fn moved(
    what: &'static str,
    get: impl Fn(IoStats) -> u64,
) -> impl Fn(IoStats) -> Result<(), String> {
    move |stats| {
        if get(stats) > 0 {
            Ok(())
        } else {
            Err(format!("expected {what} > 0, stats {stats:?}"))
        }
    }
}

fn wbox_audit(s: &WBoxScheme) -> Result<(), String> {
    let report = s.inner().audit();
    report
        .is_clean()
        .then_some(())
        .ok_or_else(|| report.to_string())
}

fn bbox_audit(s: &BBoxScheme) -> Result<(), String> {
    let report = s.inner().audit();
    report
        .is_clean()
        .then_some(())
        .ok_or_else(|| report.to_string())
}

/// The fault site × kind grid on W-BOX: one cell per taxonomy row, plus a
/// mixed cell, each asserting the matching pager response fired.
fn grid(seed: u64, transcript: &mut String) -> Result<(), String> {
    const WBS: usize = 1024;
    let cell = |label: &'static str,
                plan_seed: u64,
                tweak: &dyn Fn(&mut FaultPlanConfig),
                check: &dyn Fn(IoStats) -> Result<(), String>,
                transcript: &mut String|
     -> Result<(), String> {
        let mut cfg = FaultPlanConfig::quiet(plan_seed, WBS);
        tweak(&mut cfg);
        noisy_one(
            Setup {
                label,
                block_size: WBS,
                wal: WalConfig::default(),
                cfg,
                seed: plan_seed ^ 0xD0C,
            },
            |p| WBoxScheme::new(p, WBoxConfig::from_block_size(WBS)),
            wbox_audit,
            check,
            transcript,
        )
    };
    cell(
        "grid/read-transient",
        seed ^ 0x21,
        &|c| {
            c.read_error_rate = RATE;
            c.transient_streak = 3;
        },
        &moved("retries", |s| s.retries),
        transcript,
    )?;
    cell(
        "grid/write-transient",
        seed ^ 0x22,
        &|c| {
            c.write_error_rate = RATE;
            c.transient_streak = 3;
        },
        &moved("retries", |s| s.retries),
        transcript,
    )?;
    cell(
        "grid/write-short",
        seed ^ 0x23,
        &|c| c.short_write_rate = RATE,
        &moved("retries", |s| s.retries),
        transcript,
    )?;
    cell(
        "grid/latency-both-sites",
        seed ^ 0x24,
        &|c| c.latency_rate = RATE,
        &moved("backoff_ticks", |s| s.backoff_ticks),
        transcript,
    )?;
    cell(
        "grid/read-bit-flip",
        seed ^ 0x25,
        &|c| c.bit_flip_rate = FLIP_RATE,
        &moved("repairs", |s| s.repairs),
        transcript,
    )?;
    cell(
        "grid/mixed",
        seed ^ 0x26,
        &|c| {
            c.read_error_rate = RATE;
            c.write_error_rate = RATE;
            c.short_write_rate = RATE / 2;
            c.latency_rate = RATE / 2;
            c.bit_flip_rate = FLIP_RATE;
            c.transient_streak = 2;
        },
        &|stats| {
            moved("retries", |s: IoStats| s.retries)(stats)?;
            moved("repairs", |s: IoStats| s.repairs)(stats)
        },
        transcript,
    )
}

/// The mixed-noise plan on the remaining schemes (the grid covered W-BOX).
fn all_schemes_mixed(seed: u64, transcript: &mut String) -> Result<(), String> {
    let mixed = |plan_seed: u64, block_size: usize| {
        let mut cfg = FaultPlanConfig::quiet(plan_seed, block_size);
        cfg.read_error_rate = RATE;
        cfg.write_error_rate = RATE;
        cfg.short_write_rate = RATE / 2;
        cfg.latency_rate = RATE / 2;
        cfg.bit_flip_rate = FLIP_RATE;
        cfg.transient_streak = 2;
        cfg
    };
    noisy_one(
        Setup {
            label: "mixed/wbox-pair",
            block_size: 1024,
            wal: WalConfig::default(),
            cfg: mixed(seed ^ 0x31, 1024),
            seed: seed ^ 0x41,
        },
        |p| WBoxScheme::new(p, WBoxConfig::from_block_size_paired(1024)),
        wbox_audit,
        moved("retries", |s| s.retries),
        transcript,
    )?;
    noisy_one(
        Setup {
            label: "mixed/bbox",
            block_size: 256,
            wal: WalConfig::default(),
            cfg: mixed(seed ^ 0x32, 256),
            seed: seed ^ 0x42,
        },
        |p| BBoxScheme::new(p, BBoxConfig::from_block_size(256)),
        bbox_audit,
        moved("retries", |s| s.retries),
        transcript,
    )?;
    // naive-k has no structural auditor; the oracle comparison is the
    // behavioral equivalent.
    noisy_one(
        Setup {
            label: "mixed/naive-8",
            block_size: 256,
            wal: WalConfig::default(),
            cfg: mixed(seed ^ 0x33, 256),
            seed: seed ^ 0x43,
        },
        |p| NaiveScheme::new(p, NaiveConfig { extra_bits: 8 }),
        |_| Ok(()),
        moved("retries", |s| s.retries),
        transcript,
    )
}

/// Bit rot under group commit + checkpoint rotation: repairs must come from
/// checkpoint images + redo replay, not just the tail of a never-rotated
/// log.
fn checkpointed_bit_rot(seed: u64, transcript: &mut String) -> Result<(), String> {
    let mut cfg = FaultPlanConfig::quiet(seed ^ 0x51, 1024);
    cfg.bit_flip_rate = FLIP_RATE * 2;
    noisy_one(
        Setup {
            label: "bit-rot/group-commit+checkpoints",
            block_size: 1024,
            wal: WalConfig {
                sync_every: 3,
                checkpoint_every: 2,
            },
            cfg,
            seed: seed ^ 0x52,
        },
        |p| WBoxScheme::new(p, WBoxConfig::from_block_size_paired(1024)),
        wbox_audit,
        moved("repairs", |s| s.repairs),
        transcript,
    )
}

/// Kill the write path mid-workload: the pager must degrade to read-only
/// exactly once, keep answering committed labels, reject every further
/// mutation with a typed error, and fully resume after heal + `try_resume`.
fn degraded_scenario<S: LabelingScheme>(
    setup: Setup<'_>,
    build: impl Fn(SharedPager) -> S,
    audit: impl Fn(&S) -> Result<(), String>,
    transcript: &mut String,
) -> Result<(), String> {
    const HALF: u64 = OPS / 2;
    let label = setup.label;
    let (pager, plan) = chaos_pager(&setup);
    let mut s = build(pager.clone());
    let mut st = Doc::default();
    let mut log = Vec::new();
    for i in 0..=HALF {
        drive_op(&mut s, setup.seed, i, &mut st, &mut log)
            .map_err(|e| format!("{label}: healthy op {i} failed: {e}"))?;
    }
    plan.fail_all_writes_after(0);
    // The op whose commit first hits the dead write path still returns Ok —
    // its record is durable and its frames are parked in the overlay. Every
    // op after that must be rejected up front with the typed reason.
    let mut rejected = 0u64;
    for i in HALF + 1..=OPS {
        match drive_op(&mut s, setup.seed, i, &mut st, &mut log) {
            Ok(()) => {}
            Err(PagerError::Degraded(DegradedReason::WriteFault { .. })) => rejected += 1,
            Err(other) => {
                return Err(format!(
                    "{label}: op {i}: expected a WriteFault rejection, got {other}"
                ));
            }
        }
    }
    match pager.health() {
        Health::Degraded(DegradedReason::WriteFault { .. }) => {}
        h => {
            return Err(format!(
                "{label}: write-path death did not degrade the pager (health {h:?})"
            ));
        }
    }
    if pager.degraded_entries() != 1 {
        return Err(format!(
            "{label}: degraded entered {} times, expected exactly once",
            pager.degraded_entries()
        ));
    }
    if rejected == 0 {
        return Err(format!(
            "{label}: every op kept succeeding with a dead write path"
        ));
    }
    // Read service while degraded: audits clean, every committed label
    // answered and agreeing with the fault-free oracle.
    audit(&s).map_err(|msg| format!("{label}: degraded audit: {msg}"))?;
    let fresh = || build(Pager::new(PagerConfig::with_block_size(setup.block_size)));
    let mut oracle = fresh();
    replay(&mut oracle, &log);
    for lid in st.live() {
        let got = s
            .try_lookup(lid)
            .map_err(|e| format!("{label}: degraded lookup of {lid:?} failed: {e}"))?;
        let want = oracle.lookup(lid);
        if got != want {
            return Err(format!(
                "{label}: degraded label of {lid:?} diverges: {got:?} vs oracle {want:?}"
            ));
        }
    }
    // Disk replaced: parked frames re-apply, mutations resume, and the
    // finished workload still agrees with the oracle end to end.
    plan.heal();
    pager
        .try_resume()
        .map_err(|e| format!("{label}: resume after heal failed: {e}"))?;
    if !pager.health().is_ok() {
        return Err(format!("{label}: still degraded after a clean resume"));
    }
    for i in OPS + 1..=OPS + 6 {
        drive_op(&mut s, setup.seed, i, &mut st, &mut log)
            .map_err(|e| format!("{label}: post-resume op {i} failed: {e}"))?;
    }
    if pager.degraded_entries() != 1 {
        return Err(format!("{label}: resume re-entered degraded mode"));
    }
    append_transcript(transcript, label, &plan);
    verify_against_oracle(label, &s, &st, &log, fresh, &audit)
}

/// The standalone-LIDF degraded drill: allocation churn, write-path death,
/// read service, typed rejections, heal + resume.
fn lidf_degraded(seed: u64, transcript: &mut String) -> Result<(), String> {
    const BS: usize = 256;
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let plan = FaultPlan::new(FaultPlanConfig::quiet(seed, BS));
    pager.attach_fault_injector(plan.clone());
    let mut l: Lidf<BlockPtrRecord> = Lidf::new(pager.clone());
    let mut lids = Vec::new();
    for i in 0..12u32 {
        let lid = l
            .try_alloc(BlockPtrRecord::new(BlockId(100 + i)))
            .map_err(|e| format!("lidf: healthy alloc {i} failed: {e}"))?;
        lids.push(lid);
    }
    plan.fail_all_writes_after(0);
    match l.try_write(lids[0], BlockPtrRecord::new(BlockId(999))) {
        Err(PagerError::Degraded(DegradedReason::WriteFault { .. })) => {}
        other => {
            return Err(format!(
                "lidf: write on a dead disk must degrade, got {other:?}"
            ));
        }
    }
    if pager.health().is_ok() || pager.degraded_entries() != 1 {
        return Err("lidf: write-path death did not degrade the pager".into());
    }
    // Reads keep answering; untouched records still hold their values.
    for (i, &lid) in lids.iter().enumerate().skip(1) {
        let got = l
            .try_read(lid)
            .map_err(|e| format!("lidf: degraded read of {lid:?} failed: {e}"))?;
        if got.block != BlockId(100 + codec::usize_to_u32(i).unwrap_or(u32::MAX)) {
            return Err(format!("lidf: degraded read of {lid:?} returned {got:?}"));
        }
    }
    if !matches!(
        l.try_alloc(BlockPtrRecord::new(BlockId(7))),
        Err(PagerError::Degraded(_))
    ) || !matches!(l.try_free(lids[1]), Err(PagerError::Degraded(_)))
    {
        return Err("lidf: degraded mutations must be rejected with the typed reason".into());
    }
    plan.heal();
    pager
        .try_resume()
        .map_err(|e| format!("lidf: resume after heal failed: {e}"))?;
    l.try_write(lids[0], BlockPtrRecord::new(BlockId(999)))
        .map_err(|e| format!("lidf: post-resume write failed: {e}"))?;
    let report = l.audit();
    if !report.is_clean() {
        return Err(format!("lidf: post-resume audit: {report}"));
    }
    append_transcript(transcript, "lidf/degraded", &plan);
    Ok(())
}

/// Negative control: a flipped byte with *no* journal to repair from must be
/// detected loudly — a typed checksum fault and an `Unrepairable` degraded
/// pager — and must never pass a structure audit as clean.
fn unrepairable_flip_control(seed: u64, transcript: &mut String) -> Result<(), String> {
    const WBS: usize = 1024;
    let pager = Pager::new(PagerConfig::with_block_size(WBS));
    let mut s = WBoxScheme::new(pager.clone(), WBoxConfig::from_block_size(WBS));
    let partner_of: Vec<usize> = (0..2 * BASE).map(|t| t ^ 1).collect();
    s.bulk_load_document(&partner_of);
    // Pick a seeded victim among the allocated blocks and rot one bit
    // behind the pager's back.
    let mut victims = Vec::new();
    let mut raw = 0u32;
    while victims.len() < pager.allocated_blocks() && raw < 100_000 {
        if pager.is_allocated(BlockId(raw)) {
            victims.push(BlockId(raw));
        }
        raw += 1;
    }
    if victims.is_empty() {
        return Err("flip-control: bulk load allocated no blocks".into());
    }
    let victim = victims[codec::u64_to_index(splitmix64(seed)) % victims.len()];
    let offset = codec::u64_to_index(splitmix64(seed ^ 1)) % WBS;
    let mask = 1u8 << (splitmix64(seed ^ 2) & 7);
    pager.corrupt_block(victim, offset, mask);
    let _ = writeln!(
        transcript,
        "## flip-control: planted unrepairable flip at {victim:?} offset {offset} mask {mask:#04x}\n"
    );
    match pager.try_read(victim) {
        Err(PagerError::Corrupt { block }) if block == victim => {}
        other => {
            return Err(format!(
                "flip-control: read of the rotted block must fail typed, got {other:?}"
            ));
        }
    }
    match pager.health() {
        Health::Degraded(DegradedReason::Unrepairable { block }) if block == victim => {}
        h => {
            return Err(format!(
                "flip-control: expected Unrepairable degradation, health {h:?}"
            ));
        }
    }
    // The louder end-to-end form: a full structure audit over the damaged
    // store must not come back clean.
    match PagerError::catch(|| s.inner().audit().is_clean()) {
        Ok(true) => Err(
            "flip-control: unrepairable flip audited CLEAN — corruption \
                         passed undetected"
                .into(),
        ),
        Ok(false) | Err(PagerError::Corrupt { .. }) => Ok(()),
        Err(other) => Err(format!(
            "flip-control: audit failed with an unexpected error: {other}"
        )),
    }
}

/// Typed pager errors unwind as [`PagerError`] panics that the fallible
/// wrappers catch; the default hook would still print a spurious backtrace
/// for every expected rejection. Filter exactly that payload — real panics
/// keep the full default report.
pub(crate) fn silence_pager_error_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !info.payload().is::<PagerError>() {
            prev(info);
        }
    }));
}

/// Run the full chaos pass; prints one line per scenario, writes the
/// fault-plan transcript artifact, and returns overall success.
pub(crate) fn chaos_lint(seed: u64, root: &Path) -> bool {
    silence_pager_error_panics();
    let mut transcript = format!("# chaos fault-plan transcript (seed {seed:#x})\n\n");
    let mut checks: Vec<(&str, Result<(), String>)> = Vec::new();
    let r = grid(seed, &mut transcript);
    checks.push(("site-kind grid (wbox)", r));
    let r = all_schemes_mixed(seed ^ 0x100, &mut transcript);
    checks.push(("mixed noise (all schemes)", r));
    let r = checkpointed_bit_rot(seed ^ 0x200, &mut transcript);
    checks.push(("bit-rot repair across checkpoints", r));
    let r = degraded_scenario(
        Setup {
            label: "degraded/wbox",
            block_size: 1024,
            wal: WalConfig::default(),
            cfg: FaultPlanConfig::quiet(seed ^ 0x301, 1024),
            seed: seed ^ 0x311,
        },
        |p| WBoxScheme::new(p, WBoxConfig::from_block_size(1024)),
        wbox_audit,
        &mut transcript,
    );
    checks.push(("degraded read-only (wbox)", r));
    let r = degraded_scenario(
        Setup {
            label: "degraded/wbox-pair",
            block_size: 1024,
            wal: WalConfig::default(),
            cfg: FaultPlanConfig::quiet(seed ^ 0x302, 1024),
            seed: seed ^ 0x312,
        },
        |p| WBoxScheme::new(p, WBoxConfig::from_block_size_paired(1024)),
        wbox_audit,
        &mut transcript,
    );
    checks.push(("degraded read-only (wbox-pair)", r));
    let r = degraded_scenario(
        Setup {
            label: "degraded/bbox",
            block_size: 256,
            wal: WalConfig::default(),
            cfg: FaultPlanConfig::quiet(seed ^ 0x303, 256),
            seed: seed ^ 0x313,
        },
        |p| BBoxScheme::new(p, BBoxConfig::from_block_size(256)),
        bbox_audit,
        &mut transcript,
    );
    checks.push(("degraded read-only (bbox)", r));
    let r = degraded_scenario(
        Setup {
            label: "degraded/naive-8",
            block_size: 256,
            wal: WalConfig::default(),
            cfg: FaultPlanConfig::quiet(seed ^ 0x304, 256),
            seed: seed ^ 0x314,
        },
        |p| NaiveScheme::new(p, NaiveConfig { extra_bits: 8 }),
        |_| Ok(()),
        &mut transcript,
    );
    checks.push(("degraded read-only (naive-8)", r));
    let r = lidf_degraded(seed ^ 0x400, &mut transcript);
    checks.push(("degraded read-only (lidf)", r));
    let r = unrepairable_flip_control(seed ^ 0x500, &mut transcript);
    checks.push(("unrepairable-flip control", r));

    let mut ok = true;
    for (name, result) in checks {
        match result {
            Ok(()) => println!("  chaos: {name:<40} ok"),
            Err(msg) => {
                eprintln!("  chaos: {name:<40} FAILED\n{msg}");
                ok = false;
            }
        }
    }

    let dir = root.join("target");
    let path = dir.join("chaos-transcript.txt");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &transcript)) {
        Ok(()) => println!("  chaos: transcript written to {}", path.display()),
        Err(e) => {
            eprintln!(
                "  chaos: could not write transcript {}: {e}",
                path.display()
            );
            ok = false;
        }
    }
    ok
}
