//! The crash-recovery semantic pass: for every scheme, sweep an injected
//! crash over *every* WAL/page-write boundary of a mixed workload, recover
//! from the surviving disk image + durable log, and demand (a) clean
//! structure audits and (b) label-for-label agreement with an oracle that
//! replays exactly the committed operation prefix. Two negative controls
//! prove the recovery machinery itself can still see damage: a truncated
//! final WAL record must be rolled back silently, and a corrupted record
//! checksum must fail recovery loudly.

use std::collections::BTreeSet;

use boxes_audit::Auditable;
use boxes_core::bbox::BBoxConfig;
use boxes_core::durable::{reopen_bbox, reopen_lidf, reopen_naive, reopen_wbox, DurableEnv};
use boxes_core::lidf::{BlockPtrRecord, Lid, Lidf};
use boxes_core::naive::NaiveConfig;
use boxes_core::pager::{codec, BlockId, CrashSignal, Pager, PagerConfig, SharedPager};
use boxes_core::wal::{recover, Recovered, WalConfig, WalError};
use boxes_core::wbox::WBoxConfig;
use boxes_core::{BBoxScheme, LabelingScheme, NaiveScheme, WBoxScheme};

/// Number of element pairs in the bulk-loaded base document.
const BASE: usize = 8;
/// Mutating operations after the bulk load (op indices 1..=OPS; the bulk
/// load is op 0).
pub(crate) const OPS: u64 = 8;

/// Injected crashes unwind with [`CrashSignal`], which the default panic
/// hook would print as a spurious backtrace for every swept tick. Filter
/// exactly that payload; real panics keep the full default report.
pub(crate) fn silence_crash_signal_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !info.payload().is::<CrashSignal>() {
            prev(info);
        }
    }));
}

/// Live-document bookkeeping shared by the crashing run and the oracle.
#[derive(Default)]
pub(crate) struct DocState {
    lids: Vec<Lid>,
    dead: BTreeSet<Lid>,
    last_pair: Option<(Lid, Lid)>,
}

impl DocState {
    pub(crate) fn live(&self) -> Vec<Lid> {
        self.lids
            .iter()
            .copied()
            .filter(|l| !self.dead.contains(l))
            .collect()
    }
}

/// Apply operation `i` of the deterministic mixed workload: bulk load,
/// element inserts, a 2-element subtree insert, and deletion of the element
/// inserted by the preceding op (both tags in one atomic operation).
pub(crate) fn apply_op<S: LabelingScheme>(s: &mut S, i: u64, st: &mut DocState) {
    if i == 0 {
        let partner_of: Vec<usize> = (0..2 * BASE).map(|t| t ^ 1).collect();
        st.lids = s.bulk_load_document(&partner_of);
        return;
    }
    let live = st.live();
    let anchor = live[codec::u64_to_index(i * 7) % live.len()];
    match i % 4 {
        0 => {
            // Ops with i % 4 == 3 inserted an element; it is still empty
            // (nothing was inserted between its tags since), so deleting
            // both tags removes exactly that element.
            let (a, b) = st.last_pair.take().expect("op i-1 inserted a pair");
            s.delete(a);
            s.delete(b);
            st.dead.insert(a);
            st.dead.insert(b);
        }
        2 => {
            let new = s.insert_subtree_before(anchor, &[1, 0, 3, 2]);
            st.lids.extend(new);
        }
        _ => {
            let (start, end) = s.insert_element_before(anchor);
            st.lids.push(start);
            st.lids.push(end);
            st.last_pair = Some((start, end));
        }
    }
}

/// Run ops `0..=upto`; when `journal` is given, each op is wrapped in an
/// outer transaction scope carrying a progress meta (folded into the same
/// atomic WAL record as the scheme's own nested transaction).
pub(crate) fn run_ops<S: LabelingScheme>(
    s: &mut S,
    journal: Option<&SharedPager>,
    upto: u64,
) -> DocState {
    let mut st = DocState::default();
    for i in 0..=upto {
        match journal {
            Some(pager) => {
                let txn = pager.txn();
                apply_op(s, i, &mut st);
                pager.txn_meta("harness", || {
                    let mut w = boxes_core::pager::VecWriter::new();
                    w.u64(i + 1); // ops committed so far, bulk load included
                    w.into_bytes()
                });
                txn.commit();
            }
            None => apply_op(s, i, &mut st),
        }
    }
    st
}

pub(crate) fn committed_ops(rec: &Recovered) -> u64 {
    rec.meta("harness")
        .map(|m| boxes_core::pager::Reader::new(m).u64())
        .unwrap_or(0)
}

/// Recover, reopen, audit, and compare against the committed-prefix oracle.
pub(crate) fn verify_recovered<S: LabelingScheme>(
    label: &str,
    target: u64,
    rec: &Recovered,
    reopen: &impl Fn(&Recovered) -> Option<S>,
    fresh: &impl Fn() -> S,
    audit: &impl Fn(&S) -> Result<(), String>,
) -> Result<(), String> {
    let committed = committed_ops(rec);
    if committed == 0 && rec.records == 0 {
        if rec.pager.allocated_blocks() != 0 {
            return Err(format!(
                "{label}: tick {target}: nothing committed yet recovery kept blocks"
            ));
        }
        return Ok(());
    }
    let Some(scheme) = reopen(rec) else {
        return Err(format!(
            "{label}: tick {target}: committed state lacks the scheme meta"
        ));
    };
    audit(&scheme).map_err(|msg| format!("{label}: tick {target}: recovered audit: {msg}"))?;
    if committed == 0 {
        // The scheme's own construction record is durable but no harness op
        // committed: the recovered structure must be an intact empty scheme.
        if scheme.len() != 0 {
            return Err(format!(
                "{label}: tick {target}: no ops committed yet {} labels recovered",
                scheme.len()
            ));
        }
        return Ok(());
    }
    let mut oracle = fresh();
    let st = run_ops(&mut oracle, None, committed - 1);
    if scheme.len() != oracle.len() {
        return Err(format!(
            "{label}: tick {target}: recovered len {} vs oracle {}",
            scheme.len(),
            oracle.len()
        ));
    }
    for lid in st.live() {
        let got = scheme.lookup(lid);
        let want = oracle.lookup(lid);
        if got != want {
            return Err(format!(
                "{label}: tick {target}: label of {lid:?} diverges: {got:?} vs oracle {want:?}"
            ));
        }
    }
    Ok(())
}

/// Sweep every crash point of the workload for one scheme configuration.
fn crash_sweep<S: LabelingScheme>(
    label: &str,
    block_size: usize,
    wal_config: WalConfig,
    seed: u64,
    build: impl Fn(SharedPager) -> S,
    reopen: impl Fn(&Recovered) -> Option<S>,
    audit: impl Fn(&S) -> Result<(), String>,
) -> Result<(), String> {
    let fresh = || build(Pager::new(PagerConfig::with_block_size(block_size)));
    // Pass 1: count the workload's crash points with a disarmed clock.
    let total_ticks = {
        let env = DurableEnv::new(block_size, wal_config, seed);
        let mut s = build(env.pager().clone());
        run_ops(&mut s, Some(env.pager()), OPS);
        env.clock().ticks()
    };
    if total_ticks < 20 {
        return Err(format!(
            "{label}: only {total_ticks} crash points — workload too small to be meaningful"
        ));
    }
    // Pass 2: crash at every single one of them.
    for target in 1..=total_ticks {
        let env = DurableEnv::new(block_size, wal_config, seed);
        env.clock().arm(target);
        let outcome = env.run_to_crash(|| {
            let mut s = build(env.pager().clone());
            run_ops(&mut s, Some(env.pager()), OPS);
        });
        if outcome.is_some() {
            return Err(format!(
                "{label}: tick {target} of {total_ticks} did not crash"
            ));
        }
        let rec = env
            .recover()
            .map_err(|e| format!("{label}: tick {target}: recovery failed: {e}"))?;
        verify_recovered(label, target, &rec, &reopen, &fresh, &audit)?;
    }
    Ok(())
}

/// The standalone-LIDF sweep: alloc/write/free churn on a raw
/// [`Lidf<BlockPtrRecord>`], same two-pass structure as the schemes.
fn lidf_sweep(seed: u64) -> Result<(), String> {
    const BS: usize = 256;
    let run = |pager: SharedPager, journal: bool, upto: u64| -> (Lidf<BlockPtrRecord>, Vec<Lid>) {
        let mut live: Vec<Lid> = Vec::new();
        let mut l: Option<Lidf<BlockPtrRecord>> = None;
        for i in 0..=upto {
            let txn = journal.then(|| pager.txn());
            match &mut l {
                None => {
                    let mut lidf = Lidf::new(pager.clone());
                    let recs: Vec<_> = (0..30u32)
                        .map(|r| BlockPtrRecord::new(BlockId(r)))
                        .collect();
                    live = lidf.bulk_append(&recs);
                    l = Some(lidf);
                }
                Some(lidf) => {
                    let r = codec::u64_to_index(i * 13);
                    match i % 3 {
                        0 => {
                            let victim = live.remove(r % live.len());
                            lidf.free(victim);
                        }
                        1 => live.push(lidf.alloc(BlockPtrRecord::new(BlockId(1000 + r as u32)))),
                        _ => {
                            let lid = live[r % live.len()];
                            lidf.write(lid, BlockPtrRecord::new(BlockId(2000 + r as u32)));
                        }
                    }
                }
            }
            if let Some(txn) = txn {
                pager.txn_meta("harness", || {
                    let mut w = boxes_core::pager::VecWriter::new();
                    w.u64(i + 1);
                    w.into_bytes()
                });
                txn.commit();
            }
        }
        (l.expect("op 0 builds the lidf"), live)
    };
    let total_ticks = {
        let env = DurableEnv::new(BS, WalConfig::default(), seed);
        run(env.pager().clone(), true, OPS);
        env.clock().ticks()
    };
    for target in 1..=total_ticks {
        let env = DurableEnv::new(BS, WalConfig::default(), seed);
        env.clock().arm(target);
        let outcome = env.run_to_crash(|| {
            run(env.pager().clone(), true, OPS);
        });
        if outcome.is_some() {
            return Err(format!(
                "lidf: tick {target} of {total_ticks} did not crash"
            ));
        }
        let rec = env
            .recover()
            .map_err(|e| format!("lidf: tick {target}: recovery failed: {e}"))?;
        let committed = committed_ops(&rec);
        if committed == 0 {
            continue;
        }
        let Some(lidf) = reopen_lidf::<BlockPtrRecord>(&rec) else {
            return Err(format!(
                "lidf: tick {target}: committed state lacks the lidf meta"
            ));
        };
        let report = lidf.audit();
        if !report.is_clean() {
            return Err(format!("lidf: tick {target}: recovered audit:\n{report}"));
        }
        let (oracle, live) = run(
            Pager::new(PagerConfig::with_block_size(BS)),
            false,
            committed - 1,
        );
        if lidf.len() != oracle.len() {
            return Err(format!(
                "lidf: tick {target}: recovered len {} vs oracle {}",
                lidf.len(),
                oracle.len()
            ));
        }
        for &lid in &live {
            let (got, want) = (lidf.read(lid), oracle.read(lid));
            if got.block != want.block {
                return Err(format!(
                    "lidf: tick {target}: record {lid:?} diverges: {got:?} vs {want:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Negative control 1: a WAL whose final record is cut short must recover
/// cleanly *minus that record* and report the rolled-back tail.
fn torn_tail_control(seed: u64) -> Result<(), String> {
    let env = DurableEnv::new(1024, WalConfig::default(), seed);
    let mut s = WBoxScheme::new(env.pager().clone(), WBoxConfig::from_block_size(1024));
    run_ops(&mut s, Some(env.pager()), OPS);
    let full = env.wal().durable_bytes();
    let rec = recover(&full[..full.len() - 7], env.pager().disk_image())
        .map_err(|e| format!("torn-tail: recovery failed: {e}"))?;
    if !rec.rolled_back_tail {
        return Err("torn-tail: truncated final record not reported as rolled back".into());
    }
    // OPS + 2 records were written (scheme construction + bulk load + OPS
    // harness ops); the cut final one rolls back.
    if rec.commits != OPS + 1 {
        return Err(format!(
            "torn-tail: expected {} surviving commits, got {}",
            OPS + 1,
            rec.commits
        ));
    }
    if committed_ops(&rec) != OPS {
        return Err("torn-tail: progress meta still reflects the rolled-back op".into());
    }
    let fresh = || WBoxScheme::with_block_size(1024);
    let reopen = |r: &Recovered| reopen_wbox(r, WBoxConfig::from_block_size(1024));
    let audit = |s: &WBoxScheme| {
        let report = s.inner().audit();
        report
            .is_clean()
            .then_some(())
            .ok_or_else(|| report.to_string())
    };
    verify_recovered("torn-tail", 0, &rec, &reopen, &fresh, &audit)
}

/// Negative control 2: a bit flip inside a full-length record must fail
/// recovery loudly — never be silently rolled back or replayed.
fn corrupt_record_control(seed: u64) -> Result<(), String> {
    let env = DurableEnv::new(1024, WalConfig::default(), seed);
    let mut s = WBoxScheme::new(env.pager().clone(), WBoxConfig::from_block_size(1024));
    run_ops(&mut s, Some(env.pager()), OPS);
    let mut log = env.wal().durable_bytes();
    // Deep inside the first record's body: damage that only the record
    // checksum can see. (Avoids the header length field, whose corruption
    // legitimately presents as a torn tail.)
    log[24] ^= 0x20;
    match recover(&log, env.pager().disk_image()) {
        Err(WalError::Corrupt { .. }) => Ok(()),
        Ok(_) => Err("corrupt-record: damaged log recovered without complaint".into()),
        Err(other) => Err(format!("corrupt-record: expected Corrupt, got {other}")),
    }
}

/// Run the full crash-recovery pass; prints one line per check and returns
/// overall success.
pub(crate) fn crash_recovery_lint(seed: u64) -> bool {
    silence_crash_signal_panics();

    let wbox_audit = |s: &WBoxScheme| {
        let report = s.inner().audit();
        report
            .is_clean()
            .then_some(())
            .ok_or_else(|| report.to_string())
    };
    let bbox_audit = |s: &BBoxScheme| {
        let report = s.inner().audit();
        report
            .is_clean()
            .then_some(())
            .ok_or_else(|| report.to_string())
    };
    // naive-k has no structural auditor; the oracle label comparison is the
    // behavioral equivalent.
    let naive_audit = |_: &NaiveScheme| Ok(());

    let checks: Vec<(&str, Result<(), String>)> = vec![
        (
            "wbox",
            crash_sweep(
                "wbox",
                1024,
                WalConfig::default(),
                seed,
                |p| WBoxScheme::new(p, WBoxConfig::from_block_size(1024)),
                |r| reopen_wbox(r, WBoxConfig::from_block_size(1024)),
                wbox_audit,
            ),
        ),
        (
            "wbox-pair/group-commit",
            crash_sweep(
                "wbox-pair/group-commit",
                1024,
                WalConfig {
                    sync_every: 3,
                    checkpoint_every: 2,
                },
                seed ^ 0x1,
                |p| WBoxScheme::new(p, WBoxConfig::from_block_size_paired(1024)),
                |r| reopen_wbox(r, WBoxConfig::from_block_size_paired(1024)),
                wbox_audit,
            ),
        ),
        (
            "bbox",
            crash_sweep(
                "bbox",
                256,
                WalConfig::default(),
                seed ^ 0x2,
                |p| BBoxScheme::new(p, BBoxConfig::from_block_size(256)),
                |r| reopen_bbox(r, BBoxConfig::from_block_size(256)),
                bbox_audit,
            ),
        ),
        (
            "naive-8",
            crash_sweep(
                "naive-8",
                256,
                WalConfig::default(),
                seed ^ 0x3,
                |p| NaiveScheme::new(p, NaiveConfig { extra_bits: 8 }),
                |r| reopen_naive(r, NaiveConfig { extra_bits: 8 }),
                naive_audit,
            ),
        ),
        ("lidf", lidf_sweep(seed ^ 0x4)),
        ("torn-tail-control", torn_tail_control(seed ^ 0x5)),
        ("corrupt-record-control", corrupt_record_control(seed ^ 0x6)),
    ];

    let mut ok = true;
    for (name, result) in checks {
        match result {
            Ok(()) => println!("  crash: {name:<40} ok"),
            Err(msg) => {
                eprintln!("  crash: {name:<40} FAILED\n{msg}");
                ok = false;
            }
        }
    }
    ok
}
