#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Repository automation, invoked as `cargo xtask <command>`.
//!
//! The only command so far is `analyze`: the workspace-wide static-analysis
//! gate. It runs, in order,
//!
//! 1. `cargo fmt --all --check`;
//! 2. a curated `cargo clippy` pass with `-D warnings` plus a few
//!    deny-listed lints (`dbg_macro`, `todo`, `unimplemented`);
//! 3. an unsafe-code audit: every crate root must carry
//!    `#![forbid(unsafe_code)]` and no source file may contain an `unsafe`
//!    token outside comments;
//! 4. a `missing_docs` sweep: every crate root must carry
//!    `#![warn(missing_docs)]`;
//! 5. the **source lint**: the `boxes-lint` BX001–BX020 rule catalog
//!    (pager I/O discipline, filesystem containment, panic freedom, cast
//!    safety, `#[must_use]` reports, public-item docs, lock discipline,
//!    durable-file discipline) over every crate,
//!    against the checked-in `lint.toml` baseline. The JSON report lands in
//!    `target/lint-report.json`. `--lint-only` runs just this step;
//!    `--baseline` prints suggested suppression entries for the current
//!    unsuppressed findings.
//! 6. a **semantic lint**: the [`boxes_audit::Auditable`] auditors are run
//!    over randomized `boxes_xml::workload` update streams after every
//!    operation, failing on any [`boxes_audit::Violation`]. The run also
//!    performs a negative control — a block is deliberately corrupted
//!    through the pager and the audit must *report* it (typed violation,
//!    no panic) — so a silently broken auditor fails the gate too.
//! 7. a **profile/attribution pass** (`--profile-only` runs just this
//!    step): seeded workloads are replayed through every scheme with the
//!    `boxes-trace` span layer live, and the accounting identity is
//!    enforced — every pager-counted I/O (including fault-service retries,
//!    repairs and backoff ticks) must be attributed to an open operation
//!    span, with no spans leaked. The pass writes the deterministic
//!    `target/trace-report.json` and `target/BENCH_boxes.json` artifacts.
//! 8. a **process-kill crash matrix** (`--crash-file-only` runs just this
//!    step): this binary re-execs itself as `xtask crash-child` running a
//!    file-backed workload, `SIGKILL`s the child at seeded kill points,
//!    optionally shreds the unsynced log tail the way a power cut would,
//!    recovers from the surviving files, and demands exactly the committed
//!    prefix back (plus an fsync-poisoning negative control). Report:
//!    `target/crash-file-report.json`.
//!
//! Exit status is zero only when every step passes.

mod analyze;

use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("analyze") => analyze::analyze(&args[1..]),
        // The process-kill crash matrix re-enters this binary as its own
        // victim: the parent sweep spawns `xtask crash-child …` and kills
        // it at seeded points (see `analyze::crashfile`).
        Some("crash-child") => analyze::crashfile::crash_child(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask analyze [--seed N] [--skip-cargo] [--lint-only] \
                 [--chaos-only] [--crash-file-only] [--profile-only] [--baseline]"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Root of the workspace (parent of the `xtask` crate directory).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf()
}
