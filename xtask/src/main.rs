#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Repository automation, invoked as `cargo xtask <command>`.
//!
//! The only command so far is `analyze`: the workspace-wide static-analysis
//! gate. It runs, in order,
//!
//! 1. `cargo fmt --all --check`;
//! 2. a curated `cargo clippy` pass with `-D warnings` plus a few
//!    deny-listed lints (`dbg_macro`, `todo`, `unimplemented`);
//! 3. an unsafe-code audit: every crate root must carry
//!    `#![forbid(unsafe_code)]` and no source file may contain an `unsafe`
//!    token outside comments;
//! 4. a `missing_docs` sweep: every crate root must carry
//!    `#![warn(missing_docs)]`;
//! 5. a **semantic lint**: the [`boxes_audit::Auditable`] auditors are run
//!    over randomized `boxes_xml::workload` update streams after every
//!    operation, failing on any [`boxes_audit::Violation`]. The run also
//!    performs a negative control — a block is deliberately corrupted
//!    through the pager and the audit must *report* it (typed violation,
//!    no panic) — so a silently broken auditor fails the gate too.
//!
//! Exit status is zero only when every step passes.

use std::path::{Path, PathBuf};
use std::process::Command;

use boxes_audit::Auditable;
use boxes_core::bbox::{BBox, BBoxConfig};
use boxes_core::driver::partner_map;
use boxes_core::pager::{BlockId, Pager, PagerConfig};
use boxes_core::wbox::{WBox, WBoxConfig};
use boxes_core::xml::generate::{two_level, xmark};
use boxes_core::xml::workload::{
    concentrated, document_order, insert_delete_churn_with_prefill, scattered, UpdateStream,
};
use boxes_core::{BBoxScheme, CachedBBox, CachedOrdinal, CachedWBox, DocumentDriver, WBoxScheme};
use boxes_core::{LabelingScheme, OrdinalScheme};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask analyze [--seed N] [--skip-cargo]");
            2
        }
    };
    std::process::exit(code);
}

/// Root of the workspace (parent of the `xtask` crate directory).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf()
}

fn analyze(args: &[String]) -> i32 {
    let mut seed: u64 = 0xb0c5_ed01;
    let mut skip_cargo = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs an integer argument");
                    return 2;
                }
            },
            "--skip-cargo" => skip_cargo = true,
            other => {
                eprintln!("unknown argument `{other}`");
                return 2;
            }
        }
    }

    let root = workspace_root();
    let mut failures = 0u32;
    let mut step = |name: &str, ok: bool| {
        println!("analyze: {name:<24} {}", if ok { "ok" } else { "FAILED" });
        if !ok {
            failures += 1;
        }
    };

    if skip_cargo {
        println!("analyze: fmt/clippy skipped (--skip-cargo)");
    } else {
        step("cargo fmt --check", run_fmt_check(&root));
        step("cargo clippy", run_clippy(&root));
    }
    step("unsafe-code audit", audit_unsafe(&root));
    step("missing_docs sweep", audit_missing_docs(&root));
    step("semantic lint", semantic_lint(seed));

    if failures == 0 {
        println!("analyze: all checks passed");
        0
    } else {
        eprintln!("analyze: {failures} check(s) failed");
        1
    }
}

// ---------------------------------------------------------------- cargo steps

fn run_fmt_check(root: &Path) -> bool {
    run_cargo(root, &["fmt", "--all", "--check"])
}

fn run_clippy(root: &Path) -> bool {
    run_cargo(
        root,
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
            "-D",
            "clippy::dbg_macro",
            "-D",
            "clippy::todo",
            "-D",
            "clippy::unimplemented",
        ],
    )
}

fn run_cargo(root: &Path, args: &[&str]) -> bool {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    match Command::new(cargo).args(args).current_dir(root).status() {
        Ok(status) => status.success(),
        Err(e) => {
            eprintln!("analyze: failed to spawn cargo {}: {e}", args.join(" "));
            false
        }
    }
}

// ------------------------------------------------------------- source audits

/// Every `.rs` file under the workspace's `crates/` and `xtask/` trees.
/// (`third_party/` holds vendored offline API stubs and is exempt.)
fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "xtask", "tests"] {
        collect_rs(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Crate roots that must carry the workspace-wide inner attributes.
fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.push(root.join("xtask/src/main.rs"));
    roots.sort();
    roots
}

fn audit_unsafe(root: &Path) -> bool {
    let mut ok = true;
    for lib in crate_roots(root) {
        let text = std::fs::read_to_string(&lib).unwrap_or_default();
        if !text.contains("#![forbid(unsafe_code)]") {
            eprintln!("  {} lacks #![forbid(unsafe_code)]", lib.display());
            ok = false;
        }
    }
    // Belt and braces: no unsafe blocks/fns/impls in any source line
    // outside comments. The keyword is assembled at runtime so this
    // scanner does not flag its own source.
    let kw = concat!("un", "safe");
    let forms: Vec<String> = ["fn", "{", "impl", "trait", "extern"]
        .iter()
        .map(|f| format!("{kw} {f}"))
        .collect();
    for path in source_files(root) {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            let code = line.split("//").next().unwrap_or("");
            if forms.iter().any(|f| code.contains(f.as_str())) {
                eprintln!("  {}:{}: {kw} code found", path.display(), i + 1);
                ok = false;
            }
        }
    }
    ok
}

fn audit_missing_docs(root: &Path) -> bool {
    let mut ok = true;
    for lib in crate_roots(root) {
        let text = std::fs::read_to_string(&lib).unwrap_or_default();
        if !text.contains("#![warn(missing_docs)]") {
            eprintln!("  {} lacks #![warn(missing_docs)]", lib.display());
            ok = false;
        }
    }
    ok
}

// ------------------------------------------------------------- semantic lint

/// splitmix64: cheap deterministic stream of sub-seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Replay `stream` on `scheme`, auditing after every operation; returns an
/// error description naming the first op whose audit was not clean.
fn drive_with_audit<S: LabelingScheme + Auditable>(
    label: &str,
    scheme: S,
    stream: &UpdateStream,
) -> Result<(), String> {
    let report = scheme.audit();
    if !report.is_clean() {
        return Err(format!("{label}: dirty before load:\n{report}"));
    }
    let mut driver = DocumentDriver::load(scheme, &stream.base);
    let report = driver.scheme.audit();
    if !report.is_clean() {
        return Err(format!("{label}: dirty after bulk load:\n{report}"));
    }
    for (i, op) in stream.ops.iter().enumerate() {
        driver.apply(op);
        let report = driver.scheme.audit();
        if !report.is_clean() {
            return Err(format!("{label}: dirty after op {i}:\n{report}"));
        }
    }
    driver.verify_document_order();
    Ok(())
}

/// Negative control: corrupt one allocated block behind the auditor's back
/// and demand a *reported* (not panicked) violation. A clean report means
/// the auditor has gone blind, which must itself fail the gate.
fn corruption_control() -> Result<(), String> {
    let audit_must_flag = |what: &str, report: Option<boxes_audit::AuditReport>| match report {
        None => Err(format!("{what} auditor panicked on a garbage block")),
        Some(r) if r.is_clean() => Err(format!("{what} auditor missed a garbage-filled block")),
        Some(_) => Ok(()),
    };

    // W-BOX: trash an allocated block with garbage bytes.
    let pager = Pager::new(PagerConfig::with_block_size(1024));
    let mut wbox = WBox::new(pager.clone(), WBoxConfig::from_block_size(1024));
    let _lids = wbox.bulk_load(500);
    let victim = (0..u32::MAX)
        .map(BlockId)
        .find(|id| pager.is_allocated(*id))
        .expect("a 500-record W-BOX allocates blocks");
    pager.write(victim, &vec![0xA5u8; 1024]);
    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wbox.audit())).ok();
    audit_must_flag("W-BOX", report)?;

    // B-BOX: same, through its own pager.
    let pager = Pager::new(PagerConfig::with_block_size(256));
    let mut bbox = BBox::new(pager.clone(), BBoxConfig::from_block_size(256));
    let _lids = bbox.bulk_load(500);
    let victim = (0..u32::MAX)
        .map(BlockId)
        .find(|id| pager.is_allocated(*id))
        .expect("a 500-record B-BOX allocates blocks");
    pager.write(victim, &vec![0x5Au8; 256]);
    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bbox.audit())).ok();
    audit_must_flag("B-BOX", report)?;
    Ok(())
}

/// Drive every §6 cached wrapper with checkpointed anchors, auditing the
/// replay consistency after each mutation.
fn cached_wrapper_lint(seed: u64) -> Result<(), String> {
    let mut state = seed;

    // CachedWBox over flat labels.
    let pager = Pager::new(PagerConfig::with_block_size(1024));
    let mut wbox = WBox::new(pager, WBoxConfig::from_block_size(1024));
    let lids = wbox.bulk_load(200);
    let mut cached = CachedWBox::new(wbox, 16);
    let anchors: Vec<_> = lids.iter().step_by(23).copied().collect();
    cached.checkpoint(&anchors);
    let mut cursors: Vec<_> = lids.iter().step_by(11).copied().collect();
    for i in 0..120 {
        let r = splitmix64(&mut state) as usize;
        if i % 3 == 2 && cursors.len() > 4 {
            cached.delete(cursors.swap_remove(r % cursors.len()));
        } else {
            let at = cursors[r % cursors.len()];
            cursors.push(cached.insert_before(at));
        }
        let report = cached.audit();
        if !report.is_clean() {
            return Err(format!("cached-wbox: dirty after mutation {i}:\n{report}"));
        }
    }

    // CachedBBox over path labels.
    let pager = Pager::new(PagerConfig::with_block_size(256));
    let mut bbox = BBox::new(pager, BBoxConfig::from_block_size(256));
    let lids = bbox.bulk_load(200);
    let mut cached = CachedBBox::new(bbox, 16);
    let anchors: Vec<_> = lids.iter().step_by(19).copied().collect();
    cached.checkpoint(&anchors);
    let mut cursors: Vec<_> = lids.iter().step_by(7).copied().collect();
    for i in 0..120 {
        let r = splitmix64(&mut state) as usize;
        if i % 4 == 3 && cursors.len() > 4 {
            cached.delete(cursors.swap_remove(r % cursors.len()));
        } else {
            let at = cursors[r % cursors.len()];
            cursors.push(cached.insert_before(at));
        }
        let report = cached.audit();
        if !report.is_clean() {
            return Err(format!("cached-bbox: dirty after mutation {i}:\n{report}"));
        }
    }

    // CachedOrdinal over both ordinal-capable schemes.
    cached_ordinal_lint(
        "cached-ordinal/wbox",
        WBoxScheme::new(
            Pager::new(PagerConfig::with_block_size(1024)),
            WBoxConfig::from_block_size(1024).with_ordinal(),
        ),
        &mut state,
    )?;
    cached_ordinal_lint(
        "cached-ordinal/bbox",
        BBoxScheme::new(
            Pager::new(PagerConfig::with_block_size(256)),
            BBoxConfig::from_block_size(256).with_ordinal(),
        ),
        &mut state,
    )?;
    Ok(())
}

fn cached_ordinal_lint<S: OrdinalScheme + Auditable>(
    label: &str,
    mut scheme: S,
    state: &mut u64,
) -> Result<(), String> {
    let lids = scheme.bulk_load_document(&partner_map(&two_level(75)));
    let mut cached = CachedOrdinal::new(scheme, 12);
    let anchors: Vec<_> = lids.iter().step_by(17).copied().collect();
    cached.checkpoint(&anchors);
    let mut cursors: Vec<_> = lids.iter().step_by(5).copied().collect();
    for i in 0..100 {
        let r = splitmix64(state) as usize;
        if i % 5 == 4 && cursors.len() > 4 {
            cached.delete(cursors.swap_remove(r % cursors.len()));
        } else {
            let at = cursors[r % cursors.len()];
            cursors.push(cached.insert_before(at));
        }
        let report = cached.audit();
        if !report.is_clean() {
            return Err(format!("{label}: dirty after mutation {i}:\n{report}"));
        }
    }
    Ok(())
}

fn semantic_lint(seed: u64) -> bool {
    let mut state = seed;
    let jitter = |state: &mut u64, lo: usize, span: usize| lo + (splitmix64(state) as usize) % span;

    let mut checks: Vec<(String, Result<(), String>)> = Vec::new();

    // W-BOX, plain labels, scattered single inserts.
    let (base, ins) = (jitter(&mut state, 250, 100), jitter(&mut state, 80, 40));
    checks.push((
        format!("wbox/scattered({base},{ins})"),
        drive_with_audit(
            "wbox/scattered",
            WBoxScheme::with_block_size(1024),
            &scattered(base, ins),
        ),
    ));

    // W-BOX with the pair optimization, concentrated subtree growth.
    let (base, sub) = (jitter(&mut state, 150, 80), jitter(&mut state, 60, 40));
    checks.push((
        format!("wbox-pair/concentrated({base},{sub})"),
        drive_with_audit(
            "wbox-pair/concentrated",
            WBoxScheme::new(
                Pager::new(PagerConfig::with_block_size(1024)),
                WBoxConfig::from_block_size_paired(1024),
            ),
            &concentrated(base, sub),
        ),
    ));

    // W-BOX-O under insert/delete churn (exercises tombstones + rebuild).
    let rounds = jitter(&mut state, 80, 60);
    checks.push((
        format!("wbox-ordinal/churn({rounds})"),
        drive_with_audit(
            "wbox-ordinal/churn",
            WBoxScheme::new(
                Pager::new(PagerConfig::with_block_size(1024)),
                WBoxConfig::from_block_size(1024).with_ordinal(),
            ),
            &insert_delete_churn_with_prefill(120, rounds, 40),
        ),
    ));

    // B-BOX over a randomized XMark document replayed in document order.
    let doc_seed = splitmix64(&mut state);
    let doc = xmark(jitter(&mut state, 500, 300), doc_seed);
    checks.push((
        format!("bbox/xmark(seed={doc_seed:#x})"),
        drive_with_audit(
            "bbox/xmark",
            BBoxScheme::with_block_size(256),
            &document_order(&doc, 0),
        ),
    ));

    // B-BOX-O under churn (exercises borrow/merge + size maintenance).
    let rounds = jitter(&mut state, 80, 60);
    checks.push((
        format!("bbox-ordinal/churn({rounds})"),
        drive_with_audit(
            "bbox-ordinal/churn",
            BBoxScheme::new(
                Pager::new(PagerConfig::with_block_size(256)),
                BBoxConfig::from_block_size(256).with_ordinal(),
            ),
            &insert_delete_churn_with_prefill(120, rounds, 40),
        ),
    ));

    // §6 cached wrappers with checkpointed replay consistency.
    checks.push((
        "cached-wrappers".into(),
        cached_wrapper_lint(splitmix64(&mut state)),
    ));

    // The auditors themselves must still see deliberate corruption.
    checks.push(("corruption-control".into(), corruption_control()));

    let mut ok = true;
    for (name, result) in checks {
        match result {
            Ok(()) => println!("  semantic: {name:<40} ok"),
            Err(msg) => {
                eprintln!("  semantic: {name:<40} FAILED\n{msg}");
                ok = false;
            }
        }
    }
    ok
}
