#!/bin/bash
# Regenerate every figure and table of the paper (DESIGN.md E1-E8, A1-A7).
# Usage: ./run_experiments.sh [tiny|small|paper]
set -e
SCALE="${1:-small}"
mkdir -p results
for bin in fig5_concentrated fig6_concentrated_dist fig7_scattered fig8_xmark \
           fig9_xmark_dist tab_query_cost tab_bulk_insert tab_label_bits \
           abl_wbox_params abl_bbox_fill abl_cache_log abl_buffer_pool \
           abl_wal_recovery abl_fault_retry abl_fsync; do
    echo "=== $bin ($SCALE) ==="
    cargo run --release -p boxes-bench --bin "$bin" -- --scale "$SCALE" \
        > "results/${bin}_${SCALE}.txt" 2> "results/${bin}_${SCALE}.log"
done
echo "done; results in results/"
