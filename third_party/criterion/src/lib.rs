#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the minimal API the bench suites use: a [`Criterion`]
//! driver, [`BenchmarkGroup::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timings are coarse single-pass wall-clock
//! means — enough to spot order-of-magnitude regressions locally, with none
//! of criterion's statistics, warm-up, or HTML reports.

use std::time::Instant;

/// How batched inputs are amortized; accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup dominates; fewer batches).
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Measurement driver handed to every benchmark target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            total_nanos: 0,
            measured: 0,
        };
        f(&mut bencher);
        let mean = bencher.total_nanos / bencher.measured.max(1) as u128;
        println!("  {id}: ~{mean} ns/iter ({} iters)", bencher.measured);
        self
    }

    /// Finish the group (no-op in this stand-in).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
    measured: u64,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.iters {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.measured += 1;
        }
    }

    /// Time `routine` on inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total_nanos += start.elapsed().as_nanos();
            self.measured += 1;
        }
    }
}

/// Bundle benchmark targets into a callable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }
}
