//! `any::<T>()` support for the primitive types the test suites draw.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u128_uses_full_width() {
        let mut rng = TestRng::deterministic("width");
        let strat = any::<u128>();
        let high_half = (0..100)
            .filter(|_| strat.generate(&mut rng) > u128::from(u64::MAX))
            .count();
        assert!(high_half > 20, "values never exceeded 64 bits");
    }
}
