//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Admissible length range for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for a `Vec` whose length falls in `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_cover_the_range() {
        let strat = vec(0usize..10, 1..5);
        let mut rng = TestRng::deterministic("lens");
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[1] && seen[2] && seen[3] && seen[4]);
    }

    #[test]
    fn exact_size_from_usize() {
        let strat = vec(0usize..10, 3);
        let mut rng = TestRng::deterministic("exact");
        assert_eq!(strat.generate(&mut rng).len(), 3);
    }
}
