#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors a minimal property-testing harness with the same API
//! shape as real proptest for the subset the test suites use:
//!
//! - [`proptest!`] blocks with an optional `#![proptest_config(..)]` header
//!   and `fn name(pat in strategy, ..) { body }` test functions,
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - strategies: integer ranges, tuples, [`strategy::Just`], `any::<T>()`,
//!   `prop::collection::vec`, weighted and unweighted [`prop_oneof!`],
//!   and [`strategy::Strategy::prop_map`].
//!
//! Differences from real proptest, by design: generation is a fixed-seed
//! deterministic stream (failures always reproduce; `.proptest-regressions`
//! files are ignored), and failing cases are reported but **not shrunk**.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace used by `proptest::prelude::prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define deterministic property tests.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by any
/// number of `fn name(pat in strategy, ...) { body }` items (attributes such
/// as `#[test]` pass through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        Ok(())
                    })();
                if let Err(err) = outcome {
                    panic!("proptest case {case} of {} failed: {err}", config.cases);
                }
            }
        }
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
}

/// Fail the current test case (with an optional formatted message) unless
/// the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current test case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Choose among strategies, optionally with `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        A(usize),
        B(usize),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10usize..20, y in 0u32..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn tuples_and_maps_compose(pair in ((0usize..5), (5usize..9)).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 >= 5 && pair.1 < 5);
        }

        #[test]
        fn oneof_vec_and_just(script in prop::collection::vec(
            prop_oneof![
                3 => (0usize..100).prop_map(Op::A),
                1 => Just(Op::B(7)),
            ],
            1..40,
        )) {
            prop_assert!(!script.is_empty() && script.len() < 40);
            for op in &script {
                match op {
                    Op::A(v) => prop_assert!(*v < 100),
                    Op::B(v) => prop_assert_eq!(*v, 7),
                }
            }
        }

        #[test]
        fn any_is_exhaustive_enough(a in any::<u128>(), b in any::<u8>()) {
            // Smoke: arithmetic on generated values must not be degenerate.
            prop_assert_eq!(a.wrapping_add(b as u128).wrapping_sub(b as u128), a);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0usize..1000, 1..50);
        let mut r1 = crate::test_runner::TestRng::deterministic("x");
        let mut r2 = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_the_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
