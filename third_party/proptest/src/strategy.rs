//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// A recipe for producing values of one type. Unlike real proptest there is
/// no value tree and no shrinking: `generate` draws a single concrete value.
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draw one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erase the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted choice among type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; every weight must be non-zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weight sampling out of range")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u128() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                match (hi - lo).checked_add(1) {
                    Some(span) => lo + (rng.next_u128() as $t % span),
                    // Full-width inclusive range: every bit pattern is valid.
                    None => rng.next_u128() as $t,
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        self.start + rng.next_u128() % span
    }
}

/// String-pattern strategies: real proptest treats `&str` as a regex. This
/// stand-in supports the subset the workspace uses — an optional character
/// class of literal chars and `a-z` ranges followed by an optional `{lo,hi}`
/// or `{n}` repetition, e.g. `"[ -~]{0,30}"` — plus plain literal strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = self;
        let Some(rest) = pattern.strip_prefix('[') else {
            // No class syntax: treat the pattern as a literal string.
            assert!(
                !pattern.contains(['{', '}', '*', '+', '?', '(', ')']),
                "unsupported string pattern {pattern:?}: this proptest \
                 stand-in only handles literals and `[class]{{lo,hi}}`"
            );
            return (*pattern).to_owned();
        };
        let (class, rest) = rest
            .split_once(']')
            .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                ranges.push((chars[i] as u32, chars[i + 2] as u32));
                i += 3;
            } else {
                ranges.push((chars[i] as u32, chars[i] as u32));
                i += 1;
            }
        }
        assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
        let (lo, hi) = match rest {
            "" => (1, 1),
            _ => {
                let body = rest
                    .strip_prefix('{')
                    .and_then(|r| r.strip_suffix('}'))
                    .unwrap_or_else(|| panic!("unsupported repetition in {pattern:?}"));
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad repetition bound"),
                        b.trim().parse::<usize>().expect("bad repetition bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
        };
        let len = lo + (rng.next_u64() as usize) % (hi - lo + 1);
        let total: u64 = ranges.iter().map(|(a, b)| u64::from(b - a + 1)).sum();
        (0..len)
            .map(|_| {
                let mut pick = rng.next_u64() % total;
                for &(a, b) in &ranges {
                    let span = u64::from(b - a + 1);
                    if pick < span {
                        return char::from_u32(a + pick as u32).expect("invalid class char");
                    }
                    pick -= span;
                }
                unreachable!("class sampling out of range")
            })
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_respects_weights_roughly() {
        let u = Union::new(vec![(9, (0usize..1).boxed()), (1, (1usize..2).boxed())]);
        let mut rng = TestRng::deterministic("weights");
        let ones = (0..10_000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!((500..1_500).contains(&ones), "10% arm hit {ones}/10000");
    }

    #[test]
    fn inclusive_full_width_does_not_overflow() {
        let mut rng = TestRng::deterministic("full");
        for _ in 0..100 {
            let _ = (0u8..=u8::MAX).generate(&mut rng);
        }
    }
}
