//! Runner configuration, the deterministic RNG, and test-case errors.

/// Runner configuration; only the case count is honored by this stand-in.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Config {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; this harness does no shrinking, so
        // a fixed 256 keeps comparable coverage per run.
        Config { cases: 256 }
    }
}

/// Deterministic splitmix64 stream, seeded from the test function's name so
/// distinct tests explore distinct inputs while every run is reproducible.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed generator for the named test function.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }
}

/// A failed property assertion, carried back to the runner loop.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Record a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_names_give_distinct_streams() {
        let a = TestRng::deterministic("alpha").next_u64();
        let b = TestRng::deterministic("beta").next_u64();
        assert_ne!(a, b);
    }
}
