#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors a minimal, deterministic implementation of exactly the
//! API surface it uses: [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `gen_range` /
//! `gen_bool`. The generator is splitmix64 — statistically fine for test-data
//! generation, **not** a cryptographic or research-grade RNG, and its stream
//! differs from the real `rand::rngs::SmallRng` (nothing in this workspace
//! depends on the exact stream, only on determinism per seed).

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers, mirroring the subset of `rand::Rng` used
/// by this workspace.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        // 53 high-quality mantissa bits → uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draw a uniform sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    /// Small, fast, deterministic generator (splitmix64 in this stand-in).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
