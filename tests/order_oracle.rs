//! The order-consistency oracle: under *arbitrary* update sequences, every
//! scheme's labels must sort exactly like the document's tag order — the
//! definition of a valid labeling (§3).
//!
//! Property-based: proptest generates op sequences (single-element inserts
//! at random anchors, deletes of random live elements), we replay them on a
//! reference model (a plain ordered list of tag ids) and on each scheme,
//! then compare orders.

use boxes_core::bbox::BBoxConfig;
use boxes_core::lidf::Lid;
use boxes_core::pager::{Pager, PagerConfig};
use boxes_core::wbox::WBoxConfig;
use boxes_core::{BBoxScheme, LabelingScheme, NaiveScheme, WBoxScheme};
use proptest::prelude::*;

/// An abstract op on tag positions: values are indices into the *current*
/// live tag list (modulo its length at application time).
#[derive(Clone, Debug)]
enum TagOp {
    /// Insert a new label before the tag at this (wrapped) index.
    InsertBefore(usize),
    /// Insert a start/end pair before the tag at this index.
    InsertElement(usize),
    /// Delete the tag at this index (only applied when > 2 tags remain).
    Delete(usize),
}

fn ops_strategy() -> impl Strategy<Value = Vec<TagOp>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..10_000).prop_map(TagOp::InsertBefore),
            (0usize..10_000).prop_map(TagOp::InsertElement),
            (0usize..10_000).prop_map(TagOp::Delete),
        ],
        1..120,
    )
}

/// Replay the ops on a scheme while maintaining the expected order as a
/// plain vector of LIDs, then check the scheme agrees.
fn check_scheme<S: LabelingScheme>(mut scheme: S, initial: usize, ops: &[TagOp]) {
    // partner map for a flat run of `initial/2` sibling elements.
    let partner: Vec<usize> = (0..initial).map(|i| i ^ 1).collect();
    let mut order: Vec<Lid> = scheme.bulk_load_document(&partner);
    for op in ops {
        match op {
            TagOp::InsertBefore(raw) => {
                let at = raw % order.len();
                let new = scheme.insert_before(order[at]);
                order.insert(at, new);
            }
            TagOp::InsertElement(raw) => {
                let at = raw % order.len();
                let (s, e) = scheme.insert_element_before(order[at]);
                order.insert(at, e);
                order.insert(at, s);
            }
            TagOp::Delete(raw) => {
                if order.len() > 2 {
                    let at = raw % order.len();
                    let lid = order.remove(at);
                    scheme.delete(lid);
                }
            }
        }
    }
    assert_eq!(scheme.len(), order.len() as u64);
    let labels: Vec<S::Label> = order.iter().map(|&l| scheme.lookup(l)).collect();
    for (i, w) in labels.windows(2).enumerate() {
        assert!(
            w[0] < w[1],
            "{}: order violated between positions {} and {}",
            scheme.name(),
            i,
            i + 1
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wbox_matches_reference_order(ops in ops_strategy()) {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        check_scheme(
            WBoxScheme::new(pager, WBoxConfig::small_for_tests()),
            40,
            &ops,
        );
    }

    #[test]
    fn wbox_ordinal_matches_reference_order(ops in ops_strategy()) {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        check_scheme(
            WBoxScheme::new(pager, WBoxConfig::small_for_tests().with_ordinal()),
            40,
            &ops,
        );
    }

    #[test]
    fn bbox_matches_reference_order(ops in ops_strategy()) {
        let pager = Pager::new(PagerConfig::with_block_size(128));
        check_scheme(
            BBoxScheme::new(pager, BBoxConfig::from_block_size(128)),
            40,
            &ops,
        );
    }

    #[test]
    fn bbox_ordinal_matches_reference_order(ops in ops_strategy()) {
        let pager = Pager::new(PagerConfig::with_block_size(128));
        check_scheme(
            BBoxScheme::new(pager, BBoxConfig::from_block_size(128).with_ordinal()),
            40,
            &ops,
        );
    }

    #[test]
    fn naive_matches_reference_order(ops in ops_strategy()) {
        check_scheme(NaiveScheme::with_block_size(256, 3), 40, &ops);
    }

    #[test]
    fn ordinal_labels_equal_positions(ops in ops_strategy()) {
        use boxes_core::OrdinalScheme;
        let pager = Pager::new(PagerConfig::with_block_size(128));
        let mut scheme = BBoxScheme::new(
            pager,
            BBoxConfig::from_block_size(128).with_ordinal(),
        );
        let partner: Vec<usize> = (0..30).map(|i| i ^ 1).collect();
        let mut order: Vec<Lid> = scheme.bulk_load_document(&partner);
        for op in &ops {
            match op {
                TagOp::InsertBefore(raw) | TagOp::InsertElement(raw) => {
                    let at = raw % order.len();
                    let new = scheme.insert_before(order[at]);
                    order.insert(at, new);
                }
                TagOp::Delete(raw) => {
                    if order.len() > 2 {
                        let at = raw % order.len();
                        let lid = order.remove(at);
                        scheme.delete(lid);
                    }
                }
            }
        }
        // Every ordinal label is the exact position.
        for (i, &lid) in order.iter().enumerate() {
            prop_assert_eq!(scheme.ordinal_of(lid), i as u64);
        }
    }
}

/// Structural invariants hold after every proptest-shaped workload too;
/// spot-check with a fixed heavy sequence (cheaper than validating inside
/// the property).
#[test]
fn invariants_after_heavy_mixed_workload() {
    let pager = Pager::new(PagerConfig::with_block_size(512));
    let mut w = WBoxScheme::new(pager, WBoxConfig::small_for_tests());
    let partner: Vec<usize> = (0..100).map(|i| i ^ 1).collect();
    let mut order = w.bulk_load_document(&partner);
    for round in 0usize..3_000 {
        match round % 5 {
            0..=2 => {
                let at = (round * 31) % order.len();
                let new = w.insert_before(order[at]);
                order.insert(at, new);
            }
            3 => {
                let at = (round * 17) % order.len();
                let new = w.insert_before(order[at]);
                order.insert(at, new);
            }
            _ => {
                if order.len() > 2 {
                    let at = (round * 13) % order.len();
                    w.delete(order.remove(at));
                }
            }
        }
    }
    w.inner().validate();

    let pager = Pager::new(PagerConfig::with_block_size(128));
    let mut b = BBoxScheme::new(pager, BBoxConfig::from_block_size(128).with_ordinal());
    let mut order = b.bulk_load_document(&(0..100).map(|i| i ^ 1).collect::<Vec<_>>());
    for round in 0usize..3_000 {
        if round % 3 == 2 && order.len() > 2 {
            let at = (round * 13) % order.len();
            b.delete(order.remove(at));
        } else {
            let at = (round * 31) % order.len();
            let new = b.insert_before(order[at]);
            order.insert(at, new);
        }
    }
    b.inner().validate();
}
