//! Crashpoint leg for snapshot epochs: recovery never loses a *published*
//! epoch and never resurrects state no epoch could have exposed.
//!
//! With group commit (`sync_every = 4`) the writer streams commits whose
//! tail is volatile until the next barrier; epochs publish exactly at
//! barriers. Crashing at seeded ticks and recovering must yield the state
//! of some committed prefix that is **at least** the last published epoch —
//! the unsynced (never-published) suffix may die, published epochs may not.

use boxes_core::durable::{reopen_wbox, DurableEnv};
use boxes_core::{LabelingScheme, WBoxScheme};
use boxes_lidf::Lid;
use boxes_session::SessionManager;
use boxes_wal::WalConfig;
use boxes_wbox::WBoxConfig;

const BS: usize = 1024;
const OPS: usize = 20;
const SEEDS: [u64; 2] = [7, 0xBEEF];

fn config() -> WalConfig {
    WalConfig {
        sync_every: 4,
        checkpoint_every: 0,
    }
}

/// Deterministic insert-only workload (inserts keep the prefix states
/// strictly growing, so prefixes are distinguishable by length alone).
/// Records after every commit: the live lid/label state and whether that
/// commit's epoch has been published yet.
struct Trace {
    /// Per committed op: (published epoch at commit time, live labels).
    after: Vec<(u64, Vec<(Lid, u64)>)>,
}

fn run_workload(env: &DurableEnv, seed: u64) -> Trace {
    let manager =
        SessionManager::<WBoxScheme>::create(env.pager().clone(), WBoxConfig::from_block_size(BS));
    let mut writer = manager.writer().expect("writer");
    let mut trace = Trace { after: Vec::new() };
    let mut lids = {
        let txn = env.pager().txn();
        let l = writer.bulk_load_document(&[1, 0, 3, 2]);
        drop(txn);
        l
    };
    let record = |w: &WBoxScheme, lids: &[Lid], epoch: u64| {
        let mut sorted = lids.to_vec();
        sorted.sort();
        let labels = sorted.iter().map(|&l| (l, w.lookup(l))).collect();
        (epoch, labels)
    };
    let snap = record(&writer, &lids, env.pager().published_epoch());
    trace.after.push(snap);
    let mut state = seed;
    for _ in 0..OPS {
        state = boxes_pager::splitmix64(state);
        let anchor = lids[usize::try_from(state >> 8).expect("small") % lids.len()];
        let txn = env.pager().txn();
        let (s, e) = writer.insert_element_before(anchor);
        drop(txn);
        lids.push(s);
        lids.push(e);
        let snap = record(&writer, &lids, env.pager().published_epoch());
        trace.after.push(snap);
    }
    trace
}

#[test]
fn recovery_keeps_every_published_epoch_and_only_committed_prefixes() {
    for seed in SEEDS {
        // Disarmed pass: count crash points and capture the full trace.
        let reference = DurableEnv::new(BS, config(), seed);
        let trace = run_workload(&reference, seed);
        let total_ticks = reference.clock().ticks();
        assert!(total_ticks > 10, "workload crosses many crash points");

        // Spread 12 crash targets across the run (a full sweep is the
        // chaos harness's job; this leg checks the epoch contract).
        let step = (total_ticks / 12).max(1);
        for target in (1..=total_ticks).step_by(usize::try_from(step).expect("small")) {
            let env = DurableEnv::new(BS, config(), seed);
            env.clock().arm(target);
            let crashed = env.run_to_crash(|| run_workload(&env, seed)).is_none();
            assert!(crashed, "tick {target} must crash");
            // What the dying process had published is the floor recovery
            // must reach; find the newest recorded state at that epoch.
            let published = env.pager().published_epoch();
            let recovered = env.recover().expect("recovery clean");
            let Some(scheme) = reopen_wbox(&recovered, WBoxConfig::from_block_size(BS)) else {
                // Nothing durable at all — only legal if nothing was ever
                // published (the whole tail died before its first barrier).
                assert_eq!(published, 0, "tick {target}: published epoch lost entirely");
                continue;
            };
            let matched = trace.after.iter().enumerate().find(|(_, (_, labels))| {
                scheme.len() == u64::try_from(labels.len()).expect("small")
                    && labels
                        .iter()
                        .all(|(lid, label)| scheme.lookup(*lid) == *label)
            });
            let Some((idx, _)) = matched else {
                panic!("tick {target}: recovered state is not any committed prefix");
            };
            // Floor: the op at which publication last advanced (the first
            // record carrying the crashed run's published-epoch count) is
            // the newest op guaranteed durable — recovery may only drop
            // ops from the unpublished tail after it.
            let floor = trace
                .after
                .iter()
                .position(|(e, _)| *e == published)
                .unwrap_or(0);
            assert!(
                idx >= floor,
                "tick {target}: recovery dropped a published epoch \
                 (recovered prefix {idx}, published floor {floor})"
            );
        }
    }
}
