//! Concurrent snapshot-isolation oracle.
//!
//! Phase 1 replays a seeded writer workload single-threaded and records,
//! after every committed operation, the published epoch and the exact
//! `(lid, label)` set of the live document. Phase 2 replays the identical
//! workload on a fresh environment with one writer thread and four reader
//! threads opening snapshots as fast as they can: every snapshot's entire
//! label set must equal the single-threaded replay of its epoch's committed
//! prefix — a reader can never observe a torn, future, or non-prefix state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use boxes_audit::Auditable;
use boxes_bbox::BBoxConfig;
use boxes_core::{BBoxScheme, WBoxScheme};
use boxes_lidf::Lid;
use boxes_pager::{splitmix64, Pager, PagerConfig, SharedPager};
use boxes_session::{SessionError, SessionManager, SessionScheme};
use boxes_wal::{Wal, WalConfig};
use boxes_wbox::WBoxConfig;

const BS: usize = 1024;
const OPS: usize = 59; // plus the bulk load = 60 committed operations
const READERS: usize = 4;
const SEEDS: [u64; 2] = [0xC0FFEE, 42];

fn journaled_pager() -> SharedPager {
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    pager.attach_journal(Wal::new(
        BS,
        WalConfig {
            sync_every: 1, // every commit is a group-commit boundary
            checkpoint_every: 0,
        },
    ));
    pager
}

/// The seeded workload, deterministic given `seed`: grows/shrinks a flat
/// element list, always inserting before a live start tag so element pairs
/// stay adjacent. Calls `committed` after every logical commit.
fn stream_ops<S: SessionScheme>(
    manager: &SessionManager<S>,
    seed: u64,
    mut committed: impl FnMut(&S, &[(Lid, Lid)]),
) {
    let mut writer = manager.writer().expect("single writer");
    // The bootstrap `create` commit published its own (empty) epoch —
    // readers can pin it before the bulk load lands.
    committed(&writer, &[]);
    let mut elements: Vec<(Lid, Lid)> = {
        // 8 flat elements: tags 0..16, partner = i ^ 1.
        let partner: Vec<usize> = (0..16).map(|i| i ^ 1).collect();
        let txn = manager.pager().txn();
        let lids = writer.bulk_load_document(&partner);
        drop(txn);
        lids.chunks(2).map(|c| (c[0], c[1])).collect()
    };
    committed(&writer, &elements);
    let mut state = seed;
    for _ in 0..OPS {
        state = splitmix64(state);
        let choice = state % 10;
        if choice < 7 || elements.len() <= 4 {
            let anchor = elements[usize::try_from(state >> 8).expect("small") % elements.len()].0;
            let txn = manager.pager().txn();
            let pair = writer.insert_element_before(anchor);
            drop(txn);
            elements.push(pair);
        } else {
            let victim = usize::try_from(state >> 8).expect("small") % elements.len();
            let (start, end) = elements.remove(victim);
            let txn = manager.pager().txn();
            writer.delete_subtree(start, end);
            drop(txn);
        }
        committed(&writer, &elements);
    }
}

fn live_labels<S: SessionScheme>(scheme: &S, elements: &[(Lid, Lid)]) -> Vec<(Lid, S::Label)> {
    let mut lids: Vec<Lid> = elements.iter().flat_map(|&(s, e)| [s, e]).collect();
    lids.sort();
    lids.into_iter()
        .map(|lid| (lid, scheme.lookup(lid)))
        .collect()
}

fn oracle<S: SessionScheme + 'static>(config: S::Config, seed: u64)
where
    S::Label: Send + Sync,
    S::Config: 'static,
{
    // Phase 1: single-threaded reference — expected state per epoch.
    let mut expected: HashMap<u64, Vec<(Lid, S::Label)>> = HashMap::new();
    let reference = SessionManager::<S>::create(journaled_pager(), config.clone());
    stream_ops(&reference, seed, |scheme, elements| {
        expected.insert(
            reference.pager().published_epoch(),
            live_labels(scheme, elements),
        );
    });
    let expected = Arc::new(expected);
    let final_epoch = reference.pager().published_epoch();
    assert!(
        u64::try_from(OPS).expect("small") < final_epoch,
        "every commit published an epoch"
    );

    // Phase 2: same workload, four concurrent snapshot readers.
    let manager = Arc::new(SessionManager::<S>::create(journaled_pager(), config));
    let done = Arc::new(AtomicBool::new(false));
    let checks = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let manager = Arc::clone(&manager);
            let expected = Arc::clone(&expected);
            let done = Arc::clone(&done);
            let checks = Arc::clone(&checks);
            std::thread::spawn(move || loop {
                let finished = done.load(Ordering::SeqCst);
                match manager.snapshot() {
                    Ok(snap) => {
                        let want = expected
                            .get(&snap.epoch())
                            .unwrap_or_else(|| panic!("unknown epoch {}", snap.epoch()));
                        assert_eq!(
                            snap.len(),
                            u64::try_from(want.len()).expect("small"),
                            "snapshot live-count matches its committed prefix"
                        );
                        for (lid, label) in want {
                            assert_eq!(
                                snap.lookup(*lid),
                                label.clone(),
                                "epoch {}: lid {lid:?} label diverged from the \
                                 single-threaded replay",
                                snap.epoch()
                            );
                        }
                        checks.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(SessionError::NoCommittedState { .. }) => {}
                    Err(e) => panic!("snapshot failed: {e}"),
                }
                if finished {
                    break;
                }
            })
        })
        .collect();
    stream_ops(&manager, seed, |_, _| {});
    done.store(true, Ordering::SeqCst);
    for reader in readers {
        reader.join().expect("reader thread clean");
    }
    assert!(
        checks.load(Ordering::SeqCst) >= u64::try_from(READERS).expect("small"),
        "every reader validated at least one snapshot"
    );
    assert_eq!(
        manager.pager().published_epoch(),
        final_epoch,
        "concurrent run published the same epochs as the reference"
    );
    // Every session closed: no pinned epochs, no frozen versions leak.
    manager.pager().audit().assert_clean("pager");
}

#[test]
fn wbox_readers_always_observe_a_committed_prefix() {
    for seed in SEEDS {
        oracle::<WBoxScheme>(WBoxConfig::from_block_size(BS), seed);
    }
}

#[test]
fn bbox_readers_always_observe_a_committed_prefix() {
    for seed in SEEDS {
        oracle::<BBoxScheme>(BBoxConfig::from_block_size(BS), seed);
    }
}
