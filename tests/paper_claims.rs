//! The paper's headline analytical claims, checked empirically at moderate
//! scale: lookup costs (Theorems 4.5 and 5.2), amortized update costs
//! (Theorems 4.6 and 5.3), space (O(N/B)), and label lengths (Theorems 4.4
//! and 5.1).

use boxes_core::bbox::{BBox, BBoxConfig};
use boxes_core::pager::{Pager, PagerConfig};
use boxes_core::wbox::{WBox, WBoxConfig};

const BS: usize = 8192;
const N: usize = 200_000;

/// Theorem 4.5 at one block size: a W-BOX lookup is exactly two I/Os (the
/// LIDF hop plus one leaf read), independent of the tree height the block
/// size induces.
fn wbox_lookup_is_two_ios_at(bs: usize) {
    let pager = Pager::new(PagerConfig::with_block_size(bs));
    let mut w = WBox::new(pager.clone(), WBoxConfig::from_block_size(bs));
    let lids = w.bulk_load(N);
    // Grow the tree with adversarial inserts first.
    for _ in 0..2_000 {
        w.insert_before(lids[N / 2]);
    }
    for probe in [0, 1, N / 3, N / 2, N - 1] {
        let before = pager.stats();
        w.lookup(lids[probe]);
        assert_eq!(
            pager.stats().since(&before).total(),
            2,
            "bs={bs}: LIDF hop + exactly one leaf read, independent of tree height"
        );
    }
}

#[test]
fn theorem_4_5_wbox_lookup_is_two_ios() {
    wbox_lookup_is_two_ios_at(BS);
}

#[test]
fn theorem_4_5_wbox_lookup_is_two_ios_4k() {
    wbox_lookup_is_two_ios_at(4096);
}

/// Theorem 5.2 at one block size: a B-BOX lookup costs exactly the tree
/// height plus the LIDF hop. The expected height is derived from the
/// block-size-dependent config (fan-out ⌈B/2⌉ per level at minimum), so a
/// smaller block size must produce the taller tree this test predicts.
fn bbox_lookup_is_height_plus_lidf_at(bs: usize) {
    let pager = Pager::new(PagerConfig::with_block_size(bs));
    let mut b = BBox::new(pager.clone(), BBoxConfig::from_block_size(bs));
    let lids = b.bulk_load(N);
    let h = b.height() as u64;
    // Sanity-bound the measured height from the config: bulk load fills
    // leaves/internals to at least half capacity, so height is at most
    // ⌈log_{cap/2}⌉-ish; and it is at least ⌈log_{cap}⌉ of the leaf count.
    let leaf_cap = b.config().leaf_capacity as f64;
    let int_cap = b.config().internal_capacity as f64;
    let leaves = (N as f64 / leaf_cap).ceil();
    let min_h = 1.0 + leaves.log(int_cap).ceil();
    let max_h = 1.0 + (leaves * 2.0).log(int_cap / 2.0).ceil();
    assert!(
        (h as f64) >= min_h.min(2.0) && (h as f64) <= max_h + 1.0,
        "bs={bs}: measured height {h} outside config-derived [{min_h:.0}, {max_h:.0}+1]"
    );
    for probe in [0, N / 3, N - 1] {
        let before = pager.stats();
        b.lookup(lids[probe]);
        assert_eq!(
            pager.stats().since(&before).total(),
            h + 1,
            "bs={bs}: lookup must cost height {h} + 1 LIDF hop"
        );
    }
}

#[test]
fn theorem_5_2_bbox_lookup_is_height_plus_lidf() {
    bbox_lookup_is_height_plus_lidf_at(BS);
}

#[test]
fn theorem_5_2_bbox_lookup_is_height_plus_lidf_4k() {
    bbox_lookup_is_height_plus_lidf_at(4096);
}

#[test]
fn theorem_5_3_bbox_amortized_constant_updates() {
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let mut b = BBox::new(pager.clone(), BBoxConfig::from_block_size(BS));
    let lids = b.bulk_load(N);
    let anchor = lids[N / 2];
    b.insert_before(anchor); // absorb the full-bulk-leaf split
    let before = pager.stats();
    let rounds = 20_000u64;
    for _ in 0..rounds {
        b.insert_before(anchor);
    }
    let avg = pager.stats().since(&before).total() as f64 / rounds as f64;
    // O(1) amortized: a handful of I/Os (LIDF alloc + leaf rw + rare splits).
    assert!(avg < 8.0, "B-BOX amortized insert = {avg:.2} I/Os");
}

#[test]
fn theorem_4_6_wbox_amortized_logarithmic_updates() {
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let mut w = WBox::new(pager.clone(), WBoxConfig::from_block_size(BS));
    let lids = w.bulk_load(N);
    let anchor = lids[N / 2];
    w.insert_before(anchor);
    let before = pager.stats();
    let rounds = 20_000u64;
    for _ in 0..rounds {
        w.insert_before(anchor);
    }
    let avg = pager.stats().since(&before).total() as f64 / rounds as f64;
    // O(log_B N) with log_B N ≈ 2 here; relabeling adds amortized O(1).
    assert!(avg < 30.0, "W-BOX amortized insert = {avg:.2} I/Os");
    // And deletions are O(1) amortized (tombstones + global rebuilding).
    let all = w.iter_lids();
    let before = pager.stats();
    let deletes = (N / 4) as u64;
    for &lid in all.iter().take(N / 4) {
        w.delete(lid);
    }
    let avg = pager.stats().since(&before).total() as f64 / deletes as f64;
    assert!(avg < 8.0, "W-BOX amortized delete = {avg:.2} I/Os");
}

#[test]
fn space_is_linear_in_n_over_b() {
    for (n, label) in [(50_000usize, "50k"), (200_000, "200k")] {
        let pager = Pager::new(PagerConfig::with_block_size(BS));
        let mut w = WBox::new(pager.clone(), WBoxConfig::from_block_size(BS));
        w.bulk_load(n);
        let blocks = pager.allocated_blocks();
        // Records are 9 B (LIDF) + 8 B (leaf entry) ≈ 17 B; with headers
        // and internal nodes the structure must stay within ~4x raw size.
        let raw_blocks = n * 17 / BS;
        assert!(
            blocks < raw_blocks * 4 + 16,
            "{label}: {blocks} blocks for {raw_blocks} raw"
        );
    }
}

#[test]
fn theorem_4_4_wbox_label_bits() {
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let mut w = WBox::new(pager.clone(), WBoxConfig::from_block_size(BS));
    let lids = w.bulk_load(N);
    for i in 0..30_000usize {
        w.insert_before(lids[(i * 7) % lids.len()]);
    }
    let c = *w.config();
    let n = w.len() as f64;
    let bound = n.log2()
        + 1.0
        + ((2.0 + 4.0 / c.a as f64).log2() * (n / c.k as f64).log(c.a as f64)
            + (c.b as f64).log2())
        .ceil();
    assert!(
        (w.label_bits() as f64) <= bound + 1.0,
        "bits {} vs Theorem 4.4 bound {bound:.1}",
        w.label_bits()
    );
    // Far below a 32-bit machine word at this scale.
    assert!(w.label_bits() <= 32);
}

#[test]
fn theorem_5_1_bbox_label_bits() {
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let mut b = BBox::new(pager.clone(), BBoxConfig::from_block_size(BS));
    let lids = b.bulk_load(N);
    for i in 0..30_000usize {
        b.insert_before(lids[(i * 7) % lids.len()]);
    }
    let n = b.len() as f64;
    let log_b = (b.config().internal_capacity as f64).log2();
    let bound = n.log2() + 1.0 + ((n.log2() - 1.0) / (log_b - 1.0)).floor();
    assert!(
        (b.label_bits() as f64) <= bound + 1.0,
        "bits {} vs Theorem 5.1 bound {bound:.1}",
        b.label_bits()
    );
    assert!(b.label_bits() <= 32);
}

#[test]
fn lemma_4_2_split_rate_is_low() {
    // After a split, Ω(w(u)) inserts must pass through a node before it
    // splits again — so total splits over M inserts stay near-linear in
    // M / leaf-capacity, not in M.
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let mut w = WBox::new(pager, WBoxConfig::from_block_size(BS));
    let lids = w.bulk_load(N);
    let inserts = 30_000u64;
    for _ in 0..inserts {
        w.insert_before(lids[N / 2]);
    }
    let c = w.counters();
    let leaf_cap = w.config().leaf_capacity() as u64;
    let expected_leaf_splits = inserts / (leaf_cap / 2);
    assert!(
        c.leaf_splits <= expected_leaf_splits * 3 + 10,
        "leaf splits {} vs expected ~{expected_leaf_splits}",
        c.leaf_splits
    );
    assert!(
        c.internal_splits <= c.leaf_splits / 10 + 5,
        "internal splits are an order rarer: {} vs {}",
        c.internal_splits,
        c.leaf_splits
    );
}

#[test]
fn wbox_o_insert_cost_tracks_document_depth() {
    // Theorem 4.7: W-BOX-O insertion is O(D + log_B N) because shifting the
    // enclosing end tags forces end-cache refreshes on up to D start
    // records outside the shifted range. Our implementation groups those
    // refreshes by block, so the observable extra cost is the number of
    // *blocks* holding affected start records — still monotone in D.
    //
    // Insert as the last child of the innermost element of a deep chain:
    // every enclosing end tag shifts on each insert.
    let run = |depth: usize| -> f64 {
        let total = 4_000usize;
        let pager = Pager::new(PagerConfig::with_block_size(BS));
        let mut w = WBox::new(pager.clone(), WBoxConfig::from_block_size_paired(BS));
        // Document: `depth` nested elements, then flat siblings inside the
        // innermost to reach `total` elements.
        let mut partner = vec![0usize; 2 * total];
        let tags = 2 * total;
        for d in 0..depth {
            partner[d] = tags - 1 - d;
            partner[tags - 1 - d] = d;
        }
        let flat = total - depth;
        for i in 0..flat {
            let s = depth + 2 * i;
            partner[s] = s + 1;
            partner[s + 1] = s;
        }
        let lids = w.bulk_load_pairs(&partner);
        // Anchor: the innermost element's end tag — inserting before it
        // makes the new element its last child and shifts all `depth`
        // enclosing end tags (they sit in the suffix of the same leaves).
        let anchor = lids[tags - depth];
        let before = pager.stats();
        let rounds = 400;
        for _ in 0..rounds {
            w.insert_element_before(anchor);
        }
        pager.stats().since(&before).total() as f64 / rounds as f64
    };
    let shallow = run(2);
    let deep = run(1_500); // start records span several blocks
    assert!(
        deep > shallow + 1.5,
        "deep nesting must cost measurably more per insert: {shallow:.2} vs {deep:.2}"
    );
}
