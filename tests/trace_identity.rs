//! Property test of the `boxes-trace` accounting identity: under arbitrary
//! operation sequences — with and without an injected fault plan — the
//! trace layer's attributed-plus-unattributed counters must agree
//! field-for-field with the pager's own [`IoStats`] delta, and nothing a
//! scheme hot path does may land unattributed (every public entry point
//! opens a span, so the innermost-span rule attributes everything,
//! including the retries, repairs and backoff ticks the fault service
//! generates mid-operation).

use boxes_core::bbox::{BBox, BBoxConfig};
use boxes_core::pager::{
    FaultPlan, FaultPlanConfig, IoStats, Pager, PagerConfig, RetryPolicy, SharedPager,
};
use boxes_core::wal::{Wal, WalConfig};
use boxes_core::wbox::{WBox, WBoxConfig};
use boxes_trace as trace;
use proptest::prelude::*;

const BS: usize = 512;

/// One scripted update primitive; indices are reduced modulo the live set.
#[derive(Clone, Debug)]
enum Op {
    Insert(usize),
    Delete(usize),
    Lookup(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<usize>()).prop_map(Op::Insert),
            (any::<usize>()).prop_map(Op::Delete),
            (any::<usize>()).prop_map(Op::Lookup),
        ],
        1..80,
    )
}

/// Snapshot of both sides of the identity.
struct Mark {
    attributed: trace::TraceCounters,
    unattributed: trace::TraceCounters,
    stats: IoStats,
}

fn mark(pager: &SharedPager) -> Mark {
    Mark {
        attributed: trace::attributed(),
        unattributed: trace::unattributed(),
        stats: pager.stats(),
    }
}

/// The identity proper: between `before` and now, (attributed delta) ==
/// (pager stats delta) on the seven shared counters and the unattributed
/// side did not move.
fn check(label: &str, pager: &SharedPager, before: &Mark) {
    let un = trace::unattributed().since(&before.unattributed);
    assert!(
        un.is_zero(),
        "{label}: scheme hot path recorded I/O outside any span: {un:?}"
    );
    let attr = trace::attributed().since(&before.attributed);
    let delta = pager.stats().since(&before.stats);
    let pairs = [
        ("reads", attr.reads, delta.reads),
        ("writes", attr.writes, delta.writes),
        ("allocs", attr.allocs, delta.allocs),
        ("frees", attr.frees, delta.frees),
        ("retries", attr.retries, delta.retries),
        ("repairs", attr.repairs, delta.repairs),
        ("backoff_ticks", attr.backoff_ticks, delta.backoff_ticks),
    ];
    for (name, traced, counted) in pairs {
        assert_eq!(
            traced, counted,
            "{label}: identity broken on `{name}` (trace {traced} vs pager {counted})"
        );
    }
    assert_eq!(trace::open_spans(), 0, "{label}: leaked spans");
}

/// Run a script against a W-BOX on `pager`, checking the identity after
/// every single operation (not just at the end): an attribution hole that
/// a later op's counters would mask still fails.
fn run_wbox(pager: SharedPager, script: &[Op]) {
    let before = mark(&pager);
    let mut w = WBox::new(pager.clone(), WBoxConfig::from_block_size(BS));
    let mut lids = w.bulk_load(60);
    check("wbox/bulk_load", &pager, &before);
    for op in script {
        let before = mark(&pager);
        match *op {
            Op::Insert(raw) => {
                let anchor = lids[raw % lids.len()];
                lids.push(w.insert_before(anchor));
            }
            Op::Delete(raw) => {
                if lids.len() > 4 {
                    let lid = lids.swap_remove(raw % lids.len());
                    w.delete(lid);
                }
            }
            Op::Lookup(raw) => {
                w.lookup(lids[raw % lids.len()]);
            }
        }
        check("wbox/op", &pager, &before);
    }
}

proptest! {
    #[test]
    fn identity_holds_without_faults(script in ops()) {
        run_wbox(Pager::new(PagerConfig::with_block_size(BS)), &script);
    }
}

// Pool hits bypass the disk (no IoStats movement) but are traced as
// cache hits — the identity on the seven disk counters must still close
// exactly.
proptest! {
    #[test]
    fn identity_holds_with_buffer_pool(script in ops()) {
        run_wbox(
            Pager::new(PagerConfig::with_block_size(BS).with_pool(4)),
            &script,
        );
    }
}

// In-budget transient errors, latency stalls and bit rot: the fault
// service's retries/repairs/backoff run *inside* the operation that
// tripped them, so they must be attributed to that operation's span.
proptest! {
    #[test]
    fn identity_holds_under_faults(script in ops(), seed in any::<u64>()) {
        let pager = Pager::new(PagerConfig::with_block_size(BS));
        pager.attach_journal(Wal::new(BS, WalConfig { sync_every: 2, checkpoint_every: 6 }));
        let plan = FaultPlan::new(FaultPlanConfig {
            read_error_rate: 2500,
            write_error_rate: 2500,
            bit_flip_rate: 1000,
            latency_rate: 1200,
            ..FaultPlanConfig::quiet(seed, BS)
        });
        pager.attach_fault_injector(plan);
        pager.set_retry_policy(RetryPolicy { budget: 8, ..RetryPolicy::default() });
        run_wbox(pager, &script);
    }
}

proptest! {
    #[test]
    fn identity_holds_for_bbox(script in ops()) {
        let pager = Pager::new(PagerConfig::with_block_size(BS));
        let before = mark(&pager);
        let mut b = BBox::new(pager.clone(), BBoxConfig::from_block_size(BS));
        let mut lids = b.bulk_load(60);
        check("bbox/bulk_load", &pager, &before);
        for op in &script {
            let before = mark(&pager);
            match *op {
                Op::Insert(raw) => {
                    let anchor = lids[raw % lids.len()];
                    lids.push(b.insert_before(anchor));
                }
                Op::Delete(raw) => {
                    if lids.len() > 4 {
                        let lid = lids.swap_remove(raw % lids.len());
                        b.delete(lid);
                    }
                }
                Op::Lookup(raw) => {
                    b.lookup(lids[raw % lids.len()]);
                }
            }
            check("bbox/op", &pager, &before);
        }
    }
}
