//! Bulk subtree operations must be *observationally identical* to their
//! element-at-a-time equivalents — same final document order, same live
//! LIDs — they may only differ in cost. Property-tested for both BOXes.

use boxes_core::bbox::{BBox, BBoxConfig};
use boxes_core::pager::{Pager, PagerConfig};
use boxes_core::wbox::{WBox, WBoxConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum BulkOp {
    /// Insert a subtree of this many tags before the tag at the index.
    Insert(usize, usize),
    /// Delete the contiguous range [i, j] (wrapped, swapped into order).
    Delete(usize, usize),
}

fn bulk_ops() -> impl Strategy<Value = Vec<BulkOp>> {
    prop::collection::vec(
        prop_oneof![
            ((0usize..1_000), (1usize..60)).prop_map(|(a, n)| BulkOp::Insert(a, n)),
            ((0usize..1_000), (0usize..1_000)).prop_map(|(a, b)| BulkOp::Delete(a, b)),
        ],
        1..12,
    )
}

trait Subject {
    fn bulk(&mut self, n: usize) -> Vec<boxes_core::lidf::Lid>;
    fn ins_one(&mut self, before: boxes_core::lidf::Lid) -> boxes_core::lidf::Lid;
    fn ins_tree(&mut self, before: boxes_core::lidf::Lid, n: usize) -> Vec<boxes_core::lidf::Lid>;
    fn del_one(&mut self, lid: boxes_core::lidf::Lid);
    fn del_tree(&mut self, a: boxes_core::lidf::Lid, b: boxes_core::lidf::Lid);
    fn order(&self) -> Vec<boxes_core::lidf::Lid>;
    fn validate(&self);
}

impl Subject for WBox {
    fn bulk(&mut self, n: usize) -> Vec<boxes_core::lidf::Lid> {
        self.bulk_load(n)
    }
    fn ins_one(&mut self, before: boxes_core::lidf::Lid) -> boxes_core::lidf::Lid {
        self.insert_before(before)
    }
    fn ins_tree(&mut self, before: boxes_core::lidf::Lid, n: usize) -> Vec<boxes_core::lidf::Lid> {
        self.insert_subtree_before(before, n)
    }
    fn del_one(&mut self, lid: boxes_core::lidf::Lid) {
        self.delete(lid)
    }
    fn del_tree(&mut self, a: boxes_core::lidf::Lid, b: boxes_core::lidf::Lid) {
        self.delete_subtree(a, b)
    }
    fn order(&self) -> Vec<boxes_core::lidf::Lid> {
        self.iter_lids()
    }
    fn validate(&self) {
        WBox::validate(self)
    }
}

impl Subject for BBox {
    fn bulk(&mut self, n: usize) -> Vec<boxes_core::lidf::Lid> {
        self.bulk_load(n)
    }
    fn ins_one(&mut self, before: boxes_core::lidf::Lid) -> boxes_core::lidf::Lid {
        self.insert_before(before)
    }
    fn ins_tree(&mut self, before: boxes_core::lidf::Lid, n: usize) -> Vec<boxes_core::lidf::Lid> {
        self.insert_subtree_before(before, n)
    }
    fn del_one(&mut self, lid: boxes_core::lidf::Lid) {
        self.delete(lid)
    }
    fn del_tree(&mut self, a: boxes_core::lidf::Lid, b: boxes_core::lidf::Lid) {
        self.delete_subtree(a, b)
    }
    fn order(&self) -> Vec<boxes_core::lidf::Lid> {
        self.iter_lids()
    }
    fn validate(&self) {
        BBox::validate(self)
    }
}

/// Run the script twice — bulk ops vs loops of single ops — and compare the
/// *positions* of surviving original labels (LID values differ between the
/// two runs, so compare by position bookkeeping).
fn run_script<S: Subject>(mut subject: S, ops: &[BulkOp], use_bulk: bool) -> (Vec<usize>, S) {
    // Track a parallel "identity" vector: each live tag carries the id it
    // was born with (original load ids 0.., inserted ids 10_000+i).
    let lids = subject.bulk(100);
    let mut order: Vec<(boxes_core::lidf::Lid, usize)> =
        lids.into_iter().enumerate().map(|(i, l)| (l, i)).collect();
    let mut next_id = 10_000usize;
    for op in ops {
        match *op {
            BulkOp::Insert(raw, n) => {
                let at = raw % order.len();
                let before = order[at].0;
                let new = if use_bulk {
                    subject.ins_tree(before, n)
                } else {
                    (0..n).map(|_| subject.ins_one(before)).collect()
                };
                for (j, lid) in new.into_iter().enumerate() {
                    order.insert(at + j, (lid, next_id + j));
                }
                next_id += n;
            }
            BulkOp::Delete(ra, rb) => {
                if order.len() < 4 {
                    continue;
                }
                let mut a = ra % order.len();
                let mut b = rb % order.len();
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                if a == b {
                    continue;
                }
                // Never delete everything.
                if b - a + 1 >= order.len() {
                    b = a + order.len() - 2;
                }
                if use_bulk {
                    subject.del_tree(order[a].0, order[b].0);
                } else {
                    for &(lid, _) in &order[a..=b] {
                        subject.del_one(lid);
                    }
                }
                order.drain(a..=b);
            }
        }
    }
    subject.validate();
    // Scheme's own order must match our bookkeeping.
    let got: Vec<boxes_core::lidf::Lid> = subject.order();
    let expect: Vec<boxes_core::lidf::Lid> = order.iter().map(|&(l, _)| l).collect();
    assert_eq!(got, expect, "scheme order diverged from bookkeeping");
    (order.into_iter().map(|(_, id)| id).collect(), subject)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn wbox_bulk_equals_single(ops in bulk_ops()) {
        let mk = || {
            let pager = Pager::new(PagerConfig::with_block_size(512));
            WBox::new(pager, WBoxConfig::small_for_tests())
        };
        let (bulk_ids, _) = run_script(mk(), &ops, true);
        let (single_ids, _) = run_script(mk(), &ops, false);
        prop_assert_eq!(bulk_ids, single_ids);
    }

    #[test]
    fn bbox_bulk_equals_single(ops in bulk_ops()) {
        let mk = || {
            let pager = Pager::new(PagerConfig::with_block_size(128));
            BBox::new(pager, BBoxConfig::from_block_size(128))
        };
        let (bulk_ids, _) = run_script(mk(), &ops, true);
        let (single_ids, _) = run_script(mk(), &ops, false);
        prop_assert_eq!(bulk_ids, single_ids);
    }

    #[test]
    fn wbox_ordinal_bulk_equals_single(ops in bulk_ops()) {
        let mk = || {
            let pager = Pager::new(PagerConfig::with_block_size(512));
            WBox::new(pager, WBoxConfig::small_for_tests().with_ordinal())
        };
        let (bulk_ids, subject) = run_script(mk(), &ops, true);
        for (i, lid) in subject.iter_lids().into_iter().enumerate() {
            prop_assert_eq!(subject.ordinal_of(lid), i as u64);
        }
        let (single_ids, _) = run_script(mk(), &ops, false);
        prop_assert_eq!(bulk_ids, single_ids);
    }

    #[test]
    fn bbox_ordinal_bulk_equals_single(ops in bulk_ops()) {
        let mk = || {
            let pager = Pager::new(PagerConfig::with_block_size(128));
            BBox::new(pager, BBoxConfig::from_block_size(128).with_ordinal())
        };
        let (bulk_ids, subject) = run_script(mk(), &ops, true);
        for (i, lid) in subject.iter_lids().into_iter().enumerate() {
            prop_assert_eq!(subject.ordinal_of(lid), i as u64);
        }
        let (single_ids, _) = run_script(mk(), &ops, false);
        prop_assert_eq!(bulk_ids, single_ids);
    }
}
