//! Windowed amortized-cost conformance tests for the paper's update
//! theorems. The existing `paper_claims` suite checks the *global* means;
//! here the same claims are held over **windows** of the operation
//! sequence, which is the form the amortization argument actually makes:
//! expensive structural events (splits, respaces, global rebuilds) may
//! spike an individual operation, but their cost is prepaid by the cheap
//! operations around them, so every sufficiently large window of the
//! sequence must still average out to the theorem's bound.
//!
//! * Theorem 4.6 — W-BOX insertion is O(log_B N) amortized, deletion O(1)
//!   amortized.
//! * Theorem 5.3 — B-BOX update (insert or delete) is O(1) amortized.
//!
//! Both concentrated (fixed anchor) and scattered (striding anchor)
//! insertion patterns are exercised; windows are both tumbling and
//! sliding. The constants are generous multiples of the measured steady
//! state — they exist to catch regressions that break the *shape* of the
//! amortization (e.g. a respace whose cost is no longer prepaid), not to
//! pin exact I/O counts.

use boxes_core::bbox::{BBox, BBoxConfig};
use boxes_core::pager::{Pager, PagerConfig, SharedPager};
use boxes_core::wbox::{WBox, WBoxConfig};

const BS: usize = 4096;
const N: usize = 50_000;

/// Per-op I/O costs of `rounds` applications of `op`, measured through the
/// pager's own counters.
fn measure(pager: &SharedPager, rounds: usize, mut op: impl FnMut(usize)) -> Vec<u64> {
    let mut costs = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let before = pager.stats();
        op(i);
        costs.push(pager.stats().since(&before).total());
    }
    costs
}

/// Means of consecutive (tumbling) windows; the final partial window is
/// dropped so every mean covers a full `window` ops.
fn tumbling_means(costs: &[u64], window: usize) -> Vec<f64> {
    costs
        .chunks_exact(window)
        .map(|c| c.iter().sum::<u64>() as f64 / window as f64)
        .collect()
}

/// Means of sliding windows advancing by `stride`.
fn sliding_means(costs: &[u64], window: usize, stride: usize) -> Vec<f64> {
    let mut out = Vec::new();
    let mut start = 0;
    while start + window <= costs.len() {
        let sum: u64 = costs[start..start + window].iter().sum();
        out.push(sum as f64 / window as f64);
        start += stride;
    }
    out
}

/// Assert every window mean (tumbling and sliding) stays below `bound`.
fn assert_windows_below(label: &str, costs: &[u64], window: usize, bound: f64) {
    let tumbling = tumbling_means(costs, window);
    assert!(!tumbling.is_empty(), "{label}: no full window measured");
    for (i, mean) in tumbling.iter().enumerate() {
        assert!(
            *mean < bound,
            "{label}: tumbling window {i} mean {mean:.2} I/Os exceeds bound {bound:.2} \
             (all windows: {tumbling:.2?})"
        );
    }
    // Sliding windows at half-window stride catch a spike that a tumbling
    // boundary would split across two windows.
    for (i, mean) in sliding_means(costs, window, window / 2).iter().enumerate() {
        assert!(
            *mean < bound,
            "{label}: sliding window {i} mean {mean:.2} I/Os exceeds bound {bound:.2}"
        );
    }
}

/// log_B N as the theorems use it: the W-BOX tree height scale, with B the
/// leaf capacity the block size induces.
fn log_b_n(leaf_capacity: usize, n: usize) -> f64 {
    (n as f64).log(leaf_capacity as f64).max(1.0)
}

#[test]
fn theorem_4_6_wbox_insert_windows_concentrated() {
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let mut w = WBox::new(pager.clone(), WBoxConfig::from_block_size(BS));
    let lids = w.bulk_load(N);
    let anchor = lids[N / 2];
    w.insert_before(anchor); // absorb the full-bulk-leaf split
    let rounds = 10_000;
    let costs = measure(&pager, rounds, |_| {
        w.insert_before(anchor);
    });
    // c · log_B N with a generous constant: every insert pays the leaf
    // write-back plus amortized split/respace work.
    let bound = 16.0 * log_b_n(w.config().leaf_capacity(), N + rounds);
    assert_windows_below("wbox-insert/concentrated", &costs, 500, bound);
}

#[test]
fn theorem_4_6_wbox_insert_windows_scattered() {
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let mut w = WBox::new(pager.clone(), WBoxConfig::from_block_size(BS));
    let lids = w.bulk_load(N);
    let rounds = 10_000;
    let costs = measure(&pager, rounds, |i| {
        w.insert_before(lids[(i * 37) % lids.len()]);
    });
    let bound = 16.0 * log_b_n(w.config().leaf_capacity(), N + rounds);
    assert_windows_below("wbox-insert/scattered", &costs, 500, bound);
}

#[test]
fn theorem_4_6_wbox_delete_windows_constant() {
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let mut w = WBox::new(pager.clone(), WBoxConfig::from_block_size(BS));
    w.bulk_load(N);
    let all = w.iter_lids();
    let rounds = N / 2;
    let costs = measure(&pager, rounds, |i| {
        w.delete(all[i]);
    });
    // O(1) amortized: tombstone write + the prepaid share of the global
    // rebuild. The window must span at least one rebuild's prepay period,
    // so it is sized in fractions of N rather than a fixed op count.
    assert_windows_below("wbox-delete", &costs, rounds / 8, 10.0);
}

#[test]
fn theorem_5_3_bbox_insert_windows_concentrated() {
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let mut b = BBox::new(pager.clone(), BBoxConfig::from_block_size(BS));
    let lids = b.bulk_load(N);
    let anchor = lids[N / 2];
    b.insert_before(anchor);
    let rounds = 10_000;
    let costs = measure(&pager, rounds, |_| {
        b.insert_before(anchor);
    });
    // O(1) amortized, independent of N: leaf read/write plus rare splits.
    assert_windows_below("bbox-insert/concentrated", &costs, 500, 10.0);
}

#[test]
fn theorem_5_3_bbox_insert_windows_scattered() {
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let mut b = BBox::new(pager.clone(), BBoxConfig::from_block_size(BS));
    let lids = b.bulk_load(N);
    let rounds = 10_000;
    let costs = measure(&pager, rounds, |i| {
        b.insert_before(lids[(i * 37) % lids.len()]);
    });
    // Scattered anchors touch a different root-to-leaf path every time, so
    // the constant includes the O(log_B N) descent — still independent of
    // the insert count, which is what the windows certify.
    let descent = 2.0 + b.height() as f64;
    assert_windows_below("bbox-insert/scattered", &costs, 500, 8.0 + 2.0 * descent);
}

#[test]
fn theorem_5_3_bbox_delete_windows_constant() {
    let pager = Pager::new(PagerConfig::with_block_size(BS));
    let mut b = BBox::new(pager.clone(), BBoxConfig::from_block_size(BS));
    let lids = b.bulk_load(N);
    let rounds = N / 2;
    let costs = measure(&pager, rounds, |i| {
        b.delete(lids[i * 2]);
    });
    let descent = 2.0 + b.height() as f64;
    assert_windows_below("bbox-delete", &costs, rounds / 8, 8.0 + 2.0 * descent);
}

#[test]
fn window_helpers_are_sound() {
    let costs = vec![2, 4, 6, 8, 10, 12];
    assert_eq!(tumbling_means(&costs, 2), vec![3.0, 7.0, 11.0]);
    assert_eq!(sliding_means(&costs, 4, 2), vec![5.0, 9.0]);
    assert_eq!(sliding_means(&costs, 6, 3), vec![7.0]);
}
