//! §6 caching layer correctness: a cached lookup must ALWAYS equal the
//! direct lookup, no matter how updates interleave with reads, for every
//! effect algebra (flat W-BOX labels, B-BOX path labels, ordinal labels)
//! and every log size, including the degenerate k = 0.

use boxes_audit::Auditable;
use boxes_core::bbox::{BBox, BBoxConfig};
use boxes_core::cache::CachedRef;
use boxes_core::pager::{Pager, PagerConfig};
use boxes_core::wbox::{WBox, WBoxConfig};
use boxes_core::{CachedBBox, CachedOrdinal, CachedWBox, WBoxScheme};
use proptest::prelude::*;

/// Interleaved action script: updates at (wrapped) positions and reads of
/// (wrapped) probe references.
#[derive(Clone, Debug)]
enum Action {
    Insert(usize),
    Delete(usize),
    Read(usize),
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..1_000).prop_map(Action::Insert),
            (0usize..1_000).prop_map(Action::Delete),
            (0usize..1_000).prop_map(Action::Read),
        ],
        1..80,
    )
}

const PROBES: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_wbox_always_agrees(k in 0usize..20, script in actions()) {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut wbox = WBox::new(pager, WBoxConfig::small_for_tests());
        let mut order = wbox.bulk_load(120);
        let mut cached = CachedWBox::new(wbox, k);
        // Anchor a spread of references so the per-action audit exercises
        // the §6 replay-equivalence check, not just log FIFO order.
        let anchors: Vec<_> = order.iter().copied().step_by(17).collect();
        cached.checkpoint(&anchors);
        let mut refs: Vec<CachedRef<u64>> = (0..PROBES).map(|_| CachedRef::new()).collect();
        for action in script {
            match action {
                Action::Insert(raw) => {
                    let at = raw % order.len();
                    let new = cached.insert_before(order[at]);
                    order.insert(at, new);
                }
                Action::Delete(raw) => {
                    if order.len() > PROBES + 2 {
                        let at = raw % order.len();
                        // Keep probe anchors alive: probes address by index
                        // into `order`, so deletion just shrinks the pool.
                        let lid = order.remove(at);
                        // A deleted lid may still be cached in some ref;
                        // clear any ref probing that exact index range by
                        // simply re-probing lazily below.
                        cached.delete(lid);
                    }
                }
                Action::Read(raw) => {
                    let probe = raw % PROBES;
                    let at = (raw * 31) % order.len();
                    let lid = order[at];
                    // Each ref may be reused for different lids over time —
                    // clear it when switching targets (an application would
                    // hold one ref per reference site).
                    let mut r = std::mem::take(&mut refs[probe]);
                    r.clear();
                    let got = cached.lookup(lid, &mut r);
                    prop_assert_eq!(got, cached.wbox.lookup(lid));
                    // Read again without clearing: replay path.
                    let again = cached.lookup(lid, &mut r);
                    prop_assert_eq!(again, cached.wbox.lookup(lid));
                    refs[probe] = r;
                }
            }
            let report = cached.audit();
            prop_assert!(report.is_clean(), "dirty after {:?}:\n{}", action, report);
        }
    }

    #[test]
    fn cached_bbox_always_agrees(k in 0usize..20, script in actions()) {
        let pager = Pager::new(PagerConfig::with_block_size(128));
        let mut bbox = BBox::new(pager, BBoxConfig::from_block_size(128));
        let mut order = bbox.bulk_load(120);
        let mut cached = CachedBBox::new(bbox, k);
        let anchors: Vec<_> = order.iter().copied().step_by(17).collect();
        cached.checkpoint(&anchors);
        let mut refs: Vec<CachedRef<Vec<u32>>> =
            (0..PROBES).map(|_| CachedRef::new()).collect();
        for action in script {
            match action {
                Action::Insert(raw) => {
                    let at = raw % order.len();
                    let new = cached.insert_before(order[at]);
                    order.insert(at, new);
                }
                Action::Delete(raw) => {
                    if order.len() > PROBES + 2 {
                        let at = raw % order.len();
                        let lid = order.remove(at);
                        cached.delete(lid);
                    }
                }
                Action::Read(raw) => {
                    let probe = raw % PROBES;
                    let at = (raw * 31) % order.len();
                    let lid = order[at];
                    let mut r = std::mem::take(&mut refs[probe]);
                    r.clear();
                    let got = cached.lookup(lid, &mut r);
                    prop_assert_eq!(&got, &cached.bbox.lookup(lid).0);
                    let again = cached.lookup(lid, &mut r);
                    prop_assert_eq!(&again, &cached.bbox.lookup(lid).0);
                    refs[probe] = r;
                }
            }
            let report = cached.audit();
            prop_assert!(report.is_clean(), "dirty after {:?}:\n{}", action, report);
        }
    }

    #[test]
    fn cached_ordinal_always_agrees(k in 0usize..20, script in actions()) {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let scheme = WBoxScheme::new(
            pager,
            WBoxConfig::small_for_tests().with_ordinal(),
        );
        let mut cached = CachedOrdinal::new(scheme, k);
        let mut order = cached
            .scheme
            .bulk_load_document(&(0..120).map(|i| i ^ 1).collect::<Vec<_>>());
        let anchors: Vec<_> = order.iter().copied().step_by(17).collect();
        cached.checkpoint(&anchors);
        let mut refs: Vec<CachedRef<u64>> = (0..PROBES).map(|_| CachedRef::new()).collect();
        for action in script {
            match action {
                Action::Insert(raw) => {
                    let at = raw % order.len();
                    let new = cached.insert_before(order[at]);
                    order.insert(at, new);
                }
                Action::Delete(raw) => {
                    if order.len() > PROBES + 2 {
                        let at = raw % order.len();
                        let lid = order.remove(at);
                        cached.delete(lid);
                    }
                }
                Action::Read(raw) => {
                    let probe = raw % PROBES;
                    let at = (raw * 31) % order.len();
                    let lid = order[at];
                    let mut r = std::mem::take(&mut refs[probe]);
                    r.clear();
                    let got = cached.ordinal_of(lid, &mut r);
                    prop_assert_eq!(got, at as u64, "ordinal = live position");
                    let again = cached.ordinal_of(lid, &mut r);
                    prop_assert_eq!(again, at as u64);
                    refs[probe] = r;
                }
            }
            let report = cached.audit();
            prop_assert!(report.is_clean(), "dirty after {:?}:\n{}", action, report);
        }
    }
}

use boxes_core::LabelingScheme;

/// The k-fold claim, deterministically: with log size k, a reference can
/// sit out exactly k updates and still replay; the (k+1)-st forces a full
/// lookup.
#[test]
fn log_covers_exactly_k_updates() {
    for k in [1usize, 2, 5, 16] {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut wbox = WBox::new(pager, WBoxConfig::small_for_tests());
        let order = wbox.bulk_load(500);
        // Pre-split the anchor's leaf so updates are single-leaf shifts.
        let anchor = order[250];
        let far = order[10];
        let mut cached = CachedWBox::new(wbox, k);
        cached.insert_before(anchor);

        // Warm a reference far from the action.
        let mut r = CachedRef::new();
        cached.lookup(far, &mut r);
        cached.stats = Default::default();
        for _ in 0..k {
            cached.insert_before(anchor);
        }
        cached.lookup(far, &mut r);
        assert_eq!(cached.stats.full, 0, "k={k}: k updates still replayable");
        cached.stats = Default::default();
        for _ in 0..(k + 1) {
            cached.insert_before(anchor);
        }
        cached.lookup(far, &mut r);
        assert_eq!(cached.stats.full, 1, "k={k}: k+1 updates overflow the log");
    }
}
