//! Cross-scheme agreement: every scheme replaying the same XML update
//! stream must induce the same relative order on the same tags, and the
//! ordinal-capable schemes must agree on exact positions.

use boxes_core::bbox::BBoxConfig;
use boxes_core::pager::{Pager, PagerConfig};
use boxes_core::wbox::WBoxConfig;
use boxes_core::xml::generate::xmark;
use boxes_core::xml::workload::{concentrated, document_order, scattered, UpdateStream};
use boxes_core::{
    BBoxScheme, DocumentDriver, LabelingScheme, NaiveScheme, OrdinalScheme, WBoxScheme,
};

/// Rank of every live element's tags under a scheme: element slot →
/// (rank of start label, rank of end label) in global label order.
fn ranks<S: LabelingScheme>(driver: &DocumentDriver<S>) -> Vec<Option<(usize, usize)>> {
    let n = driver.element_count();
    let mut labels: Vec<(S::Label, usize, bool)> = Vec::new();
    let mut live = vec![false; n];
    for (i, alive) in live.iter_mut().enumerate() {
        let r = boxes_core::xml::workload::ElemRef(i);
        let pair = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| driver.element(r)));
        if let Ok((s, e)) = pair {
            *alive = true;
            labels.push((driver.scheme.lookup(s), i, true));
            labels.push((driver.scheme.lookup(e), i, false));
        }
    }
    labels.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = vec![None; n];
    let mut starts = vec![usize::MAX; n];
    for (rank, (_, elem, is_start)) in labels.iter().enumerate() {
        if *is_start {
            starts[*elem] = rank;
        } else {
            out[*elem] = Some((starts[*elem], rank));
        }
    }
    out
}

fn assert_streams_agree(stream: &UpdateStream) {
    let w = {
        let pager = Pager::new(PagerConfig::with_block_size(1024));
        let mut d = DocumentDriver::load(
            WBoxScheme::new(pager, WBoxConfig::from_block_size(1024)),
            &stream.base,
        );
        d.replay(&stream.ops);
        d.verify_document_order();
        ranks(&d)
    };
    let b = {
        let pager = Pager::new(PagerConfig::with_block_size(256));
        let mut d = DocumentDriver::load(
            BBoxScheme::new(pager, BBoxConfig::from_block_size(256)),
            &stream.base,
        );
        d.replay(&stream.ops);
        d.verify_document_order();
        ranks(&d)
    };
    let n = {
        let mut d = DocumentDriver::load(NaiveScheme::with_block_size(512, 4), &stream.base);
        d.replay(&stream.ops);
        d.verify_document_order();
        ranks(&d)
    };
    assert_eq!(w, b, "W-BOX and B-BOX disagree on tag order");
    assert_eq!(w, n, "W-BOX and naive-4 disagree on tag order");
}

#[test]
fn concentrated_stream_all_schemes_agree() {
    assert_streams_agree(&concentrated(150, 80));
}

#[test]
fn scattered_stream_all_schemes_agree() {
    assert_streams_agree(&scattered(300, 90));
}

#[test]
fn xmark_stream_all_schemes_agree() {
    let doc = xmark(800, 21);
    assert_streams_agree(&document_order(&doc, 0));
}

#[test]
fn ordinal_schemes_agree_exactly() {
    let doc = xmark(600, 5);
    let stream = document_order(&doc, 0);

    let pager = Pager::new(PagerConfig::with_block_size(1024));
    let mut dw = DocumentDriver::load(
        WBoxScheme::new(pager, WBoxConfig::from_block_size(1024).with_ordinal()),
        &stream.base,
    );
    dw.replay(&stream.ops);

    let pager = Pager::new(PagerConfig::with_block_size(256));
    let mut db = DocumentDriver::load(
        BBoxScheme::new(pager, BBoxConfig::from_block_size(256).with_ordinal()),
        &stream.base,
    );
    db.replay(&stream.ops);

    for i in (0..dw.element_count()).step_by(13) {
        let r = boxes_core::xml::workload::ElemRef(i);
        let (ws, we) = dw.element(r);
        let (bs, be) = db.element(r);
        assert_eq!(
            dw.scheme.ordinal_of(ws),
            db.scheme.ordinal_of(bs),
            "start ordinal of element {i}"
        );
        assert_eq!(
            dw.scheme.ordinal_of(we),
            db.scheme.ordinal_of(be),
            "end ordinal of element {i}"
        );
    }
}

#[test]
fn pair_optimized_wbox_agrees_with_plain() {
    let stream = concentrated(200, 120);

    let pager = Pager::new(PagerConfig::with_block_size(1024));
    let mut plain = DocumentDriver::load(
        WBoxScheme::new(pager, WBoxConfig::from_block_size(1024)),
        &stream.base,
    );
    plain.replay(&stream.ops);

    let pager = Pager::new(PagerConfig::with_block_size(1024));
    let mut paired = DocumentDriver::load(
        WBoxScheme::new(pager, WBoxConfig::from_block_size_paired(1024)),
        &stream.base,
    );
    paired.replay(&stream.ops);
    paired.scheme.inner().validate(); // includes pair-cache validation

    assert_eq!(ranks(&plain), ranks(&paired));

    // And the cached end labels answer pair lookups correctly everywhere.
    for i in (0..paired.element_count()).step_by(7) {
        let r = boxes_core::xml::workload::ElemRef(i);
        let (s, e) = paired.element(r);
        let (ls, le) = paired.scheme.inner().pair_lookup(s);
        assert_eq!(ls, paired.scheme.lookup(s));
        assert_eq!(le, paired.scheme.lookup(e));
    }
}

#[test]
fn pair_optimized_wbox_survives_deletes_and_churn() {
    use boxes_xml::workload::insert_delete_churn_with_prefill;
    let stream = insert_delete_churn_with_prefill(150, 120, 60);
    let pager = Pager::new(PagerConfig::with_block_size(1024));
    let mut driver = DocumentDriver::load(
        WBoxScheme::new(pager, WBoxConfig::from_block_size_paired(1024)),
        &stream.base,
    );
    driver.replay(&stream.ops);
    driver.verify_document_order();
    // Pair caches and partner links must be fully consistent afterwards.
    driver.scheme.inner().validate();
    // And pair lookups still answer in 2 I/Os with fresh values.
    let pager = driver.scheme.pager().clone();
    for i in (0..driver.element_count()).step_by(17) {
        let r = boxes_core::xml::workload::ElemRef(i);
        let Ok((s, e)) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| driver.element(r)))
        else {
            continue; // deleted by the churn
        };
        let before = pager.stats();
        let (ls, le) = driver.scheme.inner().pair_lookup(s);
        assert_eq!(pager.stats().since(&before).total(), 2);
        assert_eq!(ls, driver.scheme.lookup(s));
        assert_eq!(le, driver.scheme.lookup(e));
    }
}

#[test]
fn subtree_stream_equivalence_across_schemes() {
    use boxes_xml::generate::two_level;
    use boxes_xml::workload::{Anchor, ElemRef, Op, UpdateStream};
    // A stream mixing bulk subtree inserts/deletes with single ops.
    let mut ops = vec![
        Op::InsertSubtree {
            anchor: Anchor::BeforeEnd(ElemRef(0)),
            tree: two_level(40),
        },
        Op::InsertElement {
            anchor: Anchor::BeforeStart(ElemRef(50)),
        },
        Op::DeleteSubtree {
            elem: ElemRef(101), // the subtree root inserted above
            removed: (101..142).map(ElemRef).collect(),
        },
        Op::InsertSubtree {
            anchor: Anchor::BeforeStart(ElemRef(20)),
            tree: two_level(25),
        },
    ];
    ops.push(Op::DeleteElement { elem: ElemRef(100) });
    let stream = UpdateStream {
        base: two_level(100),
        ops,
        measure_from: 0,
    };
    assert_streams_agree(&stream);
}
