//! BigLabel arithmetic verified against native u128 on the range where both
//! are defined, plus structural properties beyond it.

use boxes_naive::BigLabel;
use proptest::prelude::*;

fn from_u128(v: u128) -> BigLabel {
    BigLabel([v as u64, (v >> 64) as u64, 0, 0, 0])
}

fn to_u128(b: BigLabel) -> u128 {
    assert!(b.0[2] == 0 && b.0[3] == 0 && b.0[4] == 0);
    (b.0[1] as u128) << 64 | b.0[0] as u128
}

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..(u128::MAX / 2), b in 0u128..(u128::MAX / 2)) {
        prop_assert_eq!(to_u128(from_u128(a).add(from_u128(b))), a + b);
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(to_u128(from_u128(hi).sub(from_u128(lo))), hi - lo);
    }

    #[test]
    fn half_matches_u128(a in any::<u128>()) {
        prop_assert_eq!(to_u128(from_u128(a).half()), a / 2);
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u32>()) {
        let expect = a as u128 * b as u128;
        prop_assert_eq!(to_u128(from_u128(a as u128).mul_u64(b as u64)), expect);
    }

    #[test]
    fn ordering_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(from_u128(a).cmp(&from_u128(b)), a.cmp(&b));
    }

    #[test]
    fn bits_matches_u128(a in any::<u128>()) {
        prop_assert_eq!(from_u128(a).bits(), 128 - a.leading_zeros());
    }

    #[test]
    fn byte_roundtrip(a in any::<u128>(), extra in 0usize..24) {
        let v = from_u128(a);
        let nbytes = ((v.bits() as usize).div_ceil(8)).max(1) + extra;
        if nbytes <= 40 {
            let mut buf = vec![0u8; nbytes];
            v.write_bytes(&mut buf);
            prop_assert_eq!(BigLabel::read_bytes(&buf), v);
        }
    }

    #[test]
    fn gap_splitting_invariant(k in 1u32..260) {
        // The core naive-k step: splitting gap g at label L yields a new
        // label strictly between L−g and L, and the two new gaps sum to g.
        let gap = BigLabel::pow2(k);
        let label = BigLabel::pow2(k).mul_u64(3); // some label > gap
        let left = gap.half();
        let new_label = label.sub(left);
        let new_gap = gap.sub(left);
        prop_assert!(label.sub(gap) < new_label);
        prop_assert!(new_label < label);
        prop_assert_eq!(left.add(new_gap), gap);
    }
}
