#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! The naive-k gap-relabeling baseline (§1, §2, §7 of the paper).
//!
//! Labels live directly in the label file: each record stores the label
//! value and the gap to the previous label. An insertion splits the
//! predecessor gap; when the gap is exhausted (length 1) *everything* is
//! relabeled to equally spaced values with gap 2^k, where `k` is the
//! scheme's extra-bits parameter. An adversary inserting repeatedly into
//! the smallest gap forces a full relabel every k+1 insertions — the
//! failure mode the BOXes fix.
//!
//! Records are sized for ⌈log N⌉ + k bit labels (stored as [`BigLabel`]s of
//! up to 320 bits — k = 256 labels simply do not fit machine words, the
//! paper's "Other findings" point), so large k also means fewer records per
//! block and costlier relabels.
//!
//! Per §7 we grant naive-k the paper's "unfair advantage": sorting for
//! relabeling is free (an in-memory label→LID mirror), so a global relabel
//! costs exactly one sequential read plus one sequential write of the
//! file, O(N/B) I/Os.
//!
//! # Example
//!
//! ```
//! use boxes_naive::{NaiveConfig, NaiveLabeling};
//! use boxes_pager::{Pager, PagerConfig};
//!
//! let pager = Pager::new(PagerConfig::with_block_size(512));
//! let mut naive = NaiveLabeling::new(pager, NaiveConfig { extra_bits: 4 });
//! let lids = naive.bulk_load(4);
//! let mid = naive.insert_before(lids[2]);
//! assert!(naive.lookup(lids[1]) < naive.lookup(mid));
//! assert!(naive.lookup(mid) < naive.lookup(lids[2]));
//! ```

mod biglabel;

pub use biglabel::BigLabel;

use boxes_lidf::Lid;
use boxes_pager::codec::{u32_to_usize, u64_to_index, usize_to_u64};
use boxes_pager::{BlockId, SharedPager};
use boxes_trace::OpSpan;
use std::collections::BTreeMap;

/// Configuration of the naive scheme.
#[derive(Clone, Copy, Debug)]
pub struct NaiveConfig {
    /// k: extra bits of gap per label. Fresh labels are spaced 2^k apart.
    pub extra_bits: u32,
}

impl NaiveConfig {
    fn gap(&self) -> BigLabel {
        BigLabel::pow2(self.extra_bits)
    }

    /// Bytes per stored label: room for ⌈log N⌉ + k bits (40 + k budget).
    fn label_bytes(&self) -> usize {
        u32_to_usize(40 + self.extra_bits).div_ceil(8)
    }
}

/// Serialized size of a [`BigLabel`] in the `"naive"` state blob (320 bits).
const MAX_LABEL_BYTES: usize = 40;

/// The naive-k dynamic labeling scheme over its own heap file of
/// (label, gap) records.
pub struct NaiveLabeling {
    pager: SharedPager,
    config: NaiveConfig,
    blocks: Vec<BlockId>,
    /// Total slots ever created.
    slots: u64,
    /// In-memory free-slot list (bookkeeping, like the sort mirror).
    free: Vec<u64>,
    recs_per_block: usize,
    rec_bytes: usize,
    /// In-memory sorted mirror (label → LID). Models the paper's assumption
    /// that naive-k sorts in memory for free; never charged I/Os.
    mirror: BTreeMap<BigLabel, Lid>,
    relabel_count: u64,
    max_label_seen: BigLabel,
}

impl NaiveLabeling {
    /// Empty scheme on the shared pager.
    pub fn new(pager: SharedPager, config: NaiveConfig) -> Self {
        assert!(
            config.extra_bits >= 1,
            "naive-0 has no gaps at all: every insert would relabel \
             forever (k must be ≥ 1)"
        );
        assert!(
            config.extra_bits <= 272,
            "gap parameter beyond BigLabel capacity"
        );
        let rec_bytes = 2 * config.label_bytes();
        let recs_per_block = pager.block_size() / rec_bytes;
        assert!(
            recs_per_block >= 1,
            "block too small for naive-{} records ({rec_bytes} bytes each)",
            config.extra_bits
        );
        Self {
            pager,
            config,
            blocks: Vec::new(),
            slots: 0,
            free: Vec::new(),
            recs_per_block,
            rec_bytes,
            mirror: BTreeMap::new(),
            relabel_count: 0,
            max_label_seen: BigLabel::ZERO,
        }
    }

    /// Records per block for this k and block size.
    pub fn recs_per_block(&self) -> usize {
        self.recs_per_block
    }

    /// Reconstruct the scheme from its `"naive"` state blob over a recovered
    /// pager. `config` must match the build-time configuration (record size
    /// depends on k). The sorted label mirror is not serialized — it is
    /// rebuilt here by one sequential scan of the live records, the same
    /// free in-memory sort the paper already grants naive-k.
    pub fn reopen(pager: SharedPager, config: NaiveConfig, state: &[u8]) -> Self {
        let mut this = Self::new(pager, config);
        let mut r = boxes_pager::Reader::new(state);
        this.slots = r.u64();
        this.relabel_count = r.u64();
        let n_free = boxes_pager::codec::u32_to_usize(r.u32());
        this.free = (0..n_free).map(|_| r.u64()).collect();
        let n_blocks = boxes_pager::codec::u32_to_usize(r.u32());
        this.blocks = (0..n_blocks).map(|_| BlockId(r.u32())).collect();
        this.max_label_seen = BigLabel::read_bytes(r.bytes(MAX_LABEL_BYTES));
        let dead: std::collections::BTreeSet<u64> = this.free.iter().copied().collect();
        for slot in 0..this.slots {
            if !dead.contains(&slot) {
                let lid = Lid(slot);
                let (label, _) = this.read_record(lid);
                this.mirror.insert(label, lid);
            }
        }
        this
    }

    /// Serialize the in-memory header (slot allocator, free list, counters)
    /// — everything [`NaiveLabeling::reopen`] needs beyond the label file
    /// itself. The mirror is derived state and deliberately excluded.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = boxes_pager::VecWriter::new();
        w.u64(self.slots);
        w.u64(self.relabel_count);
        w.u32(boxes_pager::codec::usize_to_u32(self.free.len()).expect("free list fits u32"));
        for &slot in &self.free {
            w.u64(slot);
        }
        w.u32(boxes_pager::codec::usize_to_u32(self.blocks.len()).expect("directory fits u32"));
        for b in &self.blocks {
            w.u32(b.0);
        }
        let mut label = [0u8; MAX_LABEL_BYTES];
        self.max_label_seen.write_bytes(&mut label);
        w.bytes(&label);
        w.into_bytes()
    }

    /// Run `f` as one journaled operation: all blocks it dirties (up to a
    /// whole global relabel) commit as a single atomic WAL record carrying
    /// the refreshed `"naive"` state blob.
    /// Trace scheme tag for spans opened by this scheme's primitives.
    /// Span labels are `&'static str`, so the common k values get their
    /// own tag and everything else shares a generic one.
    fn trace_tag(&self) -> &'static str {
        match self.config.extra_bits {
            1 => "naive-1",
            2 => "naive-2",
            4 => "naive-4",
            8 => "naive-8",
            16 => "naive-16",
            32 => "naive-32",
            64 => "naive-64",
            _ => "naive-k",
        }
    }

    fn journaled<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        let txn = self.pager.txn();
        let out = f(self);
        let state = self.save_state();
        self.pager.txn_meta("naive", || state);
        txn.commit();
        out
    }

    fn locate(&self, lid: Lid) -> (BlockId, usize) {
        assert!(lid.0 < self.slots, "LID out of range: {lid:?}");
        let rpb = usize_to_u64(self.recs_per_block);
        let block = self.blocks[u64_to_index(lid.0 / rpb)];
        let offset = u64_to_index(lid.0 % rpb) * self.rec_bytes;
        (block, offset)
    }

    fn read_record(&self, lid: Lid) -> (BigLabel, BigLabel) {
        let (block, offset) = self.locate(lid);
        let buf = self.pager.read(block);
        self.decode_at(&buf, offset)
    }

    fn decode_at(&self, buf: &[u8], offset: usize) -> (BigLabel, BigLabel) {
        let lb = self.config.label_bytes();
        (
            BigLabel::read_bytes(&buf[offset..offset + lb]),
            BigLabel::read_bytes(&buf[offset + lb..offset + 2 * lb]),
        )
    }

    fn encode_at(&self, buf: &mut [u8], offset: usize, label: BigLabel, gap: BigLabel) {
        let lb = self.config.label_bytes();
        label.write_bytes(&mut buf[offset..offset + lb]);
        gap.write_bytes(&mut buf[offset + lb..offset + 2 * lb]);
    }

    fn write_record(&mut self, lid: Lid, label: BigLabel, gap: BigLabel) {
        let (block, offset) = self.locate(lid);
        let mut buf = self.pager.read(block);
        self.encode_at(&mut buf, offset, label, gap);
        self.pager.write(block, &buf);
    }

    fn alloc_slot(&mut self) -> Lid {
        if let Some(slot) = self.free.pop() {
            return Lid(slot);
        }
        let lid = Lid(self.slots);
        if (self.slots).is_multiple_of(usize_to_u64(self.recs_per_block)) {
            self.blocks.push(self.pager.alloc());
        }
        self.slots += 1;
        lid
    }

    fn note_max(&mut self, label: BigLabel) {
        if label > self.max_label_seen {
            self.max_label_seen = label;
        }
    }

    /// Bulk load `count` tags in document order, equally spaced 2^k apart.
    /// O(N/B) I/Os. Returns the LIDs in document order.
    pub fn bulk_load(&mut self, count: usize) -> Vec<Lid> {
        let _span = OpSpan::op(self.trace_tag(), "bulk_load");
        self.journaled(|t| t.bulk_load_impl(count))
    }

    fn bulk_load_impl(&mut self, count: usize) -> Vec<Lid> {
        assert!(self.is_empty(), "bulk_load on a non-empty scheme");
        let gap = self.config.gap();
        let mut lids = Vec::with_capacity(count);
        let mut label = BigLabel::ZERO;
        let mut i = 0usize;
        while i < count {
            let block = {
                let lid = Lid(self.slots);
                if lid.0.is_multiple_of(usize_to_u64(self.recs_per_block)) {
                    self.blocks.push(self.pager.alloc());
                }
                *self.blocks.last().expect("block exists")
            };
            let mut buf = self.pager.read(block);
            let mut slot = u64_to_index(self.slots % usize_to_u64(self.recs_per_block));
            while slot < self.recs_per_block && i < count {
                label = label.add(gap);
                self.encode_at(&mut buf, slot * self.rec_bytes, label, gap);
                let lid = Lid(self.slots);
                self.mirror.insert(label, lid);
                lids.push(lid);
                self.slots += 1;
                slot += 1;
                i += 1;
            }
            self.pager.write(block, &buf);
        }
        self.note_max(label);
        lids
    }

    /// Current label of `lid`. One I/O.
    pub fn lookup(&self, lid: Lid) -> BigLabel {
        let _span = OpSpan::op(self.trace_tag(), "lookup");
        self.read_record(lid).0
    }

    /// Insert a new label immediately before the label of `lid_old`.
    /// Returns the new LID. Splits the predecessor gap; triggers a global
    /// relabel when the gap is exhausted.
    pub fn insert_before(&mut self, lid_old: Lid) -> Lid {
        let _span = OpSpan::op(self.trace_tag(), "insert");
        self.journaled(|t| t.insert_before_impl(lid_old))
    }

    fn insert_before_impl(&mut self, lid_old: Lid) -> Lid {
        let (old_label, old_gap) = self.read_record(lid_old);
        if old_gap.is_one() || old_gap.is_zero() {
            self.relabel();
            return self.insert_before_impl(lid_old);
        }
        let left = old_gap.half();
        let new_label = old_label.sub(left);
        let new_gap = old_gap.sub(left);
        let new_lid = self.alloc_slot();
        self.write_record(new_lid, new_label, new_gap);
        self.write_record(lid_old, old_label, left);
        self.mirror.insert(new_label, new_lid);
        new_lid
    }

    /// Insert a new element (two labels) before the tag labeled `lid`:
    /// end label first, then start label before it (§3).
    pub fn insert_element_before(&mut self, lid: Lid) -> (Lid, Lid) {
        let _span = OpSpan::op(self.trace_tag(), "insert_element");
        self.journaled(|t| {
            let end = t.insert_before_impl(lid);
            let start = t.insert_before_impl(end);
            (start, end)
        })
    }

    /// Remove the label identified by `lid`, reclaiming its record. The
    /// successor absorbs the freed gap.
    pub fn delete(&mut self, lid: Lid) {
        let _span = OpSpan::op(self.trace_tag(), "delete");
        self.journaled(|t| t.delete_impl(lid));
    }

    fn delete_impl(&mut self, lid: Lid) {
        let (label, gap) = self.read_record(lid);
        self.mirror.remove(&label);
        if let Some((&succ_label, &succ_lid)) = self.mirror.range(label..).next() {
            let (sl, sg) = self.read_record(succ_lid);
            debug_assert_eq!(sl, succ_label);
            self.write_record(succ_lid, sl, sg.add(gap));
        }
        self.free.push(lid.0);
    }

    /// Insert a subtree of `n_tags` labels before the tag labeled `lid`.
    /// The paper defines no bulk path for naive; this loops
    /// `insert_before` (used only for completeness in E7).
    pub fn insert_subtree_before(&mut self, lid: Lid, n_tags: usize) -> Vec<Lid> {
        let _span = OpSpan::op(self.trace_tag(), "subtree_insert");
        self.journaled(|t| {
            let mut out = Vec::with_capacity(n_tags);
            let mut anchor = lid;
            for _ in 0..n_tags {
                anchor = t.insert_before_impl(anchor);
                out.push(anchor);
            }
            out.reverse();
            out
        })
    }

    /// Delete every label in the inclusive label range of `start`..`end`.
    /// One random I/O per record freed (the paper's O(N′) remark).
    pub fn delete_subtree(&mut self, start: Lid, end: Lid) {
        let _span = OpSpan::op(self.trace_tag(), "subtree_delete");
        self.journaled(|t| {
            let lo = t.lookup(start);
            let hi = t.lookup(end);
            assert!(lo < hi, "subtree endpoints out of order");
            let doomed: Vec<Lid> = t.mirror.range(lo..=hi).map(|(_, &l)| l).collect();
            for lid in doomed {
                t.delete_impl(lid);
            }
        });
    }

    /// Global relabel: every live record gets a fresh, equally spaced label
    /// with gap 2^k. One sequential read + write of the file (O(N/B));
    /// the sort is free via the in-memory mirror.
    fn relabel(&mut self) {
        let _phase = OpSpan::phase("relabel");
        self.relabel_count += 1;
        let gap = self.config.gap();
        // One pass over the (sorted) mirror yields every live slot's rank;
        // sorting by slot turns the rewrite into a sequential block sweep.
        let mut by_slot: Vec<(u64, u64)> = self
            .mirror
            .values()
            .enumerate()
            .map(|(rank, &lid)| (lid.0, usize_to_u64(rank)))
            .collect();
        by_slot.sort_unstable();
        let rpb = usize_to_u64(self.recs_per_block);
        let mut i = 0usize;
        while i < by_slot.len() {
            let bi = u64_to_index(by_slot[i].0 / rpb);
            let block = self.blocks[bi];
            let mut buf = self.pager.read(block);
            while i < by_slot.len() && u64_to_index(by_slot[i].0 / rpb) == bi {
                let (slot, rank) = by_slot[i];
                let label = gap.mul_u64(rank + 1);
                self.encode_at(
                    &mut buf,
                    u64_to_index(slot % rpb) * self.rec_bytes,
                    label,
                    gap,
                );
                i += 1;
            }
            self.pager.write(block, &buf);
        }
        let n = usize_to_u64(self.mirror.len());
        // Keys are reassigned in place; order is unchanged, so the rebuild
        // collects from an already-sorted iterator (bulk build).
        self.mirror = self
            .mirror
            .values()
            .enumerate()
            .map(|(i, &lid)| (gap.mul_u64(usize_to_u64(i) + 1), lid))
            .collect();
        self.note_max(gap.mul_u64(n));
    }

    /// How many global relabels have occurred.
    pub fn relabel_count(&self) -> u64 {
        self.relabel_count
    }

    /// Number of live labels.
    pub fn len(&self) -> u64 {
        usize_to_u64(self.mirror.len())
    }

    /// Whether the scheme holds no labels.
    pub fn is_empty(&self) -> bool {
        self.mirror.is_empty()
    }

    /// Bits needed for the largest label value ever assigned — the paper's
    /// label-length metric (naive-k labels need ⌈log N⌉ + k bits).
    pub fn label_bits(&self) -> u32 {
        self.max_label_seen.bits()
    }

    /// Blocks used by the label file.
    pub fn blocks_used(&self) -> usize {
        self.blocks.len()
    }

    /// Shared pager handle, for I/O accounting.
    pub fn pager(&self) -> &SharedPager {
        &self.pager
    }

    /// All live labels in document order — test/validation support, not an
    /// I/O-accounted operation.
    pub fn snapshot_order(&self) -> Vec<(BigLabel, Lid)> {
        self.mirror.iter().map(|(&l, &lid)| (l, lid)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boxes_pager::{Pager, PagerConfig};

    fn scheme(k: u32) -> NaiveLabeling {
        NaiveLabeling::new(
            Pager::new(PagerConfig::with_block_size(512)),
            NaiveConfig { extra_bits: k },
        )
    }

    fn lbl(v: u64) -> BigLabel {
        BigLabel::from_u64(v)
    }

    #[test]
    fn bulk_load_spaces_labels_equally() {
        let mut s = scheme(3);
        let lids = s.bulk_load(5);
        let labels: Vec<BigLabel> = lids.iter().map(|&l| s.lookup(l)).collect();
        assert_eq!(labels, vec![lbl(8), lbl(16), lbl(24), lbl(32), lbl(40)]);
        assert_eq!(s.label_bits(), 6);
    }

    #[test]
    fn insert_splits_the_gap() {
        let mut s = scheme(4); // gap 16
        let lids = s.bulk_load(3); // 16, 32, 48
        let mid = s.insert_before(lids[1]);
        assert_eq!(s.lookup(mid), lbl(24));
        assert_eq!(s.lookup(lids[1]), lbl(32));
        let mid2 = s.insert_before(lids[1]);
        assert_eq!(s.lookup(mid2), lbl(28));
    }

    #[test]
    fn adversary_forces_relabel_after_k_plus_one_inserts() {
        let mut s = scheme(3); // gap 8 → 3+1 inserts break it
        let lids = s.bulk_load(2);
        for _ in 0..3 {
            s.insert_before(lids[1]);
        }
        assert_eq!(s.relabel_count(), 0);
        s.insert_before(lids[1]);
        assert_eq!(s.relabel_count(), 1, "k+1st insert into the gap relabels");
    }

    #[test]
    fn huge_k_values_work() {
        // k = 256: labels beyond any machine word, as in the paper.
        let mut s = scheme(256);
        let lids = s.bulk_load(10);
        assert!(s.label_bits() > 256);
        let mid = s.insert_before(lids[5]);
        assert!(s.lookup(lids[4]) < s.lookup(mid));
        assert!(s.lookup(mid) < s.lookup(lids[5]));
        // Larger records: fewer per block.
        assert!(s.recs_per_block() < scheme(1).recs_per_block());
        // The first insert already halved the 2^256 gap once, so 255 more
        // inserts reach gap 1; the 257th insert overall triggers a relabel.
        for _ in 0..255 {
            s.insert_before(lids[5]);
        }
        assert_eq!(s.relabel_count(), 0);
        s.insert_before(lids[5]);
        assert_eq!(s.relabel_count(), 1);
    }

    #[test]
    fn relabel_preserves_order() {
        let mut s = scheme(1);
        let lids = s.bulk_load(4);
        let mut inserted = vec![];
        for _ in 0..20 {
            inserted.push(s.insert_before(lids[2]));
        }
        assert!(s.relabel_count() > 0);
        let mut expect = vec![lids[0], lids[1]];
        expect.extend(&inserted);
        expect.push(lids[2]);
        expect.push(lids[3]);
        let labels: Vec<BigLabel> = expect.iter().map(|&l| s.lookup(l)).collect();
        for w in labels.windows(2) {
            assert!(w[0] < w[1], "order violated");
        }
    }

    #[test]
    fn relabel_cost_is_two_sequential_passes() {
        let mut s = scheme(1);
        let lids = s.bulk_load(1000);
        let pager = s.pager().clone();
        s.insert_before(lids[500]);
        let before = pager.stats();
        s.insert_before(lids[500]);
        let cost = pager.stats().since(&before);
        assert_eq!(s.relabel_count(), 1);
        let blocks = s.blocks_used() as u64;
        assert!(
            cost.total() >= 2 * blocks,
            "relabel must rewrite the whole file: {cost:?} vs {blocks} blocks"
        );
        assert!(
            cost.total() <= 2 * blocks + 8,
            "relabel should cost ~2 passes: {cost:?}"
        );
    }

    #[test]
    fn element_insert_allocates_ordered_pair() {
        let mut s = scheme(6);
        let lids = s.bulk_load(2);
        let (start, end) = s.insert_element_before(lids[1]);
        let ls = s.lookup(start);
        let le = s.lookup(end);
        assert!(s.lookup(lids[0]) < ls);
        assert!(ls < le);
        assert!(le < s.lookup(lids[1]));
    }

    #[test]
    fn delete_gives_gap_to_successor() {
        let mut s = scheme(4);
        let lids = s.bulk_load(3);
        s.delete(lids[1]);
        assert_eq!(s.len(), 2);
        for _ in 0..4 {
            s.insert_before(lids[2]);
        }
        assert_eq!(s.relabel_count(), 0);
    }

    #[test]
    fn delete_last_label_needs_no_successor() {
        let mut s = scheme(4);
        let lids = s.bulk_load(2);
        s.delete(lids[1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup(lids[0]), lbl(16));
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut s = scheme(4);
        let lids = s.bulk_load(3);
        s.delete(lids[1]);
        let n = s.insert_before(lids[2]);
        assert_eq!(n, lids[1], "slot recycled");
    }

    #[test]
    fn subtree_insert_keeps_order() {
        let mut s = scheme(8);
        let lids = s.bulk_load(4);
        let sub = s.insert_subtree_before(lids[2], 6);
        assert_eq!(sub.len(), 6);
        let mut order = vec![lids[0], lids[1]];
        order.extend(&sub);
        order.push(lids[2]);
        order.push(lids[3]);
        let labels: Vec<BigLabel> = order.iter().map(|&l| s.lookup(l)).collect();
        for w in labels.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn subtree_delete_frees_exactly_the_range() {
        let mut s = scheme(8);
        let lids = s.bulk_load(6);
        s.delete_subtree(lids[1], lids[4]);
        assert_eq!(s.len(), 2);
        assert!(s.lookup(lids[0]) < s.lookup(lids[5]));
    }

    #[test]
    fn label_bits_grow_with_k() {
        for k in [1u32, 4, 16, 64] {
            let mut s = scheme(k);
            s.bulk_load(1000); // max label = 1000·2^k < 2^(10+k)
            assert_eq!(s.label_bits(), 10 + k, "⌈log N⌉ + k bits");
        }
    }

    #[test]
    fn lookup_costs_one_io() {
        let mut s = scheme(4);
        let lids = s.bulk_load(100);
        let pager = s.pager().clone();
        let before = pager.stats();
        s.lookup(lids[42]);
        assert_eq!(pager.stats().since(&before).total(), 1);
    }
}
