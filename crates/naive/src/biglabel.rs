//! Fixed-width 320-bit unsigned labels for naive-k.
//!
//! naive-k's labels need ⌈log N⌉ + k bits; the paper runs k up to 256, so
//! 64-bit (or even 128-bit) machine words cannot hold them — which is
//! exactly the paper's point about long labels. Five 64-bit limbs cover
//! every configuration the experiments use (k ≤ 280).

use boxes_pager::codec::u32_to_usize;

/// A 320-bit unsigned integer, little-endian limbs. `Ord` compares
/// numerically (most-significant limb first).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BigLabel(pub [u64; 5]);

/// Low 64 bits of a double-width product — the limb that stays, with the
/// carry shifted out separately.
#[inline]
fn low_limb(v: u128) -> u64 {
    u64::try_from(v & u128::from(u64::MAX)).unwrap_or(0) // mask makes this infallible
}

impl Ord for BigLabel {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp_num(other)
    }
}

impl PartialOrd for BigLabel {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[allow(clippy::should_implement_trait)]
impl BigLabel {
    /// The value 0.
    pub const ZERO: BigLabel = BigLabel([0; 5]);

    /// Total bits.
    pub const BITS: u32 = 320;

    /// From a small value.
    pub fn from_u64(v: u64) -> Self {
        BigLabel([v, 0, 0, 0, 0])
    }

    /// 2^k.
    pub fn pow2(k: u32) -> Self {
        assert!(k < Self::BITS, "exponent too large for BigLabel");
        let mut limbs = [0u64; 5];
        limbs[u32_to_usize(k / 64)] = 1u64 << (k % 64);
        BigLabel(limbs)
    }

    /// Checked addition (panics on overflow — label space exhausted).
    pub fn add(self, rhs: BigLabel) -> BigLabel {
        let mut out = [0u64; 5];
        let mut carry = 0u64;
        for (i, limb) in out.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        assert_eq!(carry, 0, "BigLabel overflow");
        BigLabel(out)
    }

    /// Subtraction (panics on underflow).
    pub fn sub(self, rhs: BigLabel) -> BigLabel {
        let mut out = [0u64; 5];
        let mut borrow = 0u64;
        for (i, limb) in out.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        assert_eq!(borrow, 0, "BigLabel underflow");
        BigLabel(out)
    }

    /// Halve (shift right by one bit).
    pub fn half(self) -> BigLabel {
        let mut out = [0u64; 5];
        let mut carry = 0u64;
        for i in (0..5).rev() {
            out[i] = (self.0[i] >> 1) | (carry << 63);
            carry = self.0[i] & 1;
        }
        BigLabel(out)
    }

    /// Multiply by a small factor (panics on overflow).
    pub fn mul_u64(self, rhs: u64) -> BigLabel {
        let mut out = [0u64; 5];
        let mut carry = 0u128;
        for (i, limb) in out.iter_mut().enumerate() {
            let prod = u128::from(self.0[i]) * u128::from(rhs) + carry;
            *limb = low_limb(prod);
            carry = prod >> 64;
        }
        assert_eq!(carry, 0, "BigLabel overflow");
        BigLabel(out)
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&l| l == 0)
    }

    /// Whether the value is one.
    pub fn is_one(&self) -> bool {
        self.0[0] == 1 && self.0[1..].iter().all(|&l| l == 0)
    }

    /// Position of the highest set bit + 1 (0 for zero) — the bit length.
    pub fn bits(&self) -> u32 {
        let mut hi = Self::BITS;
        for &limb in self.0.iter().rev() {
            if limb != 0 {
                return hi - limb.leading_zeros();
            }
            hi -= 64;
        }
        0
    }

    /// Serialize the low `nbytes` bytes (panics if the value needs more).
    pub fn write_bytes(&self, out: &mut [u8]) {
        let nbytes = out.len();
        assert!(
            u32_to_usize(self.bits()) <= nbytes * 8,
            "BigLabel needs more than {nbytes} bytes"
        );
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.0[i / 8].to_le_bytes()[i % 8];
        }
    }

    /// Deserialize from `bytes.len()` little-endian bytes.
    pub fn read_bytes(bytes: &[u8]) -> Self {
        let mut limbs = [0u64; 5];
        for (i, &byte) in bytes.iter().enumerate() {
            limbs[i / 8] |= u64::from(byte) << ((i % 8) * 8);
        }
        BigLabel(limbs)
    }
}

impl BigLabel {
    /// Numeric comparison.
    pub fn cmp_num(&self, other: &Self) -> std::cmp::Ordering {
        for i in (0..5).rev() {
            match self.0[i].cmp(&other.0[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl std::fmt::Debug for BigLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0[1..].iter().all(|&l| l == 0) {
            write!(f, "{}", self.0[0])
        } else {
            write!(
                f,
                "0x{:x}_{:016x}_{:016x}_{:016x}_{:016x}",
                self.0[4], self.0[3], self.0[2], self.0[1], self.0[0]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn arithmetic_small_values() {
        let a = BigLabel::from_u64(100);
        let b = BigLabel::from_u64(42);
        assert_eq!(a.add(b), BigLabel::from_u64(142));
        assert_eq!(a.sub(b), BigLabel::from_u64(58));
        assert_eq!(a.half(), BigLabel::from_u64(50));
        assert_eq!(BigLabel::from_u64(101).half(), BigLabel::from_u64(50));
        assert_eq!(a.mul_u64(7), BigLabel::from_u64(700));
    }

    #[test]
    fn carries_across_limbs() {
        let max_low = BigLabel([u64::MAX, 0, 0, 0, 0]);
        let one = BigLabel::from_u64(1);
        assert_eq!(max_low.add(one), BigLabel([0, 1, 0, 0, 0]));
        assert_eq!(BigLabel([0, 1, 0, 0, 0]).sub(one), max_low);
        assert_eq!(BigLabel([0, 2, 0, 0, 0]).half(), BigLabel([0, 1, 0, 0, 0]));
        assert_eq!(
            BigLabel([0, 1, 0, 0, 0]).half(),
            BigLabel([1u64 << 63, 0, 0, 0, 0])
        );
    }

    #[test]
    fn pow2_and_bits() {
        assert_eq!(BigLabel::pow2(0), BigLabel::from_u64(1));
        assert_eq!(BigLabel::pow2(64), BigLabel([0, 1, 0, 0, 0]));
        assert_eq!(BigLabel::pow2(256).bits(), 257);
        assert_eq!(BigLabel::from_u64(255).bits(), 8);
        assert_eq!(BigLabel::ZERO.bits(), 0);
    }

    #[test]
    fn numeric_comparison_uses_high_limbs() {
        let big = BigLabel([0, 0, 0, 0, 1]);
        let small = BigLabel([u64::MAX, u64::MAX, 0, 0, 0]);
        assert_eq!(big.cmp_num(&small), Ordering::Greater);
        assert_eq!(small.cmp_num(&big), Ordering::Less);
        assert_eq!(big.cmp_num(&big), Ordering::Equal);
    }

    #[test]
    fn byte_roundtrip_variable_width() {
        for nbytes in [5usize, 12, 33, 40] {
            let v = BigLabel::pow2((nbytes as u32 * 8) - 3).add(BigLabel::from_u64(12345));
            let mut buf = vec![0u8; nbytes];
            v.write_bytes(&mut buf);
            assert_eq!(BigLabel::read_bytes(&buf), v);
        }
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn oversized_write_panics() {
        let mut buf = [0u8; 2];
        BigLabel::pow2(40).write_bytes(&mut buf);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        BigLabel::from_u64(1).sub(BigLabel::from_u64(2));
    }

    #[test]
    fn adversarial_halving_takes_k_plus_one_steps() {
        // Gap 2^k halves to 1 in exactly k steps; the (k+1)-st insert
        // has no room — matching the paper's adversary analysis.
        let mut gap = BigLabel::pow2(256);
        let mut steps = 0;
        while !gap.is_one() {
            gap = gap.half();
            steps += 1;
        }
        assert_eq!(steps, 256);
    }
}
