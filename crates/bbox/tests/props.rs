//! In-crate property tests for B-BOX mirroring the W-BOX suite: structural
//! invariants after arbitrary op scripts, including bulk subtree ops and
//! both fill policies.

use boxes_audit::Auditable;
use boxes_bbox::{BBox, BBoxConfig, FillPolicy};
use boxes_pager::{Pager, PagerConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum BOp {
    Insert(usize),
    Delete(usize),
    InsertSubtree(usize, usize),
    DeleteRange(usize, usize),
}

fn ops() -> impl Strategy<Value = Vec<BOp>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0usize..10_000).prop_map(BOp::Insert),
            2 => (0usize..10_000).prop_map(BOp::Delete),
            1 => ((0usize..10_000), (1usize..50)).prop_map(|(a, n)| BOp::InsertSubtree(a, n)),
            1 => ((0usize..10_000), (0usize..10_000)).prop_map(|(a, b)| BOp::DeleteRange(a, b)),
        ],
        1..70,
    )
}

fn run(mut b: BBox, script: &[BOp], audit_every_op: bool) {
    let mut order = b.bulk_load(80);
    for op in script {
        match *op {
            BOp::Insert(raw) => {
                let at = raw % order.len();
                let new = b.insert_before(order[at]);
                order.insert(at, new);
            }
            BOp::Delete(raw) => {
                if order.len() > 4 {
                    let at = raw % order.len();
                    b.delete(order.remove(at));
                }
            }
            BOp::InsertSubtree(raw, n) => {
                let at = raw % order.len();
                let lids = b.insert_subtree_before(order[at], n);
                for (j, lid) in lids.into_iter().enumerate() {
                    order.insert(at + j, lid);
                }
            }
            BOp::DeleteRange(ra, rb) => {
                if order.len() < 6 {
                    continue;
                }
                let mut a = ra % order.len();
                let mut c = rb % order.len();
                if a > c {
                    std::mem::swap(&mut a, &mut c);
                }
                if a == c || c - a + 1 >= order.len() {
                    continue;
                }
                b.delete_subtree(order[a], order[c]);
                order.drain(a..=c);
            }
        }
        if audit_every_op {
            // The non-panicking audit path: the report must come back empty
            // after every single op, not merely at the end of the script.
            let report = b.audit();
            assert!(report.is_clean(), "dirty after {op:?}:\n{report}");
        }
    }
    b.validate();
    assert_eq!(b.iter_lids(), order);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn plain_bbox_invariants(script in ops()) {
        let pager = Pager::new(PagerConfig::with_block_size(128));
        run(BBox::new(pager, BBoxConfig::from_block_size(128)), &script, false);
    }

    #[test]
    fn ordinal_bbox_invariants(script in ops()) {
        let pager = Pager::new(PagerConfig::with_block_size(128));
        run(
            BBox::new(pager, BBoxConfig::from_block_size(128).with_ordinal()),
            &script,
            false,
        );
    }

    #[test]
    fn quarter_fill_bbox_invariants(script in ops()) {
        let pager = Pager::new(PagerConfig::with_block_size(128));
        run(
            BBox::new(
                pager,
                BBoxConfig::from_block_size(128).with_fill(FillPolicy::Quarter),
            ),
            &script,
            false,
        );
    }

    #[test]
    fn invariants_hold_after_every_single_op(script in ops()) {
        let pager = Pager::new(PagerConfig::with_block_size(128));
        run(BBox::new(pager, BBoxConfig::from_block_size(128)), &script, true);
    }
}
