//! Bulk subtree insertion and deletion for B-BOX (§5).
//!
//! * **Insert**: bulk-load the new subtree T′ (sharing the LIDF), "rip" the
//!   host tree along the insertion point for h′ levels, and splice T′ into
//!   the gap; all root-to-leaf paths keep the same length. Cost
//!   O(N′/B + B·log_B(N + N′)).
//! * **Delete**: all doomed labels form one contiguous range; rip from both
//!   endpoints until the paths meet, unlink the isolated subtrees, and
//!   repair the seams. Tree cost O(B·log_B N); LIDF reclamation is batched
//!   (O(N′/B) when the records are clustered, as after a bulk insert).

use crate::node::{ChildEntry, Node};
use crate::tree::BBox;
use boxes_lidf::Lid;
use boxes_pager::BlockId;
use std::collections::HashSet;

impl BBox {
    /// Height a bulk-built tree of `count` labels would have.
    fn bulk_height(&self, count: usize) -> usize {
        let mut nodes = count.div_ceil(self.config().leaf_capacity);
        let mut h = 1;
        while nodes > 1 {
            nodes = nodes.div_ceil(self.config().internal_capacity);
            h += 1;
        }
        h
    }

    /// Insert `n_tags` new labels immediately before `lid_old` as one bulk
    /// operation. Returns the new LIDs in document order.
    pub fn insert_subtree_before(&mut self, lid_old: Lid, n_tags: usize) -> Vec<Lid> {
        let _span = boxes_trace::OpSpan::op(self.trace_tag(), "subtree_insert");
        self.journaled(|t| t.insert_subtree_before_impl(lid_old, n_tags))
    }

    fn insert_subtree_before_impl(&mut self, lid_old: Lid, n_tags: usize) -> Vec<Lid> {
        if n_tags == 0 {
            return Vec::new();
        }
        let sub_height = self.bulk_height(n_tags);
        if sub_height > self.height() {
            // The incoming tree is taller than the host: fall back to
            // element-at-a-time insertion (only when N′ dwarfs N).
            return (0..n_tags).map(|_| self.insert_before(lid_old)).collect();
        }

        // Path from the insertion leaf to the root (level 0 first).
        let leaf_id = self.lidf_read_block(lid_old);
        let path = self.path_to_root(leaf_id);
        debug_assert_eq!(path.len(), self.height());

        // Bulk reorganizations restructure whole paths: conservatively
        // invalidate every cached label (§6 layer support).
        self.note_change_all();

        // Build T′ (appends its records to the shared LIDF).
        let (sub_root, built_height, new_lids) = self.build_forest(n_tags);
        debug_assert_eq!(built_height, sub_height);
        self.add_len(n_tags as i64);

        // Seam parts per ripped level: (block, subtree record count).
        let mut left_seam: Vec<Option<(BlockId, u64)>> = Vec::with_capacity(sub_height);
        let mut right_seam: Vec<Option<(BlockId, u64)>> = Vec::with_capacity(sub_height);

        // ---- rip level 0: split the insertion leaf at the point ----------
        {
            let (u_id, u_node) = &path[0];
            let mut u_node = u_node.clone();
            let pos = u_node.position_of_lid(lid_old);
            let right_lids: Vec<Lid> = u_node.lids_mut().split_off(pos);
            debug_assert!(!right_lids.is_empty(), "anchor is in the right part");
            if u_node.count() == 0 {
                // Whole leaf moves right: reuse the block, no LIDF updates.
                let n = right_lids.len() as u64;
                let reused = Node::Leaf {
                    parent: u_node.parent(),
                    lids: right_lids,
                };
                self.write_node(*u_id, &reused);
                left_seam.push(None);
                right_seam.push(Some((*u_id, n)));
            } else {
                let right_id = self.pager().alloc();
                let right = Node::Leaf {
                    parent: u_node.parent(),
                    lids: right_lids,
                };
                self.write_node(*u_id, &u_node);
                self.write_node(right_id, &right);
                let moved = right.lids().clone();
                self.lidf_repoint(&moved, right_id);
                left_seam.push(Some((*u_id, u_node.count() as u64)));
                right_seam.push(Some((right_id, right.count() as u64)));
            }
        }

        // ---- rip levels 1 .. sub_height-1 ---------------------------------
        for level in 1..sub_height {
            let (v_id, v_node) = &path[level];
            let q = v_node.position_of_child(path[level - 1].0);
            let entries = v_node.entries();
            let mut left_entries: Vec<ChildEntry> = entries[..q].to_vec();
            if let Some((id, size)) = left_seam[level - 1] {
                left_entries.push(ChildEntry { child: id, size });
            }
            let mut right_entries: Vec<ChildEntry> = Vec::new();
            if let Some((id, size)) = right_seam[level - 1] {
                right_entries.push(ChildEntry { child: id, size });
            }
            right_entries.extend_from_slice(&entries[q + 1..]);
            debug_assert!(!right_entries.is_empty());
            let lsum: u64 = left_entries.iter().map(|e| e.size).sum();
            let rsum: u64 = right_entries.iter().map(|e| e.size).sum();

            if left_entries.is_empty() {
                // Everything moves right; reuse v's block so untouched
                // children keep valid back-links.
                let node = Node::Internal {
                    parent: v_node.parent(),
                    entries: right_entries,
                };
                self.write_node(*v_id, &node);
                if let Some((id, _)) = right_seam[level - 1] {
                    self.set_parent(id, *v_id);
                }
                left_seam.push(None);
                right_seam.push(Some((*v_id, rsum)));
            } else {
                let left = Node::Internal {
                    parent: v_node.parent(),
                    entries: left_entries,
                };
                self.write_node(*v_id, &left);
                // The left seam child from below kept its old block, whose
                // back-link already names v. Nothing to fix on the left.
                let right_id = self.pager().alloc();
                let right = Node::Internal {
                    parent: v_node.parent(),
                    entries: right_entries,
                };
                self.write_node(right_id, &right);
                for e in right.entries() {
                    self.set_parent(e.child, right_id);
                }
                left_seam.push(Some((*v_id, lsum)));
                right_seam.push(Some((right_id, rsum)));
            }
        }

        // ---- splice at level sub_height -----------------------------------
        if sub_height == self.height() {
            // T′ is exactly as tall as the host: the rip ran through the
            // root, so a new root is created over [left part, T′, right
            // part] and the tree grows one level.
            let mut entries: Vec<ChildEntry> = Vec::with_capacity(3);
            if let Some((id, size)) = left_seam[sub_height - 1] {
                entries.push(ChildEntry { child: id, size });
            }
            entries.push(ChildEntry {
                child: sub_root,
                size: n_tags as u64,
            });
            if let Some((id, size)) = right_seam[sub_height - 1] {
                entries.push(ChildEntry { child: id, size });
            }
            let new_root = self.pager().alloc();
            let node = Node::Internal {
                parent: BlockId::INVALID,
                entries,
            };
            self.write_node(new_root, &node);
            for e in node.entries() {
                self.set_parent(e.child, new_root);
            }
            let h = self.height();
            self.set_root(new_root, h + 1);
            // Repair the seams and T′'s root, top-down.
            self.take_freed_log();
            let mut dead: HashSet<BlockId> = HashSet::new();
            for level in (0..sub_height).rev() {
                if level == sub_height - 1 && !dead.contains(&sub_root) {
                    self.repair_if_underfull(sub_root);
                    dead.extend(self.take_freed_log());
                }
                for (id, _) in [left_seam[level], right_seam[level]].into_iter().flatten() {
                    if dead.contains(&id) {
                        continue;
                    }
                    self.repair_if_underfull(id);
                    dead.extend(self.take_freed_log());
                }
            }
            return new_lids;
        }
        let (w_id, w_node) = &path[sub_height];
        let mut w = w_node.clone();
        let q = w.position_of_child(path[sub_height - 1].0);
        let mut replacement: Vec<ChildEntry> = Vec::with_capacity(3);
        if let Some((id, size)) = left_seam[sub_height - 1] {
            replacement.push(ChildEntry { child: id, size });
        }
        replacement.push(ChildEntry {
            child: sub_root,
            size: n_tags as u64,
        });
        if let Some((id, size)) = right_seam[sub_height - 1] {
            replacement.push(ChildEntry { child: id, size });
        }
        w.entries_mut().splice(q..=q, replacement);
        // New children of w need their back-links set; if w splits below,
        // split_internal re-fixes whichever half moved.
        self.set_parent(sub_root, *w_id);
        if let Some((id, _)) = right_seam[sub_height - 1] {
            if id != path[sub_height - 1].0 {
                self.set_parent(id, *w_id);
            }
        }
        if w.count() <= self.config().internal_capacity {
            self.write_node(*w_id, &w);
            if self.config().ordinal {
                self.bump_sizes(w.parent(), *w_id, n_tags as i64);
            }
        } else {
            self.split_internal(*w_id, w, n_tags as i64);
        }

        // ---- repair seams, top-down ---------------------------------------
        self.take_freed_log();
        let mut dead: HashSet<BlockId> = HashSet::new();
        for level in (0..sub_height).rev() {
            if level == sub_height - 1 && !dead.contains(&sub_root) {
                // T′'s root may be under-filled for a non-root position.
                self.repair_if_underfull(sub_root);
                dead.extend(self.take_freed_log());
            }
            for (id, _) in [left_seam[level], right_seam[level]].into_iter().flatten() {
                if dead.contains(&id) {
                    continue;
                }
                self.repair_if_underfull(id);
                dead.extend(self.take_freed_log());
            }
        }
        new_lids
    }

    /// Delete every label in the inclusive range spanned by `start_lid` and
    /// `end_lid` (the start/end tags of a subtree root), reclaiming tree
    /// blocks and LIDF records.
    pub fn delete_subtree(&mut self, start_lid: Lid, end_lid: Lid) {
        let _span = boxes_trace::OpSpan::op(self.trace_tag(), "subtree_delete");
        self.journaled(|t| t.delete_subtree_impl(start_lid, end_lid));
    }

    fn delete_subtree_impl(&mut self, start_lid: Lid, end_lid: Lid) {
        assert_ne!(start_lid, end_lid, "a subtree has two distinct endpoints");
        let leaf_s = self.lidf_read_block(start_lid);
        let leaf_e = self.lidf_read_block(end_lid);
        if leaf_s == leaf_e {
            self.delete_range_within_leaf(leaf_s, start_lid, end_lid);
            return;
        }

        self.note_change_all();
        let path_s = self.path_to_root(leaf_s);
        let path_e = self.path_to_root(leaf_e);
        let meet = (0..path_s.len())
            .find(|&i| path_s[i].0 == path_e[i].0)
            .expect("paths meet at the root");
        debug_assert!(meet >= 1);

        let mut freed_lids: Vec<Lid> = Vec::new();
        // Surviving boundary block per ripped level (None = became empty).
        let mut s_alive: Vec<Option<BlockId>> = Vec::with_capacity(meet);
        let mut e_alive: Vec<Option<BlockId>> = Vec::with_capacity(meet);
        // Records deleted so far inside each boundary subtree.
        let mut s_deleted: u64 = 0;
        let mut e_deleted: u64 = 0;

        // ---- level 0 --------------------------------------------------------
        {
            let (s_id, s_node) = &path_s[0];
            let mut s_node = s_node.clone();
            let ps = s_node.position_of_lid(start_lid);
            let doomed = s_node.lids_mut().split_off(ps);
            s_deleted += doomed.len() as u64;
            freed_lids.extend(doomed);
            if s_node.count() == 0 {
                self.free_node(*s_id);
                s_alive.push(None);
            } else {
                self.write_node(*s_id, &s_node);
                s_alive.push(Some(*s_id));
            }

            let (e_id, e_node) = &path_e[0];
            let mut e_node = e_node.clone();
            let pe = e_node.position_of_lid(end_lid);
            let survivors = e_node.lids_mut().split_off(pe + 1);
            let doomed = std::mem::replace(e_node.lids_mut(), survivors);
            e_deleted += doomed.len() as u64;
            freed_lids.extend(doomed);
            if e_node.count() == 0 {
                self.free_node(*e_id);
                e_alive.push(None);
            } else {
                self.write_node(*e_id, &e_node);
                e_alive.push(Some(*e_id));
            }
        }

        // ---- levels 1 .. meet-1 ----------------------------------------------
        for level in 1..meet {
            // Start side: children after the path child die entirely; the
            // path child's entry shrinks by what was deleted inside it (or
            // disappears if the child emptied).
            let (s_id, s_node) = &path_s[level];
            let mut s_node = s_node.clone();
            let q = s_node.position_of_child(path_s[level - 1].0);
            let deleted_below = s_deleted;
            let dropped = s_node.entries_mut().split_off(q + 1);
            for e in &dropped {
                s_deleted += self.free_whole_subtree(e.child, &mut freed_lids);
            }
            match s_alive[level - 1] {
                Some(_) => {
                    let last = s_node.entries_mut().last_mut().expect("path entry");
                    // Size fields are only maintained in ordinal mode (the
                    // subtraction is exact there); saturate so the garbage
                    // values of plain mode stay harmless.
                    last.size = last.size.saturating_sub(deleted_below);
                }
                None => {
                    s_node.entries_mut().pop();
                }
            }
            if s_node.count() == 0 {
                self.free_node(*s_id);
                s_alive.push(None);
            } else {
                self.write_node(*s_id, &s_node);
                s_alive.push(Some(*s_id));
            }

            // End side, mirrored: children before the path child die.
            let (e_id, e_node) = &path_e[level];
            let mut e_node = e_node.clone();
            let q = e_node.position_of_child(path_e[level - 1].0);
            let deleted_below = e_deleted;
            let kept = e_node.entries_mut().split_off(q);
            let dropped = std::mem::replace(e_node.entries_mut(), kept);
            for e in &dropped {
                e_deleted += self.free_whole_subtree(e.child, &mut freed_lids);
            }
            match e_alive[level - 1] {
                Some(_) => {
                    let first = e_node.entries_mut().first_mut().expect("path entry");
                    first.size = first.size.saturating_sub(deleted_below);
                }
                None => {
                    e_node.entries_mut().remove(0);
                }
            }
            if e_node.count() == 0 {
                self.free_node(*e_id);
                e_alive.push(None);
            } else {
                self.write_node(*e_id, &e_node);
                e_alive.push(Some(*e_id));
            }
        }

        // ---- the meet node ----------------------------------------------------
        let (m_id, m_node) = &path_s[meet];
        let mut m = m_node.clone();
        let qs = m.position_of_child(path_s[meet - 1].0);
        let qe = m.position_of_child(path_e[meet - 1].0);
        debug_assert!(qs < qe);
        // Children strictly between the two paths die entirely.
        let mut middle_deleted: u64 = 0;
        for e in &m.entries()[qs + 1..qe] {
            middle_deleted += self.free_whole_subtree(e.child, &mut freed_lids);
        }
        let mut survivors: Vec<ChildEntry> = m.entries()[..qs].to_vec();
        if s_alive[meet - 1].is_some() {
            let mut entry = m.entries()[qs];
            entry.size = entry.size.saturating_sub(s_deleted);
            survivors.push(entry);
        }
        if e_alive[meet - 1].is_some() {
            let mut entry = m.entries()[qe];
            entry.size = entry.size.saturating_sub(e_deleted);
            survivors.push(entry);
        }
        survivors.extend_from_slice(&m.entries()[qe + 1..]);
        *m.entries_mut() = survivors;

        let total_deleted = s_deleted + e_deleted + middle_deleted;
        debug_assert_eq!(total_deleted as usize, freed_lids.len());
        self.add_len(-(total_deleted as i64));

        if m.count() == 0 {
            // Possible only when the range covered everything under m (and
            // m is not the root: the root always retains labels outside any
            // subtree — at least the document root's own tags... but guard
            // anyway by rebuilding an empty leaf if the whole tree emptied).
            let m_parent = m.parent();
            self.free_node(*m_id);
            if m_parent.is_invalid() {
                // Entire tree deleted: reset to a fresh empty leaf.
                let root = self.pager().alloc();
                self.write_node(root, &Node::leaf(BlockId::INVALID));
                self.set_root(root, 1);
            } else {
                let mut p = self.read_node(m_parent);
                let pos = p.position_of_child(*m_id);
                p.entries_mut().remove(pos);
                self.write_node(m_parent, &p);
                if self.config().ordinal {
                    self.bump_sizes(p.parent(), m_parent, -(total_deleted as i64));
                }
                self.lidf().free_batch(freed_lids);
                self.finish_subtree_delete_repairs(m_parent, meet, &s_alive, &e_alive);
                return;
            }
            self.lidf().free_batch(freed_lids);
            return;
        }
        self.write_node(*m_id, &m);
        if self.config().ordinal {
            self.bump_sizes(m.parent(), *m_id, -(total_deleted as i64));
        }
        self.lidf().free_batch(freed_lids);
        self.finish_subtree_delete_repairs(*m_id, meet, &s_alive, &e_alive);
    }

    /// Top-down seam repair after a subtree delete: the meet node (or its
    /// parent) first, then both boundary chains from just below the meet
    /// down to the leaves.
    fn finish_subtree_delete_repairs(
        &mut self,
        top: BlockId,
        meet: usize,
        s_alive: &[Option<BlockId>],
        e_alive: &[Option<BlockId>],
    ) {
        self.take_freed_log();
        let mut dead: HashSet<BlockId> = HashSet::new();
        let repair = |this: &mut Self, id: BlockId, dead: &mut HashSet<BlockId>| {
            if !dead.contains(&id) {
                this.repair_if_underfull(id);
                dead.extend(this.take_freed_log());
            }
        };
        repair(self, top, &mut dead);
        for level in (0..meet).rev() {
            if let Some(id) = s_alive[level] {
                repair(self, id, &mut dead);
            }
            if let Some(id) = e_alive[level] {
                repair(self, id, &mut dead);
            }
        }
    }

    /// Delete an inclusive LID range that lies within a single leaf.
    fn delete_range_within_leaf(&mut self, leaf_id: BlockId, start: Lid, end: Lid) {
        let mut leaf = self.read_node(leaf_id);
        let ps = leaf.position_of_lid(start);
        let pe = leaf.position_of_lid(end);
        assert!(ps < pe, "subtree endpoints out of order");
        let doomed: Vec<Lid> = leaf.lids_mut().drain(ps..=pe).collect();
        let n = doomed.len() as i64;
        self.write_node(leaf_id, &leaf);
        self.lidf().free_batch(doomed);
        self.add_len(-n);
        if self.config().ordinal {
            self.bump_sizes(leaf.parent(), leaf_id, -n);
        }
        if !leaf.parent().is_invalid() && leaf.count() < self.config().min_leaf() {
            self.rebalance(leaf_id, leaf);
        }
    }

    /// Free a whole subtree's blocks, appending its LIDs to `out`; returns
    /// the number of records it held.
    fn free_whole_subtree(&mut self, id: BlockId, out: &mut Vec<Lid>) -> u64 {
        let node = self.read_node(id);
        let mut count = 0;
        match &node {
            Node::Leaf { lids, .. } => {
                count += lids.len() as u64;
                out.extend(lids.iter().copied());
            }
            Node::Internal { entries, .. } => {
                for e in entries {
                    count += self.free_whole_subtree(e.child, out);
                }
            }
        }
        self.free_node(id);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BBoxConfig;
    use crate::label::PathLabel;
    use boxes_pager::{Pager, PagerConfig};

    fn make(ordinal: bool) -> BBox {
        let pager = Pager::new(PagerConfig::with_block_size(64));
        let mut c = BBoxConfig::from_block_size(64);
        if ordinal {
            c = c.with_ordinal();
        }
        BBox::new(pager, c)
    }

    fn assert_order(b: &BBox, lids: &[Lid]) {
        let labels: Vec<PathLabel> = lids.iter().map(|&l| b.lookup(l)).collect();
        for (i, w) in labels.windows(2).enumerate() {
            assert!(
                w[0] < w[1],
                "order violated at {}: {:?} !< {:?}",
                i,
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn subtree_insert_in_the_middle() {
        for ordinal in [false, true] {
            let mut b = make(ordinal);
            let base = b.bulk_load(500);
            let sub = b.insert_subtree_before(base[250], 60);
            assert_eq!(b.len(), 560);
            let mut all = base[..250].to_vec();
            all.extend(&sub);
            all.extend(&base[250..]);
            assert_eq!(b.iter_lids(), all, "ordinal={ordinal}");
            assert_order(&b, &all);
            b.validate();
        }
    }

    #[test]
    fn subtree_insert_at_document_start() {
        let mut b = make(true);
        let base = b.bulk_load(300);
        let sub = b.insert_subtree_before(base[0], 40);
        let mut all = sub.clone();
        all.extend(&base);
        assert_eq!(b.iter_lids(), all);
        b.validate();
        for (i, &lid) in all.iter().enumerate().step_by(23) {
            assert_eq!(b.ordinal_of(lid), i as u64);
        }
    }

    #[test]
    fn subtree_insert_at_leaf_boundary() {
        let mut b = make(true);
        let base = b.bulk_load(700);
        // Leaf capacity 7 and full bulk leaves: index 7 starts a leaf.
        let sub = b.insert_subtree_before(base[7], 50);
        let mut all = base[..7].to_vec();
        all.extend(&sub);
        all.extend(&base[7..]);
        assert_eq!(b.iter_lids(), all);
        b.validate();
    }

    #[test]
    fn subtree_insert_tall_falls_back() {
        let mut b = make(false);
        let base = b.bulk_load(20);
        // 400 tags need a taller tree than the host: fallback path.
        let sub = b.insert_subtree_before(base[10], 400);
        assert_eq!(sub.len(), 400);
        assert_eq!(b.len(), 420);
        let mut all = base[..10].to_vec();
        all.extend(&sub);
        all.extend(&base[10..]);
        assert_order(&b, &all);
        b.validate();
    }

    #[test]
    fn subtree_insert_is_much_cheaper_than_loose_inserts() {
        let mut bulk = make(false);
        let base = bulk.bulk_load(5_000);
        let pager = bulk.pager().clone();
        let before = pager.stats();
        bulk.insert_subtree_before(base[2_500], 1_000);
        let bulk_cost = pager.stats().since(&before).total();
        bulk.validate();

        let mut loose = make(false);
        let base = loose.bulk_load(5_000);
        let pager = loose.pager().clone();
        let before = pager.stats();
        for _ in 0..1_000 {
            loose.insert_before(base[2_500]);
        }
        let loose_cost = pager.stats().since(&before).total();
        assert!(
            bulk_cost * 3 < loose_cost,
            "bulk {bulk_cost} vs element-at-a-time {loose_cost}"
        );
    }

    #[test]
    fn subtree_delete_middle_range() {
        for ordinal in [false, true] {
            let mut b = make(ordinal);
            let base = b.bulk_load(500);
            b.delete_subtree(base[100], base[399]);
            assert_eq!(b.len(), 200, "ordinal={ordinal}");
            let mut rest = base[..100].to_vec();
            rest.extend(&base[400..]);
            assert_eq!(b.iter_lids(), rest);
            assert_order(&b, &rest);
            b.validate();
        }
    }

    #[test]
    fn subtree_delete_within_one_leaf() {
        let mut b = make(true);
        let base = b.bulk_load(100);
        b.delete_subtree(base[1], base[3]);
        assert_eq!(b.len(), 97);
        let mut rest = vec![base[0]];
        rest.extend(&base[4..]);
        assert_eq!(b.iter_lids(), rest);
        b.validate();
    }

    #[test]
    fn subtree_delete_prefix_and_suffix() {
        let mut b = make(true);
        let base = b.bulk_load(400);
        b.delete_subtree(base[0], base[149]);
        b.validate();
        b.delete_subtree(base[300], base[399]);
        b.validate();
        assert_eq!(b.len(), 150);
        assert_eq!(b.iter_lids(), base[150..300].to_vec());
    }

    #[test]
    fn subtree_delete_almost_everything() {
        let mut b = make(true);
        let base = b.bulk_load(600);
        b.delete_subtree(base[1], base[598]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.iter_lids(), vec![base[0], base[599]]);
        assert_eq!(b.height(), 1, "tree collapsed to a leaf");
        b.validate();
    }

    #[test]
    fn subtree_delete_matches_loose_deletes() {
        let mut bulk = make(true);
        let a = bulk.bulk_load(300);
        bulk.delete_subtree(a[40], a[259]);
        bulk.validate();

        let mut loose = make(true);
        let b = loose.bulk_load(300);
        for &lid in &b[40..260] {
            loose.delete(lid);
        }
        loose.validate();

        assert_eq!(bulk.len(), loose.len());
        // Same logical document: position i survivors align.
        let la = bulk.iter_lids();
        let lb = loose.iter_lids();
        let pos_a: Vec<usize> = la
            .iter()
            .map(|l| a.iter().position(|x| x == l).unwrap())
            .collect();
        let pos_b: Vec<usize> = lb
            .iter()
            .map(|l| b.iter().position(|x| x == l).unwrap())
            .collect();
        assert_eq!(pos_a, pos_b);
    }

    #[test]
    fn subtree_delete_then_reuse_space() {
        let mut b = make(false);
        let base = b.bulk_load(1000);
        let blocks_full = b.pager().allocated_blocks();
        b.delete_subtree(base[10], base[989]);
        let blocks_after = b.pager().allocated_blocks();
        // Tree blocks are reclaimed; LIDF blocks persist (their slots are
        // recycled through the free list instead).
        assert!(
            blocks_after < blocks_full / 2 + 10,
            "blocks reclaimed: {blocks_full} -> {blocks_after}"
        );
        // Freed LIDs are recycled by later inserts.
        let n = b.insert_before(base[990]);
        assert!(n.0 < 1000, "recycled a freed LIDF slot: {n:?}");
        b.validate();
    }

    #[test]
    fn interleaved_subtree_ops_stay_consistent() {
        let mut b = make(true);
        let base = b.bulk_load(200);
        let s1 = b.insert_subtree_before(base[100], 80);
        b.validate();
        b.delete_subtree(s1[10], s1[69]);
        b.validate();
        let s2 = b.insert_subtree_before(base[150], 30);
        b.validate();
        assert_eq!(b.len(), 200 + 80 - 60 + 30);
        let all = b.iter_lids();
        assert_order(&b, &all);
        let _ = s2;
    }
}

#[cfg(test)]
mod repro {
    use crate::config::BBoxConfig;
    use crate::tree::BBox;
    use boxes_pager::{Pager, PagerConfig};

    #[test]
    fn single_record_subtree_insert_everywhere() {
        for n in [60usize, 100, 131, 140] {
            for at in (0..n).step_by(1) {
                let pager = Pager::new(PagerConfig::with_block_size(128));
                let mut b = BBox::new(pager, BBoxConfig::from_block_size(128));
                let order = b.bulk_load(n);
                b.insert_subtree_before(order[at], 1);
                let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.validate()));
                assert!(ok.is_ok(), "n={n} at={at}");
            }
        }
    }

    #[test]
    fn minimal_failing_sequence_from_proptest() {
        let pager = Pager::new(PagerConfig::with_block_size(128));
        let mut b = BBox::new(pager, BBoxConfig::from_block_size(128));
        let mut order = b.bulk_load(100);
        // Insert(45, 31)
        let at = 45 % order.len();
        let new = b.insert_subtree_before(order[at], 31);
        for (j, lid) in new.into_iter().enumerate() {
            order.insert(at + j, lid);
        }
        b.validate();
        // Insert(333, 1)
        let at = 333 % order.len();
        let new = b.insert_subtree_before(order[at], 1);
        for (j, lid) in new.into_iter().enumerate() {
            order.insert(at + j, lid);
        }
        b.validate();
        // Delete(125, 480) → indices wrapped
        let mut a = 125 % order.len();
        let mut c = 480 % order.len();
        if a > c {
            std::mem::swap(&mut a, &mut c);
        }
        if a != c {
            b.delete_subtree(order[a], order[c]);
            order.drain(a..=c);
        }
        b.validate();
        // Insert(0, 7)
        let at = 0;
        let new = b.insert_subtree_before(order[at], 7);
        for (j, lid) in new.into_iter().enumerate() {
            order.insert(at + j, lid);
        }
        b.validate();
    }
}
