//! Multi-component B-BOX labels.

use boxes_pager::codec::usize_to_u32;

/// A B-BOX label: the vector of 0-based child ordinals along the
/// root-to-leaf path, root component first (e.g. `(1, 3, 2)` in Figure 4).
///
/// Labels of records in the same tree always have the same number of
/// components (all leaves sit at the same depth), and compare
/// lexicographically. The paper's Theorem 5.1 bounds the encoded length at
/// `log N + 1 + ⌊(log N − 1)/(log B − 1)⌋` bits; [`PathLabel::bits`]
/// computes the exact encoded length for given fan-outs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathLabel(pub Vec<u32>);

impl PathLabel {
    /// Number of components (= height of the tree when issued).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the label has no components (never true for a real label).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Encoded bit length: the root component takes ⌈log₂ root_fanout⌉ bits,
    /// every other component ⌈log₂ fanout⌉ bits (Theorem 5.1's accounting).
    pub fn bits(&self, root_fanout: usize, fanout: usize) -> u32 {
        if self.0.is_empty() {
            return 0;
        }
        let root_bits = ceil_log2(root_fanout.max(2));
        let rest_bits = ceil_log2(fanout.max(2));
        let rest = usize_to_u32(self.0.len() - 1).unwrap_or(u32::MAX);
        root_bits + rest * rest_bits
    }

    /// Pack into a single `u64` when it fits in `total_bits ≤ 64` using the
    /// same per-component widths as [`PathLabel::bits`]. Packed labels of
    /// equal component count compare like the label itself.
    pub fn pack(&self, root_fanout: usize, fanout: usize) -> Option<u64> {
        let total = self.bits(root_fanout, fanout);
        if total > 64 || self.0.is_empty() {
            return None;
        }
        let rest_bits = ceil_log2(fanout.max(2));
        let mut packed = u64::from(self.0[0]);
        for &c in &self.0[1..] {
            debug_assert!(u64::from(c) < (1u64 << rest_bits));
            packed = (packed << rest_bits) | u64::from(c);
        }
        Some(packed)
    }
}

impl std::fmt::Debug for PathLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

pub(crate) fn ceil_log2(x: usize) -> u32 {
    debug_assert!(x >= 1);
    (usize::BITS - (x - 1).leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lbl(v: &[u32]) -> PathLabel {
        PathLabel(v.to_vec())
    }

    #[test]
    fn lexicographic_order() {
        assert!(lbl(&[1, 3, 2]) < lbl(&[1, 3, 3]));
        assert!(lbl(&[1, 3, 2]) < lbl(&[2, 0, 0]));
        assert!(lbl(&[0, 9, 9]) < lbl(&[1, 0, 0]));
        assert_eq!(lbl(&[1, 2]), lbl(&[1, 2]));
    }

    #[test]
    fn bit_accounting() {
        // root fanout 2 → 1 bit; fanout 16 → 4 bits per component.
        assert_eq!(lbl(&[1, 3, 2]).bits(2, 16), 1 + 2 * 4);
        assert_eq!(lbl(&[1]).bits(2, 16), 1);
        // Theorem 5.1 worst case: f_r = 2 maximizes the bound.
        assert!(lbl(&[1, 3, 2]).bits(2, 16) >= lbl(&[1, 3, 2]).bits(16, 16) - 3);
    }

    #[test]
    fn packing_preserves_order() {
        let a = lbl(&[0, 7, 3]);
        let b = lbl(&[1, 0, 0]);
        let pa = a.pack(2, 8).unwrap();
        let pb = b.pack(2, 8).unwrap();
        assert!(pa < pb);
    }

    #[test]
    fn packing_refuses_oversize() {
        let long = PathLabel(vec![1; 40]);
        assert!(long.pack(4, 256).is_none());
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
    }
}
