//! B-BOX configuration.

/// Minimum-fill policy for non-root nodes (§5).
///
/// The standard B-tree minimum of B/2 is recommended for insert-mostly
/// workloads; B/4 gives O(1) amortized cost under mixed insertions and
/// deletions (at the price of a taller tree and slightly longer labels).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillPolicy {
    /// Minimum fill B/2 — the classic constraint, default.
    Half,
    /// Minimum fill B/4 — churn-resistant variant.
    Quarter,
}

/// Structural parameters of a B-BOX.
#[derive(Clone, Copy, Debug)]
pub struct BBoxConfig {
    /// Maximum records per leaf (the paper's B − 1).
    pub leaf_capacity: usize,
    /// Maximum children per internal node (the paper's B − 1).
    pub internal_capacity: usize,
    /// Minimum-fill policy for non-root nodes.
    pub fill: FillPolicy,
    /// Maintain per-entry size fields for ordinal labeling (B-BOX-O).
    pub ordinal: bool,
}

impl BBoxConfig {
    /// Derive capacities from the block size using the on-disk node layout
    /// (see `node.rs`): leaves store 8-byte LIDs, internal nodes store
    /// 4-byte child pointers plus 8-byte size fields, after a 7-byte header.
    pub fn from_block_size(block_size: usize) -> Self {
        let payload = block_size - crate::node::HEADER_SIZE;
        let leaf_capacity = payload / crate::node::LEAF_ENTRY_SIZE;
        let internal_capacity = payload / crate::node::INTERNAL_ENTRY_SIZE;
        assert!(leaf_capacity >= 4, "block too small for a B-BOX leaf");
        assert!(internal_capacity >= 4, "block too small for a B-BOX node");
        Self {
            leaf_capacity,
            internal_capacity,
            fill: FillPolicy::Half,
            ordinal: false,
        }
    }

    /// Enable ordinal labeling support (B-BOX-O).
    pub fn with_ordinal(mut self) -> Self {
        self.ordinal = true;
        self
    }

    /// Use the B/4 minimum-fill policy.
    pub fn with_fill(mut self, fill: FillPolicy) -> Self {
        self.fill = fill;
        self
    }

    /// Minimum records in a non-root leaf.
    pub fn min_leaf(&self) -> usize {
        self.min_of(self.leaf_capacity)
    }

    /// Minimum children in a non-root internal node.
    pub fn min_internal(&self) -> usize {
        self.min_of(self.internal_capacity)
    }

    fn min_of(&self, cap: usize) -> usize {
        let m = match self.fill {
            FillPolicy::Half => cap / 2,
            FillPolicy::Quarter => cap / 4,
        };
        // A floor of 2 guarantees every underfull non-root node has a
        // sibling to borrow from or merge with.
        m.max(2)
    }

    /// Validate internal consistency (merge must always fit, etc.).
    pub fn validate(&self) {
        assert!(self.min_leaf() * 2 <= self.leaf_capacity + 1);
        assert!(self.min_internal() * 2 <= self.internal_capacity + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_follow_block_size() {
        let c = BBoxConfig::from_block_size(8192);
        assert_eq!(c.leaf_capacity, (8192 - 7) / 8);
        assert_eq!(c.internal_capacity, (8192 - 7) / 12);
        c.validate();
    }

    #[test]
    fn fill_policy_minimums() {
        let c = BBoxConfig::from_block_size(256);
        assert_eq!(c.min_leaf(), c.leaf_capacity / 2);
        let q = c.with_fill(FillPolicy::Quarter);
        assert_eq!(q.min_leaf(), c.leaf_capacity / 4);
        q.validate();
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_blocks_rejected() {
        BBoxConfig::from_block_size(24);
    }
}
