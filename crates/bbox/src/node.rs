//! On-disk B-BOX node layout.
//!
//! Every node starts with a 7-byte header:
//!
//! ```text
//! offset 0  u8   kind (0 = leaf, 1 = internal)
//! offset 1  u16  entry count
//! offset 3  u32  back-link: parent block id (INVALID for the root)
//! ```
//!
//! Leaf entries are 8-byte LIDs. Internal entries are a 4-byte child block
//! id plus an 8-byte size field (Figure 4's "optional size fields" — always
//! present in the layout, only *maintained* when ordinal support is on).

use boxes_lidf::Lid;
use boxes_pager::codec::{usize_to_u16, usize_to_u64};
use boxes_pager::{BlockId, Reader, Writer};

/// Bytes of the common node header.
pub const HEADER_SIZE: usize = 7;
/// Bytes per leaf entry (a LID).
pub const LEAF_ENTRY_SIZE: usize = 8;
/// Bytes per internal entry (child pointer + size field).
pub const INTERNAL_ENTRY_SIZE: usize = 12;

const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;

/// One child entry of an internal node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChildEntry {
    /// The child block.
    pub child: BlockId,
    /// Records below this child (maintained only in ordinal mode).
    pub size: u64,
}

/// Decoded B-BOX node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// Leaf: ordered list of LIDs.
    Leaf {
        /// Back-link to the parent (INVALID for the root).
        parent: BlockId,
        /// Record LIDs in document order.
        lids: Vec<Lid>,
    },
    /// Internal node: ordered list of children.
    Internal {
        /// Back-link to the parent (INVALID for the root).
        parent: BlockId,
        /// Children in document order.
        entries: Vec<ChildEntry>,
    },
}

impl Node {
    /// Empty leaf.
    pub fn leaf(parent: BlockId) -> Self {
        Node::Leaf {
            parent,
            lids: Vec::new(),
        }
    }

    /// Entry count.
    pub fn count(&self) -> usize {
        match self {
            Node::Leaf { lids, .. } => lids.len(),
            Node::Internal { entries, .. } => entries.len(),
        }
    }

    /// Back-link.
    pub fn parent(&self) -> BlockId {
        match self {
            Node::Leaf { parent, .. } | Node::Internal { parent, .. } => *parent,
        }
    }

    /// Set the back-link.
    pub fn set_parent(&mut self, p: BlockId) {
        match self {
            Node::Leaf { parent, .. } | Node::Internal { parent, .. } => *parent = p,
        }
    }

    /// Whether this is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Leaf LIDs (panics on internal nodes).
    pub fn lids(&self) -> &Vec<Lid> {
        match self {
            Node::Leaf { lids, .. } => lids,
            _ => panic!("expected a leaf"),
        }
    }

    /// Mutable leaf LIDs (panics on internal nodes).
    pub fn lids_mut(&mut self) -> &mut Vec<Lid> {
        match self {
            Node::Leaf { lids, .. } => lids,
            _ => panic!("expected a leaf"),
        }
    }

    /// Internal entries (panics on leaves).
    pub fn entries(&self) -> &Vec<ChildEntry> {
        match self {
            Node::Internal { entries, .. } => entries,
            _ => panic!("expected an internal node"),
        }
    }

    /// Mutable internal entries (panics on leaves).
    pub fn entries_mut(&mut self) -> &mut Vec<ChildEntry> {
        match self {
            Node::Internal { entries, .. } => entries,
            _ => panic!("expected an internal node"),
        }
    }

    /// Position of a LID in a leaf.
    pub fn position_of_lid(&self, lid: Lid) -> usize {
        self.lids()
            .iter()
            .position(|&l| l == lid)
            .unwrap_or_else(|| panic!("{lid:?} not in leaf"))
    }

    /// Position of a child in an internal node.
    pub fn position_of_child(&self, child: BlockId) -> usize {
        self.entries()
            .iter()
            .position(|e| e.child == child)
            .unwrap_or_else(|| panic!("{child:?} not a child of this node"))
    }

    /// Total of the size fields (ordinal mode).
    pub fn size_sum(&self) -> u64 {
        match self {
            Node::Leaf { lids, .. } => usize_to_u64(lids.len()),
            Node::Internal { entries, .. } => entries.iter().map(|e| e.size).sum(),
        }
    }

    /// Serialize into a block buffer.
    pub fn encode(&self, buf: &mut [u8]) {
        let mut w = Writer::new(buf);
        match self {
            Node::Leaf { parent, lids } => {
                w.u8(KIND_LEAF);
                w.u16(usize_to_u16(lids.len()).unwrap_or(u16::MAX));
                w.u32(parent.0);
                for lid in lids {
                    w.u64(lid.0);
                }
            }
            Node::Internal { parent, entries } => {
                w.u8(KIND_INTERNAL);
                w.u16(usize_to_u16(entries.len()).unwrap_or(u16::MAX));
                w.u32(parent.0);
                for e in entries {
                    w.u32(e.child.0);
                    w.u64(e.size);
                }
            }
        }
    }

    /// Deserialize from a block buffer.
    ///
    /// # Panics
    /// Panics on bytes that do not decode as a node; auditors use
    /// [`Node::try_decode`] instead.
    pub fn decode(buf: &[u8]) -> Self {
        match Self::try_decode(buf) {
            Ok(node) => node,
            Err(e) => panic!("corrupt B-BOX node: {e}"),
        }
    }

    /// Deserialize from a block buffer without panicking: structural
    /// problems (unknown kind byte, an entry count that overruns the block)
    /// come back as a description instead.
    pub fn try_decode(buf: &[u8]) -> Result<Self, String> {
        if buf.len() < HEADER_SIZE {
            return Err(format!(
                "{}-byte block is smaller than a node header",
                buf.len()
            ));
        }
        let mut r = Reader::new(buf);
        let kind = r.u8();
        let count = usize::from(r.u16());
        let parent = BlockId(r.u32());
        match kind {
            KIND_LEAF => {
                let need = HEADER_SIZE + count * LEAF_ENTRY_SIZE;
                if need > buf.len() {
                    return Err(format!(
                        "leaf entry count {count} needs {need} bytes, block has {}",
                        buf.len()
                    ));
                }
                let lids = (0..count).map(|_| Lid(r.u64())).collect();
                Ok(Node::Leaf { parent, lids })
            }
            KIND_INTERNAL => {
                let need = HEADER_SIZE + count * INTERNAL_ENTRY_SIZE;
                if need > buf.len() {
                    return Err(format!(
                        "internal entry count {count} needs {need} bytes, block has {}",
                        buf.len()
                    ));
                }
                let entries = (0..count)
                    .map(|_| ChildEntry {
                        child: BlockId(r.u32()),
                        size: r.u64(),
                    })
                    .collect();
                Ok(Node::Internal { parent, entries })
            }
            k => Err(format!("kind {k}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let node = Node::Leaf {
            parent: BlockId(3),
            lids: vec![Lid(10), Lid(20), Lid(30)],
        };
        let mut buf = vec![0u8; 64];
        node.encode(&mut buf);
        assert_eq!(Node::decode(&buf), node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = Node::Internal {
            parent: BlockId::INVALID,
            entries: vec![
                ChildEntry {
                    child: BlockId(1),
                    size: 100,
                },
                ChildEntry {
                    child: BlockId(2),
                    size: 250,
                },
            ],
        };
        let mut buf = vec![0u8; 64];
        node.encode(&mut buf);
        let back = Node::decode(&buf);
        assert_eq!(back, node);
        assert_eq!(back.size_sum(), 350);
        assert_eq!(back.position_of_child(BlockId(2)), 1);
    }

    #[test]
    fn entry_sizes_match_constants() {
        // A leaf with n lids must fit in HEADER + n * LEAF_ENTRY_SIZE.
        let node = Node::Leaf {
            parent: BlockId(0),
            lids: vec![Lid(1), Lid(2)],
        };
        let mut buf = vec![0u8; HEADER_SIZE + 2 * LEAF_ENTRY_SIZE];
        node.encode(&mut buf); // would panic on overflow
        let node = Node::Internal {
            parent: BlockId(0),
            entries: vec![ChildEntry {
                child: BlockId(1),
                size: 1,
            }],
        };
        let mut buf = vec![0u8; HEADER_SIZE + INTERNAL_ENTRY_SIZE];
        node.encode(&mut buf);
    }

    #[test]
    #[should_panic(expected = "not in leaf")]
    fn missing_lid_panics() {
        Node::leaf(BlockId(0)).position_of_lid(Lid(9));
    }
}
