//! Non-panicking audit of every §5 invariant (the `boxes-audit`
//! integration).
//!
//! Mirrors the checks the legacy `validate()` performed — back-link
//! agreement, fill bounds, root arity, size-field freshness, equal leaf
//! depths, LIDF agreement — but collects typed [`Violation`]s instead of
//! panicking on the first failure, and survives arbitrary on-disk
//! corruption: dangling child pointers, undecodable node bytes, and
//! reference cycles are reported rather than chased.

use crate::node::Node;
use crate::tree::BBox;
use boxes_audit::{AuditReport, Auditable, Violation, ViolationKind};
use boxes_lidf::Lid;
use boxes_pager::codec::usize_to_u64;
use boxes_pager::BlockId;
use std::collections::{HashMap, HashSet};

struct BAuditor<'a> {
    tree: &'a BBox,
    report: AuditReport,
    /// Every block reached, to catch child-pointer cycles and reuse.
    visited: HashSet<BlockId>,
    /// Which leaf each LID was first seen in, to catch duplicates.
    lid_owner: HashMap<Lid, BlockId>,
}

impl<'a> BAuditor<'a> {
    fn push(&mut self, v: Violation) {
        self.report.push(v);
    }

    /// Audit the subtree at `id`. Returns the subtree's actual
    /// (live count, depth in levels), or `None` when the node could not be
    /// read — the parent then skips its size/depth checks for this child
    /// instead of cascading bogus mismatches.
    fn audit_node(
        &mut self,
        id: BlockId,
        expect_parent: BlockId,
        is_root: bool,
        path: &str,
    ) -> Option<(u64, usize)> {
        if !self.visited.insert(id) {
            self.push(
                Violation::new(ViolationKind::ChildReuse, path)
                    .at_block(id.0)
                    .expected("each block referenced as a child once")
                    .actual("block reached again (shared child or cycle)"),
            );
            return None;
        }
        if !self.tree.pager().is_allocated(id) {
            self.push(
                Violation::new(ViolationKind::CorruptNode, path)
                    .at_block(id.0)
                    .expected("child pointer to an allocated block")
                    .actual("block is unallocated"),
            );
            return None;
        }
        let node = match Node::try_decode(&self.tree.pager().read(id)) {
            Ok(node) => node,
            Err(e) => {
                self.push(
                    Violation::new(ViolationKind::CorruptNode, path)
                        .at_block(id.0)
                        .expected("decodable B-BOX node")
                        .actual(e),
                );
                return None;
            }
        };
        if node.parent() != expect_parent {
            self.push(
                Violation::new(ViolationKind::BackLink, path)
                    .at_block(id.0)
                    .expected(format!("back-link to block {}", expect_parent.0))
                    .actual(format!("links block {}", node.parent().0)),
            );
        }
        let config = self.tree.config();
        match node {
            Node::Leaf { lids, .. } => {
                if lids.len() > config.leaf_capacity {
                    self.push(
                        Violation::new(ViolationKind::FillOverflow, path)
                            .at_block(id.0)
                            .expected(format!("≤ {} records", config.leaf_capacity))
                            .actual(lids.len()),
                    );
                }
                if !is_root && lids.len() < config.min_leaf() {
                    self.push(
                        Violation::new(ViolationKind::FillUnderflow, path)
                            .at_block(id.0)
                            .expected(format!("≥ {} records", config.min_leaf()))
                            .actual(lids.len()),
                    );
                }
                for (i, &lid) in lids.iter().enumerate() {
                    let rec_path = format!("{path}/rec[{i}]");
                    if let Some(&first) = self.lid_owner.get(&lid) {
                        self.push(
                            Violation::new(ViolationKind::DuplicateLid, rec_path)
                                .at_block(id.0)
                                .expected(format!("{lid:?} in exactly one leaf"))
                                .actual(format!("already in block {}", first.0)),
                        );
                        continue;
                    }
                    self.lid_owner.insert(lid, id);
                    if !self.tree.lidf_ref().is_live(lid) {
                        self.push(
                            Violation::new(ViolationKind::LidfMismatch, rec_path)
                                .at_block(id.0)
                                .expected(format!("live LIDF record for {lid:?}"))
                                .actual("slot freed or out of range"),
                        );
                    } else {
                        let pointed = self.tree.lidf_ref().read(lid).block;
                        if pointed != id {
                            self.push(
                                Violation::new(ViolationKind::LidfMismatch, rec_path)
                                    .at_block(id.0)
                                    .expected(format!("LIDF points {lid:?} at this leaf"))
                                    .actual(format!("points at block {}", pointed.0)),
                            );
                        }
                    }
                }
                Some((usize_to_u64(lids.len()), 1))
            }
            Node::Internal { entries, .. } => {
                if entries.len() > config.internal_capacity {
                    self.push(
                        Violation::new(ViolationKind::FillOverflow, path)
                            .at_block(id.0)
                            .expected(format!("≤ {} children", config.internal_capacity))
                            .actual(entries.len()),
                    );
                }
                if is_root && entries.len() < 2 {
                    self.push(
                        Violation::new(ViolationKind::RootArity, path)
                            .at_block(id.0)
                            .expected("internal root with ≥ 2 children")
                            .actual(entries.len()),
                    );
                } else if !is_root && entries.len() < config.min_internal() {
                    self.push(
                        Violation::new(ViolationKind::FillUnderflow, path)
                            .at_block(id.0)
                            .expected(format!("≥ {} children", config.min_internal()))
                            .actual(entries.len()),
                    );
                }
                let mut total = 0u64;
                let mut depth: Option<usize> = None;
                for (i, e) in entries.iter().enumerate() {
                    let child_path = format!("{path}/child[{i}]");
                    let Some((count, d)) = self.audit_node(e.child, id, false, &child_path) else {
                        // Unreadable child: fall back to the cached size so
                        // the ancestors' sums stay meaningful.
                        total += e.size;
                        continue;
                    };
                    if config.ordinal && e.size != count {
                        self.push(
                            Violation::new(ViolationKind::StaleSize, child_path.clone())
                                .at_block(id.0)
                                .expected(format!("size field {count} (actual live count)"))
                                .actual(e.size),
                        );
                    }
                    total += count;
                    match depth {
                        None => depth = Some(d),
                        Some(prev) if prev != d => {
                            self.push(
                                Violation::new(ViolationKind::DepthMismatch, child_path)
                                    .at_block(id.0)
                                    .expected(format!("leaf depth {prev} (as the left siblings)"))
                                    .actual(d),
                            );
                        }
                        Some(_) => {}
                    }
                }
                Some((total, depth.unwrap_or(0) + 1))
            }
        }
    }
}

impl Auditable for BBox {
    /// Audit every §5 invariant plus the underlying LIDF, without
    /// panicking even on corrupted blocks.
    fn audit(&self) -> AuditReport {
        let mut auditor = BAuditor {
            tree: self,
            report: AuditReport::new(),
            visited: HashSet::new(),
            lid_owner: HashMap::new(),
        };
        if let Some((count, depth)) =
            auditor.audit_node(self.root_id(), BlockId::INVALID, true, "bbox/root")
        {
            if count != self.len() {
                auditor.report.push(
                    Violation::new(ViolationKind::CountMismatch, "bbox")
                        .expected(format!("{} records (the len counter)", self.len()))
                        .actual(count),
                );
            }
            if depth != self.height() {
                auditor.report.push(
                    Violation::new(ViolationKind::DepthMismatch, "bbox")
                        .expected(format!("height {} (the height counter)", self.height()))
                        .actual(depth),
                );
            }
        }
        let mut report = auditor.report;
        report.merge(self.lidf_ref().audit());
        report
    }
}
