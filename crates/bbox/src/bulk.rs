//! O(N/B) bulk loading (§5).
//!
//! With a single pass, leaves are produced in document order and the upper
//! levels are assembled bottom-up; every node is written exactly once and
//! the LIDF is appended sequentially. Underflow can only appear at the right
//! edge of each level and is repaired by balancing the last two siblings —
//! equivalent to the paper's "borrow from or merge with left siblings".

use crate::node::{ChildEntry, Node};
use crate::tree::BBox;
use boxes_lidf::{BlockPtrRecord, Lid};
use boxes_pager::codec::{usize_to_i64, usize_to_u64};
use boxes_pager::BlockId;

/// Split `total` entries into chunks of at most `cap`, each at least `min`
/// (except a single chunk when `total < min`). Greedy full chunks with the
/// final two rebalanced.
pub(crate) fn chunk_sizes(total: usize, cap: usize, min: usize) -> Vec<usize> {
    debug_assert!(min * 2 <= cap + 1);
    if total == 0 {
        return Vec::new();
    }
    if total <= cap {
        return vec![total];
    }
    let mut sizes = Vec::with_capacity(total / cap + 1);
    let full = total / cap;
    let rem = total % cap;
    for _ in 0..full {
        sizes.push(cap);
    }
    if rem > 0 {
        if rem >= min {
            sizes.push(rem);
        } else {
            // Rebalance the tail: split (cap + rem) into two legal chunks.
            let tail = cap + rem;
            sizes.pop();
            sizes.push(tail.div_ceil(2));
            sizes.push(tail / 2);
        }
    }
    sizes
}

impl BBox {
    /// Bulk load `count` labels in document order into an empty B-BOX.
    /// O(N/B) I/Os. Returns the LIDs in document order.
    pub fn bulk_load(&mut self, count: usize) -> Vec<Lid> {
        let _span = boxes_trace::OpSpan::op(self.trace_tag(), "bulk_load");
        self.journaled(|t| t.bulk_load_impl(count))
    }

    fn bulk_load_impl(&mut self, count: usize) -> Vec<Lid> {
        assert!(self.is_empty(), "bulk_load on a non-empty B-BOX");
        if count == 0 {
            return Vec::new();
        }
        let old_root = self.root_id();
        self.pager().free(old_root);
        let (root, height, lids) = self.build_forest(count);
        self.set_root(root, height);
        self.add_len(usize_to_i64(count));
        lids
    }

    /// Build a standalone, fully valid B-BOX subtree holding `count` fresh
    /// labels (appended to this tree's LIDF). Returns (root block, height,
    /// lids in order). The root's back-link is INVALID; callers splice it.
    pub(crate) fn build_forest(&mut self, count: usize) -> (BlockId, usize, Vec<Lid>) {
        assert!(count > 0);
        let leaf_sizes = chunk_sizes(count, self.config().leaf_capacity, self.config().min_leaf());
        // Allocate leaf blocks up front so LIDF records can be appended
        // sequentially with the right pointers.
        let leaf_ids: Vec<BlockId> = leaf_sizes.iter().map(|_| self.pager().alloc()).collect();
        let mut records = Vec::with_capacity(count);
        for (&id, &size) in leaf_ids.iter().zip(&leaf_sizes) {
            for _ in 0..size {
                records.push(BlockPtrRecord::new(id));
            }
        }
        let lids = self.lidf().bulk_append(&records);

        // Group lids into leaves (contents held in memory until the parent
        // is known, so each block is written exactly once).
        let mut level: Vec<(BlockId, Node, u64)> = Vec::with_capacity(leaf_ids.len());
        let mut cursor = 0;
        for (&id, &size) in leaf_ids.iter().zip(&leaf_sizes) {
            let chunk = lids[cursor..cursor + size].to_vec();
            cursor += size;
            level.push((
                id,
                Node::Leaf {
                    parent: BlockId::INVALID,
                    lids: chunk,
                },
                usize_to_u64(size),
            ));
        }

        let mut height = 1;
        while level.len() > 1 {
            let sizes = chunk_sizes(
                level.len(),
                self.config().internal_capacity,
                self.config().min_internal(),
            );
            let mut next: Vec<(BlockId, Node, u64)> = Vec::with_capacity(sizes.len());
            let mut cursor = 0;
            for &size in &sizes {
                let id = self.pager().alloc();
                let group = &mut level[cursor..cursor + size];
                cursor += size;
                let mut entries = Vec::with_capacity(size);
                let mut total = 0;
                for (child_id, child_node, child_size) in group.iter_mut() {
                    child_node.set_parent(id);
                    entries.push(ChildEntry {
                        child: *child_id,
                        size: *child_size,
                    });
                    total += *child_size;
                }
                next.push((
                    id,
                    Node::Internal {
                        parent: BlockId::INVALID,
                        entries,
                    },
                    total,
                ));
            }
            // Children now know their parents: persist them.
            for (id, node, _) in &level {
                self.write_node(*id, node);
            }
            level = next;
            height += 1;
        }
        let (root, node, _) = level.pop().expect("at least one node");
        self.write_node(root, &node);
        (root, height, lids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BBoxConfig;
    use boxes_pager::{Pager, PagerConfig};

    fn make(bs: usize, ordinal: bool) -> BBox {
        let pager = Pager::new(PagerConfig::with_block_size(bs));
        let mut c = BBoxConfig::from_block_size(bs);
        if ordinal {
            c = c.with_ordinal();
        }
        BBox::new(pager, c)
    }

    #[test]
    fn chunking_respects_bounds() {
        for total in 1..200 {
            for (cap, min) in [(7, 3), (4, 2), (10, 5)] {
                let sizes = chunk_sizes(total, cap, min);
                assert_eq!(sizes.iter().sum::<usize>(), total);
                for (i, &s) in sizes.iter().enumerate() {
                    assert!(s <= cap, "total={total} cap={cap}: chunk {s} too big");
                    if total >= min {
                        assert!(
                            s >= min,
                            "total={total} cap={cap} min={min}: chunk {i}={s} too small in {sizes:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bulk_load_small() {
        let mut b = make(64, true);
        let lids = b.bulk_load(5);
        assert_eq!(b.len(), 5);
        assert_eq!(b.height(), 1);
        assert_eq!(b.iter_lids(), lids);
        b.validate();
    }

    #[test]
    fn bulk_load_multi_level() {
        let mut b = make(64, true); // leaf cap 7, internal cap 4
        let lids = b.bulk_load(1000);
        assert!(b.height() >= 4);
        assert_eq!(b.iter_lids(), lids);
        b.validate();
        for (i, &lid) in lids.iter().enumerate().step_by(97) {
            assert_eq!(b.ordinal_of(lid), i as u64);
        }
    }

    #[test]
    fn bulk_load_is_linear_io() {
        let mut b = make(256, false);
        let pager = b.pager().clone();
        let before = pager.stats();
        b.bulk_load(10_000);
        let cost = pager.stats().since(&before);
        let blocks = pager.allocated_blocks() as u64;
        assert!(
            cost.total() <= 3 * blocks + 10,
            "bulk load must be O(N/B): {cost:?} for {blocks} blocks"
        );
        b.validate();
    }

    #[test]
    fn bulk_then_update() {
        let mut b = make(64, false);
        let mut lids = b.bulk_load(100);
        // Bulk-loaded leaves are full: the first insert must split.
        let before = b.counters().leaf_splits;
        let new = b.insert_before(lids[50]);
        assert_eq!(b.counters().leaf_splits, before + 1);
        lids.insert(50, new);
        for _ in 0..50 {
            let n = b.insert_before(lids[50]);
            lids.insert(50, n);
        }
        let labels: Vec<_> = lids.iter().map(|&l| b.lookup(l)).collect();
        for w in labels.windows(2) {
            assert!(w[0] < w[1]);
        }
        b.validate();
    }

    #[test]
    fn bulk_load_exact_boundaries() {
        // Counts that hit leaf capacity multiples exactly.
        for count in [7, 14, 28, 49] {
            let mut b = make(64, true);
            let lids = b.bulk_load(count);
            assert_eq!(lids.len(), count);
            b.validate();
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn double_bulk_load_panics() {
        let mut b = make(64, false);
        b.bulk_load(10);
        b.bulk_load(10);
    }
}
