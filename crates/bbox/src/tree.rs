//! The B-BOX tree: lookup, compare, insert, delete (§5).

use crate::config::BBoxConfig;
use crate::label::{ceil_log2, PathLabel};
use crate::node::{ChildEntry, Node};
use boxes_lidf::{BlockPtrRecord, Lid, Lidf};
use boxes_pager::{BlockId, SharedPager};
use boxes_trace::OpSpan;
use std::cmp::Ordering;

/// Trace scheme tag for a B-BOX with this configuration (mirrors
/// `LabelingScheme::name`).
pub(crate) fn tag_for(config: &BBoxConfig) -> &'static str {
    if config.ordinal {
        "B-BOX-O"
    } else {
        "B-BOX"
    }
}

/// Event counters exposed for the experiments (the "steps" visible in
/// Figure 6 correspond to these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BBoxCounters {
    /// Leaf splits.
    pub leaf_splits: u64,
    /// Internal-node splits.
    pub internal_splits: u64,
    /// Merges (leaf or internal).
    pub merges: u64,
    /// Borrow-from-sibling events.
    pub borrows: u64,
}

/// A structural reorganization note for the §6 caching layer: which label
/// prefixes a split/merge/borrow invalidated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BBoxChange {
    /// The node at `prefix` gained or lost a child at position `j`: labels
    /// `prefix · k · …` with k ≥ j are invalid (§6 case 1).
    ChildrenFrom {
        /// Path components of the reorganized node (empty for the root).
        prefix: Vec<u32>,
        /// First affected child position.
        j: u32,
    },
    /// The boundary between children `j` and `j + 1` of the node at
    /// `prefix` moved: labels with next component j or j + 1 are invalid
    /// (§6 case 2).
    Boundary {
        /// Path components of the node whose children rebalanced.
        prefix: Vec<u32>,
        /// Left child of the shifted boundary.
        j: u32,
    },
}

/// The Back-linked B-tree for Ordering XML.
pub struct BBox {
    pager: SharedPager,
    lidf: Lidf<BlockPtrRecord>,
    config: BBoxConfig,
    root: BlockId,
    /// Number of levels; 1 means the root is a leaf.
    height: usize,
    len: u64,
    counters: BBoxCounters,
    /// Blocks freed since the last [`BBox::take_freed_log`] — lets the
    /// subtree-repair passes detect seam nodes consumed by a merge.
    freed_log: Vec<BlockId>,
    /// Structural reorganizations since [`BBox::take_changes`] (§6 support).
    changes: Vec<BBoxChange>,
}

impl BBox {
    /// Create an empty B-BOX on the shared pager.
    pub fn new(pager: SharedPager, config: BBoxConfig) -> Self {
        config.validate();
        let _span = OpSpan::op(tag_for(&config), "open");
        let txn = pager.txn();
        let lidf = Lidf::new(pager.clone());
        let root = pager.alloc();
        let node = Node::leaf(BlockId::INVALID);
        let this = Self {
            pager,
            lidf,
            config,
            root,
            height: 1,
            len: 0,
            counters: BBoxCounters::default(),
            freed_log: Vec::new(),
            changes: Vec::new(),
        };
        this.write_node(root, &node);
        this.pager.txn_meta("bbox", || this.save_state());
        this.pager.txn_meta("lidf", || this.lidf.save_state());
        txn.commit();
        this
    }

    /// Reconstruct a B-BOX from its `"bbox"` and `"lidf"` state blobs over a
    /// recovered pager. `config` must match the build-time configuration.
    /// Transient observability state — [`BBoxCounters`], the freed-block log,
    /// and the §6 change log — restarts empty; the caching layer realigns
    /// its mod-log to the recovered checkpoint timestamp instead.
    pub fn reopen(pager: SharedPager, config: BBoxConfig, state: &[u8], lidf_state: &[u8]) -> Self {
        let _span = OpSpan::op(tag_for(&config), "open");
        config.validate();
        let lidf = Lidf::reopen(pager.clone(), lidf_state);
        let mut r = boxes_pager::Reader::new(state);
        let root = BlockId(r.u32());
        let height = boxes_pager::codec::u64_to_index(r.u64());
        let len = r.u64();
        assert!(pager.is_allocated(root), "recovered B-BOX root unallocated");
        Self {
            pager,
            lidf,
            config,
            root,
            height,
            len,
            counters: BBoxCounters::default(),
            freed_log: Vec::new(),
            changes: Vec::new(),
        }
    }

    /// Serialize the in-memory header — everything [`BBox::reopen`] needs
    /// beyond the blocks themselves and the LIDF's own `"lidf"` blob.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = boxes_pager::VecWriter::new();
        w.u32(self.root.0);
        w.u64(boxes_pager::codec::usize_to_u64(self.height));
        w.u64(self.len);
        w.into_bytes()
    }

    /// Run `f` as one journaled operation: all blocks it dirties (splits,
    /// merges, borrows, subtree grafts) commit as a single atomic WAL
    /// record carrying the refreshed `"bbox"` state blob.
    pub(crate) fn trace_tag(&self) -> &'static str {
        tag_for(&self.config)
    }

    pub(crate) fn journaled<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        let txn = self.pager.txn();
        let out = f(self);
        let state = self.save_state();
        self.pager.txn_meta("bbox", || state);
        txn.commit();
        out
    }

    // ----- node I/O ------------------------------------------------------

    pub(crate) fn read_node(&self, id: BlockId) -> Node {
        Node::decode(&self.pager.read(id))
    }

    pub(crate) fn write_node(&self, id: BlockId, node: &Node) {
        let mut buf = vec![0u8; self.pager.block_size()].into_boxed_slice();
        node.encode(&mut buf);
        self.pager.write(id, &buf);
    }

    /// Rewrite a child's back-link (2 I/Os — the cost §5 charges for every
    /// relocated internal entry).
    pub(crate) fn set_parent(&self, child: BlockId, parent: BlockId) {
        let mut node = self.read_node(child);
        node.set_parent(parent);
        self.write_node(child, &node);
    }

    /// Free a tree block, remembering it in the freed log.
    pub(crate) fn free_node(&mut self, id: BlockId) {
        self.freed_log.push(id);
        self.pager.free(id);
    }

    /// Drain the freed-block log (subtree-repair bookkeeping).
    pub(crate) fn take_freed_log(&mut self) -> Vec<BlockId> {
        std::mem::take(&mut self.freed_log)
    }

    /// Conservative note: everything cached is invalid (bulk subtree ops).
    pub(crate) fn note_change_all(&mut self) {
        self.changes.push(BBoxChange::ChildrenFrom {
            prefix: Vec::new(),
            j: 0,
        });
    }

    /// Drain the structural-change notes accumulated since the last call.
    /// The §6 caching layer turns each into an `invalidated` log entry;
    /// they are empty for the (vastly more common) leaf-local updates.
    pub fn take_changes(&mut self) -> Vec<BBoxChange> {
        std::mem::take(&mut self.changes)
    }

    /// Path components of a node (empty for the root): the shared prefix of
    /// every label below it. Costs one read per level above the node.
    pub(crate) fn path_components_of(&self, id: BlockId) -> Vec<u32> {
        let mut components = Vec::new();
        let mut cur = id;
        loop {
            let node = self.read_node(cur);
            let parent = node.parent();
            if parent.is_invalid() {
                break;
            }
            let p = self.read_node(parent);
            components.push(p.position_of_child(cur) as u32);
            cur = parent;
        }
        components.reverse();
        components
    }

    /// The anchor's full label plus the number of records on its leaf —
    /// the `prefix`, position and `hi_last` of §6's B-BOX shift entries.
    pub fn leaf_extent(&self, lid: Lid) -> (PathLabel, u32) {
        let leaf_id = self.lidf.read(lid).block;
        let node = self.read_node(leaf_id);
        let count = node.lids().len() as u32;
        let mut components = vec![node.position_of_lid(lid) as u32];
        let mut cur = leaf_id;
        let mut parent = node.parent();
        while !parent.is_invalid() {
            let p = self.read_node(parent);
            components.push(p.position_of_child(cur) as u32);
            cur = parent;
            parent = p.parent();
        }
        components.reverse();
        (PathLabel(components), count)
    }

    // ----- accessors ------------------------------------------------------

    /// Number of labels stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the structure holds no labels.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height in levels (1 = the root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Configuration in effect.
    pub fn config(&self) -> &BBoxConfig {
        &self.config
    }

    /// Event counters.
    pub fn counters(&self) -> BBoxCounters {
        self.counters
    }

    /// Shared pager handle.
    pub fn pager(&self) -> &SharedPager {
        &self.pager
    }

    /// Whether `lid` currently names a live label (one LIDF slot read).
    pub fn is_live(&self, lid: Lid) -> bool {
        self.lidf.is_live(lid)
    }

    pub(crate) fn root_id(&self) -> BlockId {
        self.root
    }

    pub(crate) fn lidf_ref(&self) -> &Lidf<BlockPtrRecord> {
        &self.lidf
    }

    pub(crate) fn set_root(&mut self, root: BlockId, height: usize) {
        self.root = root;
        self.height = height;
    }

    pub(crate) fn lidf(&mut self) -> &mut Lidf<BlockPtrRecord> {
        &mut self.lidf
    }

    pub(crate) fn add_len(&mut self, delta: i64) {
        self.len = (self.len as i64 + delta) as u64;
    }

    /// Block currently holding the BOX record of `lid` (one LIDF I/O).
    pub(crate) fn lidf_read_block(&self, lid: Lid) -> BlockId {
        self.lidf.read(lid).block
    }

    /// Re-point a batch of LIDF records at `block` (grouped I/Os).
    pub(crate) fn lidf_repoint(&mut self, lids: &[Lid], block: BlockId) {
        self.lidf.write_batch(
            lids.iter()
                .map(|&l| (l, BlockPtrRecord::new(block)))
                .collect(),
        );
    }

    /// Path from a leaf block to the root: `[(block, decoded node)]`,
    /// level 0 first. Costs one read per level.
    pub(crate) fn path_to_root(&self, leaf: BlockId) -> Vec<(BlockId, Node)> {
        let mut path = Vec::with_capacity(self.height);
        let mut cur = leaf;
        loop {
            let node = self.read_node(cur);
            let parent = node.parent();
            path.push((cur, node));
            if parent.is_invalid() {
                return path;
            }
            cur = parent;
        }
    }

    /// Bring a node back within its minimum-fill bound if needed. Handles
    /// the root specially (an internal root collapses while it has a single
    /// child). Used by the subtree-splice repair passes.
    pub(crate) fn repair_if_underfull(&mut self, id: BlockId) {
        if id == self.root {
            // The root has no fill minimum; it only collapses.
            loop {
                let node = self.read_node(self.root);
                if node.is_leaf() || node.count() != 1 {
                    return;
                }
                self.changes.push(BBoxChange::ChildrenFrom {
                    prefix: Vec::new(),
                    j: 0,
                });
                let only = node.entries()[0].child;
                let root = self.root;
                self.free_node(root);
                self.set_parent(only, BlockId::INVALID);
                self.root = only;
                self.height -= 1;
            }
        }
        let node = self.read_node(id);
        let min = if node.is_leaf() {
            self.config.min_leaf()
        } else {
            self.config.min_internal()
        };
        if node.count() < min {
            self.rebalance(id, node);
        }
    }

    /// Maximum bits a label can currently require: ⌈log₂ f_r⌉ for the root
    /// component plus full-width components below (Theorem 5.1 accounting).
    /// Reads the root (one I/O).
    pub fn label_bits(&self) -> u32 {
        let root = self.read_node(self.root);
        let f_r = root.count().max(2);
        if self.height == 1 {
            return ceil_log2(f_r);
        }
        let internal = ceil_log2(self.config.internal_capacity);
        let leaf = ceil_log2(self.config.leaf_capacity);
        ceil_log2(f_r) + (self.height as u32 - 2) * internal + leaf
    }

    // ----- lookup ---------------------------------------------------------

    /// Reconstruct the label of `lid` bottom-up through the back-links
    /// (Theorem 5.2: O(log_B N) I/Os, plus one for the LIDF).
    pub fn lookup(&self, lid: Lid) -> PathLabel {
        let _span = OpSpan::op(self.trace_tag(), "lookup");
        let leaf_id = self.lidf.read(lid).block;
        let node = self.read_node(leaf_id);
        let mut components = vec![node.position_of_lid(lid) as u32];
        let mut cur = leaf_id;
        let mut parent = node.parent();
        while !parent.is_invalid() {
            let p = self.read_node(parent);
            components.push(p.position_of_child(cur) as u32);
            cur = parent;
            parent = p.parent();
        }
        components.reverse();
        PathLabel(components)
    }

    /// Ordinal label of `lid` (requires ordinal mode): the number of records
    /// preceding it in document order. Same O(log_B N) bottom-up walk,
    /// accumulating the size fields left of the path (Figure 4's example:
    /// 2 + (4+4+5) + 20 = 35).
    pub fn ordinal_of(&self, lid: Lid) -> u64 {
        assert!(
            self.config.ordinal,
            "ordinal lookup requires BBoxConfig::with_ordinal"
        );
        let _span = OpSpan::op(self.trace_tag(), "ordinal");
        let leaf_id = self.lidf.read(lid).block;
        let node = self.read_node(leaf_id);
        let mut count = node.position_of_lid(lid) as u64;
        let mut cur = leaf_id;
        let mut parent = node.parent();
        while !parent.is_invalid() {
            let p = self.read_node(parent);
            let pos = p.position_of_child(cur);
            count += p.entries()[..pos].iter().map(|e| e.size).sum::<u64>();
            cur = parent;
            parent = p.parent();
        }
        count
    }

    /// Compare two labels by walking both paths bottom-up only as far as
    /// their lowest common ancestor — often far cheaper than two lookups
    /// when the labels are close in document order.
    pub fn compare(&self, a: Lid, b: Lid) -> Ordering {
        let _span = OpSpan::op(self.trace_tag(), "compare");
        if a == b {
            return Ordering::Equal;
        }
        let leaf_a = self.lidf.read(a).block;
        let leaf_b = self.lidf.read(b).block;
        if leaf_a == leaf_b {
            let n = self.read_node(leaf_a);
            return n.position_of_lid(a).cmp(&n.position_of_lid(b));
        }
        let mut cur_a = leaf_a;
        let mut cur_b = leaf_b;
        loop {
            let na = self.read_node(cur_a);
            let nb = self.read_node(cur_b);
            let pa = na.parent();
            let pb = nb.parent();
            assert!(
                !pa.is_invalid() && !pb.is_invalid(),
                "labels from different trees"
            );
            if pa == pb {
                let p = self.read_node(pa);
                return p.position_of_child(cur_a).cmp(&p.position_of_child(cur_b));
            }
            cur_a = pa;
            cur_b = pb;
        }
    }

    // ----- insertion ------------------------------------------------------

    /// Insert the very first label into an empty B-BOX.
    pub fn insert_first(&mut self) -> Lid {
        let _span = OpSpan::op(self.trace_tag(), "insert");
        self.journaled(|t| t.insert_first_impl())
    }

    fn insert_first_impl(&mut self) -> Lid {
        assert!(self.is_empty(), "insert_first on a non-empty B-BOX");
        let lid = self.lidf.alloc(BlockPtrRecord::new(self.root));
        let mut node = self.read_node(self.root);
        node.lids_mut().push(lid);
        self.write_node(self.root, &node);
        self.len = 1;
        lid
    }

    /// Insert a new label immediately before `lid_old`. Returns the new LID.
    pub fn insert_before(&mut self, lid_old: Lid) -> Lid {
        let _span = OpSpan::op(self.trace_tag(), "insert");
        self.journaled(|t| t.insert_before_impl(lid_old))
    }

    fn insert_before_impl(&mut self, lid_old: Lid) -> Lid {
        let leaf_id = self.lidf.read(lid_old).block;
        let leaf = self.read_node(leaf_id);
        let pos = leaf.position_of_lid(lid_old);
        let new_lid = self.lidf.alloc(BlockPtrRecord::new(leaf_id));
        self.insert_at(leaf_id, leaf, pos, new_lid);
        self.len += 1;
        new_lid
    }

    /// Insert a new element (start and end labels) before the tag labeled
    /// `lid`, per §3: end label first, then start label before it.
    pub fn insert_element_before(&mut self, lid: Lid) -> (Lid, Lid) {
        let _span = OpSpan::op(self.trace_tag(), "insert_element");
        self.journaled(|t| {
            let end = t.insert_before_impl(lid);
            let start = t.insert_before_impl(end);
            (start, end)
        })
    }

    pub(crate) fn insert_at(&mut self, leaf_id: BlockId, mut leaf: Node, pos: usize, new_lid: Lid) {
        leaf.lids_mut().insert(pos, new_lid);
        if leaf.count() <= self.config.leaf_capacity {
            self.write_node(leaf_id, &leaf);
            if self.config.ordinal {
                self.bump_sizes(leaf.parent(), leaf_id, 1);
            }
            return;
        }
        // Split: the first half of the records remain on the old leaf while
        // the rest move to a new leaf (whose LIDF records must be updated).
        let _phase = OpSpan::phase("split");
        self.counters.leaf_splits += 1;
        let n = leaf.count();
        let right_lids = leaf.lids_mut().split_off(n.div_ceil(2));
        let right_id = self.pager.alloc();
        let right = Node::Leaf {
            parent: leaf.parent(),
            lids: right_lids,
        };
        self.write_node(leaf_id, &leaf);
        self.write_node(right_id, &right);
        self.lidf.write_batch(
            right
                .lids()
                .iter()
                .map(|&l| (l, BlockPtrRecord::new(right_id)))
                .collect(),
        );
        let left_size = leaf.count() as u64;
        let right_size = right.count() as u64;
        self.insert_child_after(leaf.parent(), leaf_id, right_id, left_size, right_size, 1);
    }

    /// After splitting `left_child`, register `new_child` immediately after
    /// it under `parent_id` (allocating a new root when the split node was
    /// the root). `left_size`/`new_size` are the refreshed size fields;
    /// `delta` is how many records the whole operation added below this
    /// point (1 for a single insert, N' for a subtree splice) and is applied
    /// to the size fields of the untouched ancestors above.
    pub(crate) fn insert_child_after(
        &mut self,
        parent_id: BlockId,
        left_child: BlockId,
        new_child: BlockId,
        left_size: u64,
        new_size: u64,
        delta: i64,
    ) {
        if parent_id.is_invalid() {
            // The split node was the root: grow the tree. Every label gains
            // a component, so everything cached is invalid.
            self.changes.push(BBoxChange::ChildrenFrom {
                prefix: Vec::new(),
                j: 0,
            });
            let new_root = self.pager.alloc();
            let node = Node::Internal {
                parent: BlockId::INVALID,
                entries: vec![
                    ChildEntry {
                        child: left_child,
                        size: left_size,
                    },
                    ChildEntry {
                        child: new_child,
                        size: new_size,
                    },
                ],
            };
            self.write_node(new_root, &node);
            self.set_parent(left_child, new_root);
            self.set_parent(new_child, new_root);
            self.root = new_root;
            self.height += 1;
            return;
        }
        let mut p = self.read_node(parent_id);
        let pos = p.position_of_child(left_child);
        p.entries_mut()[pos].size = left_size;
        p.entries_mut().insert(
            pos + 1,
            ChildEntry {
                child: new_child,
                size: new_size,
            },
        );
        if p.count() <= self.config.internal_capacity {
            self.write_node(parent_id, &p);
            // §6 case 1: this node gained a child at `pos` (the split child
            // itself keeps position `pos` but lost records to position
            // pos + 1, so labels from component `pos` onward are stale).
            self.changes.push(BBoxChange::ChildrenFrom {
                prefix: self.path_components_of(parent_id),
                j: pos as u32,
            });
            if self.config.ordinal {
                self.bump_sizes(p.parent(), parent_id, delta);
            }
            return;
        }
        self.split_internal(parent_id, p, delta);
    }

    /// Split an overflowing internal node (decoded in `p`, not yet
    /// persisted in its overfull state) and propagate upward. Relocated
    /// entries need their children's back-links rewritten — the O(B) term
    /// of Theorem 5.3.
    pub(crate) fn split_internal(&mut self, parent_id: BlockId, mut p: Node, delta: i64) {
        let _phase = OpSpan::phase("split");
        self.counters.internal_splits += 1;
        let n = p.count();
        let right_entries = p.entries_mut().split_off(n.div_ceil(2));
        let right_id = self.pager.alloc();
        let right = Node::Internal {
            parent: p.parent(),
            entries: right_entries,
        };
        self.write_node(parent_id, &p);
        self.write_node(right_id, &right);
        for e in right.entries() {
            self.set_parent(e.child, right_id);
        }
        let lsize = p.size_sum();
        let rsize = right.size_sum();
        self.insert_child_after(p.parent(), parent_id, right_id, lsize, rsize, delta);
    }

    /// Add `delta` to the size field leading to `child` in every ancestor
    /// starting at `node_id` — the extra O(log_B N) cost of B-BOX-O updates.
    pub(crate) fn bump_sizes(&mut self, node_id: BlockId, child_id: BlockId, delta: i64) {
        let mut cur = node_id;
        let mut child = child_id;
        while !cur.is_invalid() {
            let mut n = self.read_node(cur);
            let pos = n.position_of_child(child);
            let e = &mut n.entries_mut()[pos];
            e.size = (e.size as i64 + delta) as u64;
            self.write_node(cur, &n);
            child = cur;
            cur = n.parent();
        }
    }

    // ----- deletion -------------------------------------------------------

    /// Remove the label identified by `lid`, reclaiming its LIDF record.
    pub fn delete(&mut self, lid: Lid) {
        let _span = OpSpan::op(self.trace_tag(), "delete");
        self.journaled(|t| t.delete_impl(lid));
    }

    fn delete_impl(&mut self, lid: Lid) {
        let leaf_id = self.lidf.read(lid).block;
        let mut leaf = self.read_node(leaf_id);
        let pos = leaf.position_of_lid(lid);
        leaf.lids_mut().remove(pos);
        self.lidf.free(lid);
        self.len -= 1;
        self.write_node(leaf_id, &leaf);
        if self.config.ordinal {
            self.bump_sizes(leaf.parent(), leaf_id, -1);
        }
        if leaf.count() >= self.config.min_leaf() || leaf.parent().is_invalid() {
            return;
        }
        self.rebalance(leaf_id, leaf);
    }

    /// Fix an underfull non-root node by merging with or redistributing
    /// against adjacent siblings. Iterates until the node is legal (rip
    /// operations can leave nodes more than one entry short, so a single
    /// merge may not suffice), then sweeps upward to repair any parent the
    /// merges left underfull. `node` is the decoded current state (already
    /// persisted).
    pub(crate) fn rebalance(&mut self, node_id: BlockId, node: Node) {
        let _phase = OpSpan::phase("merge");
        let mut node_id = node_id;
        let mut node = node;
        loop {
            if node_id == self.root {
                return; // the root has no minimum
            }
            let min = if node.is_leaf() {
                self.config.min_leaf()
            } else {
                self.config.min_internal()
            };
            if node.count() >= min {
                break;
            }
            let parent_id = node.parent();
            debug_assert!(!parent_id.is_invalid());
            let p = self.read_node(parent_id);
            if p.count() == 1 {
                // The node has absorbed every sibling. If the parent is the
                // root, the node becomes the new root (and is then legal by
                // definition); otherwise repair the parent level first so
                // the node gains siblings, then retry.
                if parent_id == self.root {
                    self.changes.push(BBoxChange::ChildrenFrom {
                        prefix: Vec::new(),
                        j: 0,
                    });
                    self.free_node(parent_id);
                    self.set_parent(node_id, BlockId::INVALID);
                    self.root = node_id;
                    self.height -= 1;
                    return;
                }
                self.rebalance(parent_id, p);
                node = self.read_node(node_id);
                continue;
            }
            let cap = if node.is_leaf() {
                self.config.leaf_capacity
            } else {
                self.config.internal_capacity
            };
            let mut p = p;
            let pos = p.position_of_child(node_id);
            // Pair with an adjacent sibling (prefer the left one):
            // redistribute when the pair overflows one node, merge
            // otherwise. Redistribution (rather than borrowing a single
            // entry) also repairs the multi-entry deficits of subtree rips.
            if pos > 0 {
                let left_id = p.entries()[pos - 1].child;
                let mut left = self.read_node(left_id);
                if left.count() + node.count() > cap {
                    self.counters.borrows += 1;
                    self.redistribute(&mut left, left_id, &mut node, node_id);
                    self.write_node(left_id, &left);
                    self.write_node(node_id, &node);
                    p.entries_mut()[pos - 1].size = left.size_sum();
                    p.entries_mut()[pos].size = node.size_sum();
                    self.write_node(parent_id, &p);
                    self.changes.push(BBoxChange::Boundary {
                        prefix: self.path_components_of(parent_id),
                        j: (pos - 1) as u32,
                    });
                    break;
                }
                // Merge `node` into its left sibling; the survivor (the
                // left sibling) becomes the node under repair.
                self.counters.merges += 1;
                self.changes.push(BBoxChange::ChildrenFrom {
                    prefix: self.path_components_of(parent_id),
                    j: (pos - 1) as u32,
                });
                let dead = std::mem::replace(&mut node, left);
                self.merge_into(&mut node, dead, left_id);
                self.write_node(left_id, &node);
                self.free_node(node_id);
                let removed = p.entries_mut().remove(pos);
                p.entries_mut()[pos - 1].size += removed.size;
                self.write_node(parent_id, &p);
                node_id = left_id;
            } else {
                let right_id = p.entries()[pos + 1].child;
                let mut right = self.read_node(right_id);
                if right.count() + node.count() > cap {
                    self.counters.borrows += 1;
                    self.redistribute(&mut node, node_id, &mut right, right_id);
                    self.write_node(right_id, &right);
                    self.write_node(node_id, &node);
                    p.entries_mut()[pos + 1].size = right.size_sum();
                    p.entries_mut()[pos].size = node.size_sum();
                    self.write_node(parent_id, &p);
                    self.changes.push(BBoxChange::Boundary {
                        prefix: self.path_components_of(parent_id),
                        j: pos as u32,
                    });
                    break;
                }
                // Merge the right sibling into `node`.
                self.counters.merges += 1;
                self.changes.push(BBoxChange::ChildrenFrom {
                    prefix: self.path_components_of(parent_id),
                    j: pos as u32,
                });
                self.merge_into(&mut node, right, node_id);
                self.write_node(node_id, &node);
                self.free_node(right_id);
                let removed = p.entries_mut().remove(pos + 1);
                p.entries_mut()[pos].size += removed.size;
                self.write_node(parent_id, &p);
            }
        }
        // The node is legal; its parent may have lost entries to the
        // merges above. Sweep upward.
        let parent_id = self.read_node(node_id).parent();
        if parent_id.is_invalid() {
            return;
        }
        let p = self.read_node(parent_id);
        if parent_id == self.root {
            if !p.is_leaf() && p.count() == 1 {
                self.changes.push(BBoxChange::ChildrenFrom {
                    prefix: Vec::new(),
                    j: 0,
                });
                self.free_node(parent_id);
                self.set_parent(node_id, BlockId::INVALID);
                self.root = node_id;
                self.height -= 1;
            }
            return;
        }
        if p.count() < self.config.min_internal() {
            self.rebalance(parent_id, p);
        }
    }

    /// Evenly redistribute the combined entries of two adjacent siblings
    /// (`left` precedes `right`), fixing the LIDF pointer or back-link of
    /// every entry that changes node.
    fn redistribute(
        &mut self,
        left: &mut Node,
        left_id: BlockId,
        right: &mut Node,
        right_id: BlockId,
    ) {
        let total = left.count() + right.count();
        let keep_left = total.div_ceil(2);
        match (left, right) {
            (Node::Leaf { lids: ll, .. }, Node::Leaf { lids: rl, .. }) => {
                if ll.len() > keep_left {
                    // Shift the tail of `left` to the front of `right`.
                    let moved: Vec<Lid> = ll.split_off(keep_left);
                    self.lidf.write_batch(
                        moved
                            .iter()
                            .map(|&l| (l, BlockPtrRecord::new(right_id)))
                            .collect(),
                    );
                    rl.splice(0..0, moved);
                } else {
                    // Shift the head of `right` to the back of `left`.
                    let take = keep_left - ll.len();
                    let moved: Vec<Lid> = rl.drain(..take).collect();
                    self.lidf.write_batch(
                        moved
                            .iter()
                            .map(|&l| (l, BlockPtrRecord::new(left_id)))
                            .collect(),
                    );
                    ll.extend(moved);
                }
            }
            (Node::Internal { entries: le, .. }, Node::Internal { entries: re, .. }) => {
                if le.len() > keep_left {
                    let moved: Vec<ChildEntry> = le.split_off(keep_left);
                    for e in &moved {
                        self.set_parent(e.child, right_id);
                    }
                    re.splice(0..0, moved);
                } else {
                    let take = keep_left - le.len();
                    let moved: Vec<ChildEntry> = re.drain(..take).collect();
                    for e in &moved {
                        self.set_parent(e.child, left_id);
                    }
                    le.extend(moved);
                }
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    /// Append all entries of `dead` onto `survivor` (which keeps block id
    /// `survivor_id`), fixing LIDF pointers / back-links of the moved
    /// entries — the paper's O(B) merge cost.
    fn merge_into(&mut self, survivor: &mut Node, dead: Node, survivor_id: BlockId) {
        match (survivor, dead) {
            (Node::Leaf { lids: sl, .. }, Node::Leaf { lids: dl, .. }) => {
                self.lidf.write_batch(
                    dl.iter()
                        .map(|&l| (l, BlockPtrRecord::new(survivor_id)))
                        .collect(),
                );
                sl.extend(dl);
            }
            (Node::Internal { entries: se, .. }, Node::Internal { entries: de, .. }) => {
                for e in &de {
                    self.set_parent(e.child, survivor_id);
                }
                se.extend(de);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    // ----- whole-tree helpers (tests, oracle, bulk ops) --------------------

    /// All LIDs in document order (DFS). Test/bulk support; costs one read
    /// per node.
    pub fn iter_lids(&self) -> Vec<Lid> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.collect_lids(self.root, &mut out);
        out
    }

    fn collect_lids(&self, id: BlockId, out: &mut Vec<Lid>) {
        match self.read_node(id) {
            Node::Leaf { lids, .. } => out.extend(lids),
            Node::Internal { entries, .. } => {
                for e in entries {
                    self.collect_lids(e.child, out);
                }
            }
        }
    }

    /// Exhaustively verify the §5 invariants; panics on violation with the
    /// full [`boxes_audit::AuditReport`] listing. Intended for tests (reads
    /// the whole tree). The non-panicking form is
    /// [`boxes_audit::Auditable::audit`].
    pub fn validate(&self) {
        boxes_audit::Auditable::audit(self).assert_clean("B-BOX");
    }

    /// Blocks used by the tree plus its LIDF.
    pub fn blocks_used(&self) -> usize {
        self.pager.allocated_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FillPolicy;
    use boxes_pager::{Pager, PagerConfig};

    fn small() -> BBox {
        // 64-byte blocks: leaf cap 7, internal cap 4.
        let pager = Pager::new(PagerConfig::with_block_size(64));
        BBox::new(pager, BBoxConfig::from_block_size(64))
    }

    fn small_ordinal() -> BBox {
        let pager = Pager::new(PagerConfig::with_block_size(64));
        BBox::new(pager, BBoxConfig::from_block_size(64).with_ordinal())
    }

    /// Build by inserting `n` labels at the end (document-append order).
    fn build_appending(bbox: &mut BBox, n: usize) -> Vec<Lid> {
        assert!(n >= 1);
        let mut lids = vec![bbox.insert_first()];
        for _ in 1..n {
            // Insert before nothing = we need an anchor; emulate append by
            // inserting before the last lid then swapping meaning: instead,
            // keep a sentinel "last" record and always insert before it.
            let last = *lids.last().unwrap();
            let new = bbox.insert_before(last);
            let idx = lids.len() - 1;
            lids.insert(idx, new);
        }
        lids
    }

    fn assert_order(bbox: &BBox, lids: &[Lid]) {
        let labels: Vec<PathLabel> = lids.iter().map(|&l| bbox.lookup(l)).collect();
        for (i, w) in labels.windows(2).enumerate() {
            assert!(
                w[0] < w[1],
                "order violated between {:?} and {:?}: {:?} !< {:?}",
                lids[i],
                lids[i + 1],
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn first_label_is_all_zeros() {
        let mut b = small();
        let lid = b.insert_first();
        assert_eq!(b.lookup(lid), PathLabel(vec![0]));
        b.validate();
    }

    #[test]
    fn inserts_split_leaves_and_grow_tree() {
        let mut b = small();
        let lids = build_appending(&mut b, 100);
        assert_eq!(b.len(), 100);
        assert!(b.height() >= 3, "100 records over cap-7 leaves: height ≥ 3");
        assert!(b.counters().leaf_splits > 0);
        assert!(b.counters().internal_splits > 0);
        assert_order(&b, &lids);
        b.validate();
    }

    #[test]
    fn concentrated_inserts_keep_order() {
        let mut b = small();
        let mut lids = build_appending(&mut b, 3);
        // Squeeze 200 inserts right before the middle element.
        let anchor = lids[1];
        for _ in 0..200 {
            let new = b.insert_before(anchor);
            let pos = lids.iter().position(|&l| l == anchor).unwrap();
            lids.insert(pos, new);
        }
        assert_order(&b, &lids);
        b.validate();
    }

    #[test]
    fn element_insert_is_nested_pair() {
        let mut b = small();
        let lids = build_appending(&mut b, 4);
        let (s, e) = b.insert_element_before(lids[2]);
        assert!(b.lookup(lids[1]) < b.lookup(s));
        assert!(b.lookup(s) < b.lookup(e));
        assert!(b.lookup(e) < b.lookup(lids[2]));
        b.validate();
    }

    #[test]
    fn compare_agrees_with_lookup() {
        let mut b = small();
        let lids = build_appending(&mut b, 60);
        for i in (0..60).step_by(7) {
            for j in (0..60).step_by(11) {
                let via_labels = b.lookup(lids[i]).cmp(&b.lookup(lids[j]));
                assert_eq!(b.compare(lids[i], lids[j]), via_labels);
            }
        }
    }

    #[test]
    fn compare_close_labels_is_cheaper_than_two_lookups() {
        let mut b = small();
        let lids = build_appending(&mut b, 300);
        let pager = b.pager().clone();
        let before = pager.stats();
        b.compare(lids[100], lids[101]);
        let close = pager.stats().since(&before).total();
        let before = pager.stats();
        let _ = (b.lookup(lids[100]), b.lookup(lids[101]));
        let full = pager.stats().since(&before).total();
        assert!(close < full, "LCA walk ({close}) vs two lookups ({full})");
    }

    #[test]
    fn delete_simple_keeps_order() {
        let mut b = small();
        let mut lids = build_appending(&mut b, 30);
        for i in [25, 20, 15, 10, 5] {
            b.delete(lids.remove(i));
        }
        assert_eq!(b.len(), 25);
        assert_order(&b, &lids);
        b.validate();
    }

    #[test]
    fn delete_everything_then_reuse() {
        let mut b = small();
        let lids = build_appending(&mut b, 50);
        for &l in &lids[..49] {
            b.delete(l);
        }
        assert_eq!(b.len(), 1);
        assert_eq!(b.height(), 1, "tree shrinks back to a single leaf");
        b.validate();
        b.delete(lids[49]);
        assert!(b.is_empty());
        let lid = b.insert_first();
        assert_eq!(b.lookup(lid), PathLabel(vec![0]));
        b.validate();
    }

    #[test]
    fn deletes_trigger_borrows_and_merges() {
        let mut b = small();
        let mut lids = build_appending(&mut b, 200);
        // Delete from the middle to force underflow cascades.
        while lids.len() > 20 {
            b.delete(lids.remove(lids.len() / 2));
        }
        let c = b.counters();
        assert!(c.borrows > 0, "expected borrow events");
        assert!(c.merges > 0, "expected merge events");
        assert_order(&b, &lids);
        b.validate();
    }

    #[test]
    fn quarter_fill_policy_validates() {
        let pager = Pager::new(PagerConfig::with_block_size(128));
        let mut b = BBox::new(
            pager,
            BBoxConfig::from_block_size(128).with_fill(FillPolicy::Quarter),
        );
        let mut lids = build_appending(&mut b, 150);
        for _ in 0..100 {
            b.delete(lids.remove(lids.len() / 2));
        }
        assert_order(&b, &lids);
        b.validate();
    }

    #[test]
    fn ordinal_tracks_document_position() {
        let mut b = small_ordinal();
        let lids = build_appending(&mut b, 80);
        for (i, &lid) in lids.iter().enumerate() {
            assert_eq!(b.ordinal_of(lid), i as u64, "position {i}");
        }
        b.validate();
    }

    #[test]
    fn ordinal_updates_on_insert_and_delete() {
        let mut b = small_ordinal();
        let mut lids = build_appending(&mut b, 40);
        let new = b.insert_before(lids[10]);
        lids.insert(10, new);
        b.delete(lids.remove(30));
        b.delete(lids.remove(3));
        for (i, &lid) in lids.iter().enumerate() {
            assert_eq!(b.ordinal_of(lid), i as u64);
        }
        b.validate();
    }

    #[test]
    #[should_panic(expected = "ordinal lookup requires")]
    fn ordinal_without_support_panics() {
        let mut b = small();
        let lid = b.insert_first();
        b.ordinal_of(lid);
    }

    #[test]
    fn basic_insert_touches_only_leaf_and_lidf() {
        let mut b = small();
        let lids = build_appending(&mut b, 8); // leaf is cap 7 → two leaves now
        let pager = b.pager().clone();
        let before = pager.stats();
        b.insert_before(lids[0]);
        let cost = pager.stats().since(&before);
        // LIDF read (1) + leaf read (1) + LIDF alloc rw (2) + leaf write (1).
        assert!(
            cost.total() <= 6,
            "non-splitting insert should be constant: {cost:?}"
        );
    }

    #[test]
    fn ordinal_insert_costs_height() {
        let mut b = small_ordinal();
        let lids = build_appending(&mut b, 100);
        let pager = b.pager().clone();
        let before = pager.stats();
        b.insert_before(lids[0]);
        let cost = pager.stats().since(&before);
        // Must at least read+write each ancestor level above the leaf.
        assert!(
            cost.total() >= 2 * (b.height() as u64 - 1),
            "size-field maintenance reaches the root: {cost:?}"
        );
    }

    #[test]
    fn label_bits_are_logarithmic() {
        let mut b = small();
        build_appending(&mut b, 500);
        let bits = b.label_bits();
        // Theorem 5.1: log N + 1 + (log N − 1)/(log B − 1) with B ≈ 8.
        let n = 500f64;
        let bound = n.log2() + 1.0 + (n.log2() - 1.0) / (3.0 - 1.0) + 3.0;
        assert!(
            (bits as f64) < bound + 4.0,
            "bits {bits} vs theorem bound ≈ {bound:.1}"
        );
    }

    #[test]
    fn iter_lids_matches_insert_order() {
        let mut b = small();
        let lids = build_appending(&mut b, 64);
        assert_eq!(b.iter_lids(), lids);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::config::BBoxConfig;
    use boxes_pager::{Pager, PagerConfig};

    fn make() -> BBox {
        let pager = Pager::new(PagerConfig::with_block_size(64));
        BBox::new(pager, BBoxConfig::from_block_size(64))
    }

    #[test]
    fn compare_agrees_with_labels_under_churn() {
        let mut b = make();
        let mut order = b.bulk_load(150);
        for round in 0..300usize {
            if round % 4 == 3 && order.len() > 10 {
                let at = (round * 13) % order.len();
                b.delete(order.remove(at));
            } else {
                let at = (round * 29) % order.len();
                let new = b.insert_before(order[at]);
                order.insert(at, new);
            }
        }
        for i in (0..order.len()).step_by(11) {
            for j in (0..order.len()).step_by(17) {
                let expect = i.cmp(&j);
                assert_eq!(b.compare(order[i], order[j]), expect, "({i},{j})");
            }
        }
        b.validate();
    }

    #[test]
    fn hammering_both_document_ends() {
        let mut b = make();
        let order = b.bulk_load(100);
        let first = order[0];
        let last = *order.last().unwrap();
        for i in 0..300 {
            b.insert_before(if i % 2 == 0 { first } else { last });
        }
        assert_eq!(b.len(), 400);
        b.validate();
    }

    #[test]
    fn tree_grows_and_shrinks_repeatedly() {
        let mut b = make();
        let anchor_pool = b.bulk_load(20);
        let anchor = anchor_pool[10];
        for _ in 0..3 {
            let mut inserted = Vec::new();
            for _ in 0..600 {
                inserted.push(b.insert_before(anchor));
            }
            let tall = b.height();
            assert!(tall >= 3);
            for lid in inserted {
                b.delete(lid);
            }
            assert!(b.height() < tall, "tree shrank back");
            b.validate();
        }
        assert_eq!(b.len(), 20);
    }

    #[test]
    fn structural_changes_are_reported_to_the_cache_layer() {
        let mut b = make();
        let order = b.bulk_load(60);
        let _ = b.take_changes();
        // Non-structural insert: no change notes.
        let in_room = b.insert_before(order[3]);
        let _ = in_room;
        // ... the bulk leaves are full, so actually that DID split. Check
        // that split produced notes, and a quiet insert afterwards doesn't.
        assert!(!b.take_changes().is_empty(), "split must be reported");
        b.insert_before(order[3]);
        assert!(
            b.take_changes().is_empty(),
            "leaf-local insert reports nothing"
        );
        b.validate();
    }

    #[test]
    fn ordinal_mode_survives_grow_shrink_cycles() {
        let pager = Pager::new(PagerConfig::with_block_size(64));
        let mut b = BBox::new(pager, BBoxConfig::from_block_size(64).with_ordinal());
        let mut order = b.bulk_load(50);
        for round in 0..4 {
            for i in 0..200 {
                let at = (round * 71 + i * 3) % order.len();
                let new = b.insert_before(order[at]);
                order.insert(at, new);
            }
            while order.len() > 50 {
                let at = (order.len() * 7 + round) % order.len();
                b.delete(order.remove(at));
            }
            for (i, &lid) in order.iter().enumerate().step_by(13) {
                assert_eq!(b.ordinal_of(lid), i as u64);
            }
            b.validate();
        }
    }
}
