#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! B-BOX: the Back-linked B-tree for Ordering XML (§5 of the paper).
//!
//! B-BOX stores **no label values at all**. It is a B-tree whose nodes hold
//! only child pointers (plus a back-link from every non-root node to its
//! parent), and whose leaves hold only LIDs. The label of a record is the
//! vector of child ordinals along the root-to-leaf path — reconstructed on
//! demand by walking *up* the tree through the back-links. Because nothing
//! is materialized, ordinary insertions touch only the leaf: the amortized
//! update cost is O(1) I/Os (Theorem 5.3), at the price of an O(log_B N)
//! lookup (Theorem 5.2).
//!
//! Supported here, matching the paper:
//! * bottom-up [`BBox::lookup`] and the cheaper LCA-based [`BBox::compare`];
//! * `insert-before` / `delete` with split, borrow and merge, including the
//!   LIDF and back-link maintenance the paper charges O(B) for;
//! * the standard B/2 minimum fill and the B/4 variant for mixed
//!   insert/delete churn ([`FillPolicy`]);
//! * ordinal labeling via per-entry `size` fields (B-BOX-O);
//! * O(N/B) bulk loading and rip-based subtree insert / delete.
//!
//! # Example
//!
//! ```
//! use boxes_bbox::{BBox, BBoxConfig};
//! use boxes_pager::{Pager, PagerConfig};
//!
//! let pager = Pager::new(PagerConfig::with_block_size(256));
//! let mut bbox = BBox::new(pager, BBoxConfig::from_block_size(256));
//! let lids = bbox.bulk_load(100);
//! let new = bbox.insert_before(lids[50]);
//! assert!(bbox.lookup(lids[49]) < bbox.lookup(new));
//! assert!(bbox.lookup(new) < bbox.lookup(lids[50]));
//! ```

mod audit;
mod bulk;
mod config;
mod label;
mod node;
mod subtree;
mod tree;

pub use config::{BBoxConfig, FillPolicy};
pub use label::PathLabel;
pub use tree::{BBox, BBoxChange, BBoxCounters};
