#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Snapshot-isolated concurrent sessions over the BOXes schemes.
//!
//! The paper's structures are maintained by a single mutator (`&mut self`
//! everywhere), but lookups are `&self` — and the storage core is `Send +
//! Sync`. This crate turns that into a concurrent API:
//!
//! * [`SessionManager`] owns a journaled [`SharedPager`] and one labeling
//!   scheme.
//! * [`SessionManager::writer`] hands out the single [`WriterSession`],
//!   which streams inserts/deletes through the existing journaled path.
//! * [`SessionManager::snapshot`] opens any number of read-only
//!   [`Snapshot`] sessions. Each sees one *published epoch* — the committed
//!   prefix as of the last group-commit boundary — and is completely immune
//!   to concurrent writer progress.
//!
//! Snapshot isolation rides the WAL no-steal overlay as copy-on-write: the
//! pager freezes a block's pre-image before overwriting or freeing it
//! whenever a snapshot epoch is pinned, snapshot reads go frozen-version
//! first then backend, and the last reader of an epoch reclaims its
//! versions on drop ([`boxes_pager::Pager::snapshot_view`]). The writer
//! publishes a new epoch at every group-commit boundary automatically, or
//! on demand with [`WriterSession::publish`].
//!
//! Every session carries a [`boxes_trace::TraceSession`], so per-session
//! I/O attribution survives N threads: the profile gate's accounting
//! identity (attributed + unattributed == pager I/O delta) holds with
//! concurrent readers active.
//!
//! ```
//! use boxes_core::{LabelingScheme, WBoxScheme};
//! use boxes_pager::{Pager, PagerConfig};
//! use boxes_session::SessionManager;
//! use boxes_wal::{Wal, WalConfig};
//! use boxes_wbox::WBoxConfig;
//!
//! let pager = Pager::new(PagerConfig::with_block_size(1024));
//! pager.attach_journal(Wal::new(1024, WalConfig::default()));
//! let manager = SessionManager::<WBoxScheme>::create(
//!     pager.clone(),
//!     WBoxConfig::from_block_size(1024),
//! );
//! let lids = {
//!     let mut writer = manager.writer().expect("writer free");
//!     writer.bulk_load_document(&[1, 0, 3, 2])
//! };
//! let snap = manager.snapshot().expect("committed state");
//! let frozen = snap.lookup(lids[0]);
//! {
//!     let mut writer = manager.writer().expect("writer returned");
//!     writer.insert_element_before(lids[0]);
//! }
//! assert_eq!(snap.lookup(lids[0]), frozen, "snapshot is stable");
//! ```

use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

use boxes_bbox::BBoxConfig;
use boxes_core::scheme::{BBoxScheme, NaiveScheme, WBoxScheme};
use boxes_core::LabelingScheme;
use boxes_lidf::{Lidf, Record};
use boxes_naive::NaiveConfig;
use boxes_pager::{lock_unpoisoned, IoStats, PagerError, SharedPager};
use boxes_trace::{OpSpan, TraceSession};
use boxes_wbox::WBoxConfig;

/// Why a session could not be opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// No committed state for this structure exists at the snapshot's
    /// epoch: nothing was ever committed *and published* under the meta
    /// name (e.g. the writer streamed ops into an unsynced group-commit
    /// tail — call [`WriterSession::publish`] first).
    NoCommittedState {
        /// The missing meta blob name (`"wbox"`, `"bbox"`, `"naive"`,
        /// `"lidf"`).
        meta: &'static str,
    },
    /// The single writer session is already handed out.
    WriterBusy,
    /// The storage layer rejected the operation.
    Pager(PagerError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoCommittedState { meta } => {
                write!(f, "no committed {meta:?} state published at this epoch")
            }
            SessionError::WriterBusy => write!(f, "the writer session is already handed out"),
            SessionError::Pager(e) => write!(f, "pager error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<PagerError> for SessionError {
    fn from(e: PagerError) -> Self {
        SessionError::Pager(e)
    }
}

/// A labeling scheme that can participate in sessions: constructible fresh
/// on a shared pager, and re-openable read-only over a snapshot view from
/// the published meta blobs.
pub trait SessionScheme: LabelingScheme + Sized + Send {
    /// Scheme parameters, shared by the writer and every snapshot reopen.
    type Config: Clone + Send + Sync;

    /// Build a fresh (empty) structure on `pager`.
    fn create(pager: SharedPager, config: Self::Config) -> Self;

    /// Reattach to the committed state in `metas` (the published meta map
    /// of a snapshot epoch) over `pager` (a snapshot view).
    fn open_view(
        pager: SharedPager,
        config: &Self::Config,
        metas: &BTreeMap<String, Vec<u8>>,
    ) -> Result<Self, SessionError>;
}

fn require<'m>(
    metas: &'m BTreeMap<String, Vec<u8>>,
    name: &'static str,
) -> Result<&'m [u8], SessionError> {
    metas
        .get(name)
        .map(Vec::as_slice)
        .ok_or(SessionError::NoCommittedState { meta: name })
}

impl SessionScheme for WBoxScheme {
    type Config = WBoxConfig;

    fn create(pager: SharedPager, config: Self::Config) -> Self {
        WBoxScheme::new(pager, config)
    }

    fn open_view(
        pager: SharedPager,
        config: &Self::Config,
        metas: &BTreeMap<String, Vec<u8>>,
    ) -> Result<Self, SessionError> {
        Ok(WBoxScheme::reopen(
            pager,
            *config,
            require(metas, "wbox")?,
            require(metas, "lidf")?,
        ))
    }
}

impl SessionScheme for BBoxScheme {
    type Config = BBoxConfig;

    fn create(pager: SharedPager, config: Self::Config) -> Self {
        BBoxScheme::new(pager, config)
    }

    fn open_view(
        pager: SharedPager,
        config: &Self::Config,
        metas: &BTreeMap<String, Vec<u8>>,
    ) -> Result<Self, SessionError> {
        Ok(BBoxScheme::reopen(
            pager,
            *config,
            require(metas, "bbox")?,
            require(metas, "lidf")?,
        ))
    }
}

impl SessionScheme for NaiveScheme {
    type Config = NaiveConfig;

    fn create(pager: SharedPager, config: Self::Config) -> Self {
        NaiveScheme::new(pager, config)
    }

    fn open_view(
        pager: SharedPager,
        config: &Self::Config,
        metas: &BTreeMap<String, Vec<u8>>,
    ) -> Result<Self, SessionError> {
        Ok(NaiveScheme::reopen(
            pager,
            *config,
            require(metas, "naive")?,
        ))
    }
}

/// Owns one scheme on one journaled pager and hands out sessions: many
/// concurrent read-only [`Snapshot`]s, one exclusive [`WriterSession`].
///
/// `Sync` for `S: Send`: share it across reader threads behind an [`Arc`].
pub struct SessionManager<S: SessionScheme> {
    pager: SharedPager,
    config: S::Config,
    /// The writer-side structure. `None` while a [`WriterSession`] is out.
    /// Never held across a pager or trace call — take the scheme out, drop
    /// the guard, then work.
    writer: Mutex<Option<S>>,
}

impl<S: SessionScheme> SessionManager<S> {
    /// Create a fresh structure on `pager` (journaled; snapshots need the
    /// WAL's group-commit boundaries to define epochs) and manage it. The
    /// bootstrap runs as one journaled transaction.
    pub fn create(pager: SharedPager, config: S::Config) -> Self {
        let scheme = {
            let _txn = pager.txn();
            S::create(Arc::clone(&pager), config.clone())
        };
        Self::adopt(scheme, config)
    }

    /// Manage an existing structure (e.g. one reopened after WAL recovery).
    /// `config` must match the one the structure was built with — snapshot
    /// reopens use it.
    pub fn adopt(scheme: S, config: S::Config) -> Self {
        let pager = Arc::clone(scheme.pager());
        SessionManager {
            pager,
            config,
            writer: Mutex::new(Some(scheme)),
        }
    }

    /// The shared pager (I/O accounting, epoch inspection).
    pub fn pager(&self) -> &SharedPager {
        &self.pager
    }

    /// The currently published snapshot epoch (see
    /// [`boxes_pager::Pager::published_epoch`]).
    #[must_use]
    pub fn published_epoch(&self) -> u64 {
        self.pager.published_epoch()
    }

    /// Per-shard page-table latch statistics of the underlying pager (see
    /// [`boxes_pager::Pager::shard_stats`]): how concurrent this manager's
    /// reader sessions actually ran, shard by shard.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<boxes_pager::ShardStats> {
        self.pager.shard_stats()
    }

    /// Claim the single writer session. Errors with
    /// [`SessionError::WriterBusy`] while another writer session is alive.
    pub fn writer(&self) -> Result<WriterSession<'_, S>, SessionError> {
        let scheme = {
            let mut slot = lock_unpoisoned(&self.writer);
            slot.take().ok_or(SessionError::WriterBusy)?
        };
        let trace = TraceSession::begin("writer");
        trace.bind_current_thread();
        Ok(WriterSession {
            manager: self,
            scheme: Some(scheme),
            trace,
        })
    }

    /// Open a read-only snapshot of the last published epoch. The snapshot
    /// pins that epoch's frozen block versions until dropped; its structure
    /// is a fresh reopen over a snapshot-view pager, so lookups on it never
    /// touch (or observe) writer state.
    pub fn snapshot(&self) -> Result<Snapshot<S>, SessionError> {
        // Begin (and bind) the trace session *before* the reopen so any
        // I/O the view does while opening is already attributed here.
        let trace = TraceSession::begin("snapshot");
        trace.bind_current_thread();
        let (view, metas) = self.pager.snapshot_view();
        let epoch = view.snapshot_epoch().unwrap_or(0);
        let scheme = {
            let _span = OpSpan::op("session", "open");
            S::open_view(view, &self.config, &metas)?
        };
        Ok(Snapshot {
            scheme,
            epoch,
            metas,
            trace,
        })
    }
}

/// The single streaming-writer session. Dereferences to the scheme, so all
/// [`LabelingScheme`] mutators are available; every mutation goes through
/// the existing journaled path and becomes visible to *new* snapshots at
/// the next group-commit boundary. Returns the scheme to the manager on
/// drop.
pub struct WriterSession<'a, S: SessionScheme> {
    manager: &'a SessionManager<S>,
    scheme: Option<S>,
    trace: TraceSession,
}

impl<S: SessionScheme> WriterSession<'_, S> {
    /// Force a group-commit boundary now (fsync the WAL tail, apply it,
    /// publish a fresh epoch). Returns `true` when a new epoch was
    /// published. Use this to make the latest streamed ops visible to
    /// snapshots without waiting for `sync_every` to trip.
    pub fn publish(&self) -> bool {
        let _span = OpSpan::op("session", "publish");
        self.manager.pager.publish_barrier()
    }

    /// This session's trace handle (per-session I/O attribution).
    pub fn trace(&self) -> &TraceSession {
        &self.trace
    }
}

impl<S: SessionScheme> Deref for WriterSession<'_, S> {
    type Target = S;
    fn deref(&self) -> &S {
        self.scheme.as_ref().expect("scheme present until drop")
    }
}

impl<S: SessionScheme> DerefMut for WriterSession<'_, S> {
    fn deref_mut(&mut self) -> &mut S {
        self.scheme.as_mut().expect("scheme present until drop")
    }
}

impl<S: SessionScheme> Drop for WriterSession<'_, S> {
    fn drop(&mut self) {
        let scheme = self.scheme.take();
        *lock_unpoisoned(&self.manager.writer) = scheme;
    }
}

/// A read-only snapshot session: one scheme reopened over a snapshot-view
/// pager pinned to a published epoch. Dereferences immutably to the scheme
/// — the read-only [`boxes_core::LabelView`] surface is available, the
/// `&mut self` mutators are unreachable by construction (and the snapshot
/// pager rejects writes at runtime besides).
pub struct Snapshot<S: SessionScheme> {
    scheme: S,
    epoch: u64,
    metas: Arc<BTreeMap<String, Vec<u8>>>,
    trace: TraceSession,
}

impl<S: SessionScheme> Snapshot<S> {
    /// The published epoch this snapshot is pinned to.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Label of `lid` at this snapshot's epoch. Inherent (not just via
    /// `Deref`) so call sites with both [`boxes_core::LabelingScheme`] and
    /// [`boxes_core::LabelView`] in scope stay unambiguous.
    pub fn lookup(&self, lid: boxes_lidf::Lid) -> S::Label {
        self.scheme.lookup(lid)
    }

    /// Fallible [`Snapshot::lookup`]: disk faults come back as typed
    /// errors, never wrong labels.
    pub fn try_lookup(&self, lid: boxes_lidf::Lid) -> Result<S::Label, PagerError> {
        self.scheme.try_lookup(lid)
    }

    /// Number of live labels at this snapshot's epoch.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.scheme.len()
    }

    /// Whether the snapshot holds no labels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scheme.is_empty()
    }

    /// I/O charged to this snapshot so far (the view pager's own counters —
    /// disjoint from the base pager's).
    #[must_use]
    pub fn io(&self) -> IoStats {
        self.scheme.pager().stats()
    }

    /// This session's trace handle (per-session I/O attribution).
    pub fn trace(&self) -> &TraceSession {
        &self.trace
    }

    /// Re-bind trace attribution to the calling thread — call this after
    /// moving the snapshot to another thread so its events keep landing in
    /// this session's tally.
    pub fn bind_current_thread(&self) {
        self.trace.bind_current_thread();
    }

    /// The published meta blobs at this snapshot's epoch.
    #[must_use]
    pub fn metas(&self) -> &BTreeMap<String, Vec<u8>> {
        &self.metas
    }

    /// Open the LIDF of this epoch over the same snapshot view — read-only
    /// record access (`Lidf::read`, `Lidf::scan`) at snapshot isolation.
    pub fn lidf<R: Record>(&self) -> Result<Lidf<R>, SessionError> {
        Ok(Lidf::reopen(
            Arc::clone(self.scheme.pager()),
            require(&self.metas, "lidf")?,
        ))
    }
}

impl<S: SessionScheme> Deref for Snapshot<S> {
    type Target = S;
    fn deref(&self) -> &S {
        &self.scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boxes_lidf::BlockPtrRecord;
    use boxes_pager::{Pager, PagerConfig};
    use boxes_wal::{Wal, WalConfig};

    const BS: usize = 1024;

    fn wbox_manager(sync_every: u64) -> SessionManager<WBoxScheme> {
        let pager = Pager::new(PagerConfig::with_block_size(BS));
        pager.attach_journal(Wal::new(
            BS,
            WalConfig {
                sync_every,
                checkpoint_every: 0,
            },
        ));
        SessionManager::create(pager.clone(), WBoxConfig::from_block_size(BS))
    }

    #[test]
    fn writer_is_exclusive_and_returns_on_drop() {
        let m = wbox_manager(1);
        let w = m.writer().expect("first claim");
        assert!(matches!(m.writer(), Err(SessionError::WriterBusy)));
        drop(w);
        m.writer().expect("returned on drop");
    }

    #[test]
    fn snapshot_before_any_commit_has_no_state() {
        let m = wbox_manager(4);
        // The bootstrap commit is parked in the unsynced group-commit tail:
        // nothing published yet.
        assert!(matches!(
            m.snapshot().err(),
            Some(SessionError::NoCommittedState { .. })
        ));
    }

    #[test]
    fn snapshot_is_stable_while_writer_streams() {
        let m = wbox_manager(1);
        let lids = {
            let mut w = m.writer().expect("writer");
            w.bulk_load_document(&[1, 0, 3, 2])
        };
        let snap = m.snapshot().expect("snapshot");
        let before: Vec<u64> = lids.iter().map(|&l| snap.lookup(l)).collect();
        {
            let mut w = m.writer().expect("writer");
            for _ in 0..20 {
                w.insert_element_before(lids[2]);
            }
        }
        let after: Vec<u64> = lids.iter().map(|&l| snap.lookup(l)).collect();
        assert_eq!(before, after, "snapshot labels never move");
        let fresh = m.snapshot().expect("fresh snapshot");
        assert!(fresh.epoch() > snap.epoch());
        assert_eq!(fresh.len(), 44, "fresh snapshot sees the inserts");
        assert!(snap.io().reads > 0, "snapshot charged its own reads");
    }

    #[test]
    fn shard_stats_surface_reader_latch_traffic() {
        let m = wbox_manager(1);
        {
            let mut w = m.writer().expect("writer");
            w.bulk_load_document(&[1, 0, 3, 2]);
        }
        let before: u64 = m.shard_stats().iter().map(|s| s.acquisitions).sum();
        let snap = m.snapshot().expect("snapshot");
        let _ = snap.len();
        let after: u64 = m.shard_stats().iter().map(|s| s.acquisitions).sum();
        assert!(
            after > before,
            "snapshot reads go through the sharded table ({before} -> {after})"
        );
    }

    #[test]
    fn publish_makes_unsynced_tail_visible() {
        let m = wbox_manager(1_000); // group commit never trips on its own
        let lids = {
            let mut w = m.writer().expect("writer");
            let lids = w.bulk_load_document(&[1, 0]);
            assert!(w.publish(), "explicit barrier publishes the tail");
            lids
        };
        let snap = m.snapshot().expect("published state");
        assert_eq!(snap.len(), 2);
        let _ = snap.lookup(lids[0]);
    }

    #[test]
    fn snapshot_lidf_reads_records_at_its_epoch() {
        let m = wbox_manager(1);
        {
            let mut w = m.writer().expect("writer");
            w.bulk_load_document(&[1, 0, 3, 2]);
        }
        let snap = m.snapshot().expect("snapshot");
        let lidf = snap.lidf::<BlockPtrRecord>().expect("lidf view");
        assert_eq!(lidf.len(), 4);
        let mut seen = 0;
        lidf.scan(|_, rec| {
            assert!(!rec.block.is_invalid());
            seen += 1;
        });
        assert_eq!(seen, 4);
    }

    #[test]
    fn publish_fsyncs_through_a_file_backed_log() {
        let mut log = std::env::temp_dir();
        log.push(format!("boxes-session-test-publish-{}", std::process::id()));
        let _ = std::fs::remove_file(&log);
        let pager = Pager::new(PagerConfig::with_block_size(BS));
        let wal = Wal::create_file(
            &log,
            BS,
            WalConfig {
                sync_every: 1_000, // group commit never trips on its own
                checkpoint_every: 0,
            },
        )
        .expect("create log");
        pager.attach_journal(wal.clone());
        let m: SessionManager<WBoxScheme> =
            SessionManager::create(pager.clone(), WBoxConfig::from_block_size(BS));
        let before = wal.durable_len();
        {
            let mut w = m.writer().expect("writer");
            w.bulk_load_document(&[1, 0, 3, 2]);
            assert_eq!(
                wal.durable_len(),
                before,
                "streamed ops sit in the unsynced tail"
            );
            assert!(w.publish(), "publish issues the real fsync");
        }
        let after = wal.durable_len();
        assert!(after > before, "publish grew the durable log on disk");
        // The published state is now on the medium: a post-mortem read of
        // the file sees exactly the durable prefix publish() created.
        let bytes = boxes_wal::store::FileLogStore::read_log(&log, BS).expect("read log");
        assert_eq!(bytes.len(), after);
        let _ = std::fs::remove_file(&log);
    }
}
