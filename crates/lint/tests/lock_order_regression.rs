//! Concurrency regression test for the BX015 lock-order graph.
//!
//! The sharded pager introduced two new lock tiers under the coordinator:
//! per-shard page-table mutexes (`boxes-pager::Shard.state`) and per-frame
//! latches (`boxes-pager::Frame.latch`), plus the interleaving scheduler's
//! leaf mutex (`boxes-core::Scheduler.state`). This test re-analyzes the
//! *real* workspace and pins down the hierarchy:
//!
//! * the graph stays **acyclic** — any future code path that takes the
//!   coordinator while holding a shard (or a shard while holding a frame
//!   latch) turns up here as a cycle before it can deadlock in production;
//! * the coordinator→shard and shard→frame edges are **witnessed** — if a
//!   refactor stops the analyzer from seeing the hierarchy, the proof is
//!   gone even though the code may still be fine, and that silent loss of
//!   coverage should fail loudly too;
//! * a negative-control source with a two-lock cycle still makes BX015
//!   fire, so "no cycles above" means "none found", not "none findable".

use std::path::Path;

use boxes_lint::config::Config;
use boxes_lint::{analyze_workspace, lint_source};

/// Workspace root (two levels up from the lint crate's manifest).
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels below the workspace root")
}

/// Extract `"key": [...]` array text from the (machine-written) JSON.
fn json_section<'a>(json: &'a str, key: &str) -> &'a str {
    let needle = format!("\"{key}\":");
    let start = json
        .find(&needle)
        .unwrap_or_else(|| panic!("lock-order JSON has no {key} section"));
    let rest = &json[start + needle.len()..];
    let open = rest.find('[').expect("section opens an array");
    // Bracket-depth scan: witness lists nest arrays inside the edges array.
    let mut depth = 0usize;
    for (i, b) in rest[open..].char_indices() {
        match b {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return &rest[open..=open + i];
                }
            }
            _ => {}
        }
    }
    panic!("unterminated {key} array in lock-order JSON");
}

#[test]
fn lock_order_graph_is_acyclic_with_the_sharded_pager_hierarchy() {
    let analysis = analyze_workspace(workspace_root()).expect("workspace parses");
    let json = analysis.lock_order_json();

    // Acyclic: the cycles array must be literally empty.
    let cycles = json_section(&json, "cycles");
    assert_eq!(
        cycles.replace(char::is_whitespace, ""),
        "[]",
        "lock-order graph grew a cycle: {json}"
    );

    // All three new locks are registered.
    let locks = json_section(&json, "locks");
    for lock in [
        "boxes-pager::Pager.inner",
        "boxes-pager::Shard.state",
        "boxes-pager::Frame.latch",
        "boxes-core::Scheduler.state",
    ] {
        assert!(locks.contains(lock), "lock inventory lost {lock}: {locks}");
    }

    // The two-tier hierarchy is witnessed: coordinator → shard and
    // shard → frame edges both appear with at least one witness site.
    let edges = json_section(&json, "edges");
    for (from, to) in [
        ("boxes-pager::Pager.inner", "boxes-pager::Shard.state"),
        ("boxes-pager::Pager.inner", "boxes-pager::Frame.latch"),
        ("boxes-pager::Shard.state", "boxes-pager::Frame.latch"),
    ] {
        let edge = format!("{{\"from\": \"{from}\", \"to\": \"{to}\"");
        assert!(
            edges.contains(&edge),
            "witnessed edge {from} -> {to} disappeared from the graph: {edges}"
        );
    }

    // The scheduler mutex is a leaf: nothing is acquired while holding it.
    assert!(
        !edges.contains("\"from\": \"boxes-core::Scheduler.state\""),
        "scheduler mutex must stay a leaf lock: {edges}"
    );
}

/// Negative control: an artificial A→B / B→A cycle must still trip BX015,
/// proving the acyclicity assertion above has teeth.
#[test]
fn bx015_still_fires_on_an_injected_lock_cycle() {
    let source = "\
pub struct S { a: Mutex<u8>, b: Mutex<u8> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }
}
";
    let fired: Vec<&str> = lint_source("crates/fixture/src/lib.rs", source, &Config::default())
        .into_iter()
        .map(|d| d.rule)
        .collect();
    assert!(
        fired.contains(&"BX015"),
        "BX015 must fire on a two-lock cycle (got {fired:?})"
    );
}
