//! Fixture-driven proof that every rule in the BX001–BX020 catalog fires on
//! a known-bad snippet and stays quiet on its known-clean counterpart, plus
//! the stale-suppression negative controls (stream, graph, and lock tiers,
//! including the BX018 `[[ratchet]]` table).

use boxes_lint::config::Config;
use boxes_lint::{apply_baseline, lint_source};

/// Load a fixture and lint it as if it lived in consumer library code
/// (a path no `allow_paths` policy would cover).
fn lint_fixture(name: &str) -> Vec<&'static str> {
    let path = format!("{}/tests/fixtures/{name}.rs", env!("CARGO_MANIFEST_DIR"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {path} unreadable: {e}"));
    lint_source("crates/fixture/src/lib.rs", &text, &Config::default())
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

#[test]
fn every_rule_fires_on_its_bad_fixture() {
    for rule in [
        "BX001", "BX002", "BX003", "BX004", "BX005", "BX006", "BX007", "BX008", "BX009", "BX010",
        "BX011", "BX012", "BX013", "BX014", "BX015", "BX016", "BX017", "BX018", "BX019", "BX020",
    ] {
        let fired = lint_fixture(&format!("{}_bad", rule.to_lowercase()));
        assert!(
            fired.contains(&rule),
            "{rule} did not fire on its bad fixture (got {fired:?})"
        );
    }
}

#[test]
fn no_rule_fires_on_its_clean_fixture() {
    for rule in [
        "BX001", "BX002", "BX003", "BX004", "BX005", "BX006", "BX007", "BX008", "BX009", "BX010",
        "BX011", "BX012", "BX013", "BX014", "BX015", "BX016", "BX017", "BX018", "BX019", "BX020",
    ] {
        let fired = lint_fixture(&format!("{}_clean", rule.to_lowercase()));
        assert!(
            !fired.contains(&rule),
            "{rule} fired on its clean fixture ({fired:?})"
        );
    }
}

#[test]
fn bad_fixture_counts_are_pinned() {
    // A rule regression that doubles or silences findings should trip
    // something more precise than "at least one".
    let cases = [
        ("bx001_bad", "BX001", 3),
        ("bx002_bad", "BX002", 2),
        ("bx003_bad", "BX003", 4),
        ("bx004_bad", "BX004", 2),
        ("bx005_bad", "BX005", 2),
        ("bx006_bad", "BX006", 3),
        ("bx007_bad", "BX007", 3),
        ("bx008_bad", "BX008", 5),
        ("bx009_bad", "BX009", 3),
        ("bx010_bad", "BX010", 2),
        ("bx011_bad", "BX011", 5),
        ("bx012_bad", "BX012", 4),
        ("bx013_bad", "BX013", 2),
        ("bx014_bad", "BX014", 2),
        ("bx015_bad", "BX015", 1),
        ("bx016_bad", "BX016", 2),
        ("bx017_bad", "BX017", 2),
        ("bx018_bad", "BX018", 5),
        ("bx019_bad", "BX019", 2),
        ("bx020_bad", "BX020", 3),
    ];
    for (fixture, rule, want) in cases {
        let fired = lint_fixture(fixture);
        let got = fired.iter().filter(|r| **r == rule).count();
        assert_eq!(
            got, want,
            "{fixture}: expected {want} {rule} findings, got {fired:?}"
        );
    }
}

#[test]
fn bx010_names_the_transitive_chain() {
    // The two-hop `entry -> helper -> FileStore::read` leak must be caught
    // and the diagnostic must spell out the call chain to the sink.
    let text = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bx010_bad.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    let diags = lint_source("crates/fixture/src/lib.rs", &text, &Config::default());
    let entry = diags
        .iter()
        .find(|d| d.rule == "BX010" && d.message.contains("::entry`"))
        .unwrap_or_else(|| panic!("no BX010 finding for the 2-hop entry fn: {diags:?}"));
    assert!(
        entry.message.contains("helper") && entry.message.contains("FileStore::read"),
        "chain diagnostic should walk through the helper to the sink: {}",
        entry.message
    );
}

#[test]
fn stale_graph_suppression_fails_the_gate() {
    // A BX010 baseline entry that matches nothing must fail the gate just
    // like a stale stream-tier entry: graph findings are stale-checked too.
    let toml = r#"
[[allow]]
rule = "BX010"
path = "crates/fixture/src/lib.rs"
contains = "reaches_nothing_anymore"
justification = "kept after the bypass was routed through the pager"
"#;
    let config = Config::parse(toml).expect("baseline parses");
    let text = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bx010_clean.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    let diags = lint_source("crates/fixture/src/lib.rs", &text, &config);
    let outcome = apply_baseline(diags, &config);
    assert_eq!(outcome.stale_allows.len(), 1, "{:?}", outcome.stale_allows);
    assert!(
        !outcome.is_clean(),
        "a stale BX010 [[allow]] must fail the gate"
    );
    assert!(
        outcome.stale_allows[0].contains("BX010"),
        "stale message names the rule: {}",
        outcome.stale_allows[0]
    );
}

#[test]
fn bx015_names_the_cycle_and_exports_witnesses() {
    // The 3-lock cycle fixture must produce one finding that spells out the
    // full cycle in lock-identity terms.
    let text = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bx015_bad.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    let diags = lint_source("crates/fixture/src/lib.rs", &text, &Config::default());
    let cycle = diags
        .iter()
        .find(|d| d.rule == "BX015")
        .unwrap_or_else(|| panic!("no BX015 finding: {diags:?}"));
    for lock in ["Triple.a", "Triple.b", "Triple.c"] {
        assert!(
            cycle.message.contains(lock),
            "cycle message should name {lock}: {}",
            cycle.message
        );
    }
    assert!(
        cycle.message.contains("lock-order.json"),
        "finding should point at the witness artifact: {}",
        cycle.message
    );
}

#[test]
fn stale_ratchet_fails_the_gate() {
    // A [[ratchet]] entry whose site was retired must fail the gate, same
    // as a stale [[allow]]: the sync-readiness baseline only shrinks.
    let toml = r#"
[[ratchet]]
path = "crates/fixture/src/lib.rs"
contains = "site_that_was_retired"
justification = "kept after the cell was converted to a Mutex"
"#;
    let config = Config::parse(toml).expect("baseline parses");
    let text = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bx018_clean.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    let diags = lint_source("crates/fixture/src/lib.rs", &text, &config);
    let outcome = apply_baseline(diags, &config);
    assert_eq!(
        outcome.stale_ratchets.len(),
        1,
        "{:?}",
        outcome.stale_ratchets
    );
    assert!(
        !outcome.is_clean(),
        "a stale [[ratchet]] must fail the gate"
    );
    assert!(
        outcome.stale_ratchets[0].contains("retired"),
        "stale message explains the fix: {}",
        outcome.stale_ratchets[0]
    );
}

#[test]
fn live_ratchet_covers_bx018_outside_the_budget() {
    // Ratcheted findings are accounted separately: they do not consume
    // max_baselined headroom and do not land in unsuppressed.
    let toml = r#"
[limits]
max_baselined = 0

[[ratchet]]
path = "crates/fixture/src/lib.rs"
justification = "fixture exercises deliberate survivors"
"#;
    let config = Config::parse(toml).expect("baseline parses");
    let text = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bx018_bad.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    let diags = lint_source("crates/fixture/src/lib.rs", &text, &config);
    let outcome = apply_baseline(diags, &config);
    assert_eq!(outcome.ratcheted.len(), 5, "{:?}", outcome.ratcheted);
    assert!(
        !outcome.unsuppressed.iter().any(|d| d.rule == "BX018"),
        "ratcheted findings must not stay unsuppressed: {:?}",
        outcome.unsuppressed
    );
    assert!(
        outcome.budget_violations.is_empty(),
        "ratcheted findings are outside max_baselined: {:?}",
        outcome.budget_violations
    );
    assert!(outcome.stale_ratchets.is_empty());
}

#[test]
fn unratcheted_bx018_is_a_hard_error() {
    // Without a matching [[ratchet]] entry, BX018 findings cannot be
    // absorbed by [[allow]] entries — new shared state is a hard stop.
    let toml = r#"
[[allow]]
rule = "BX018"
path = "crates/fixture/src/lib.rs"
justification = "attempting to baseline the ratchet rule"
"#;
    let config = Config::parse(toml).expect("baseline parses");
    let text = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bx018_bad.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    let diags = lint_source("crates/fixture/src/lib.rs", &text, &config);
    let outcome = apply_baseline(diags, &config);
    assert_eq!(
        outcome
            .unsuppressed
            .iter()
            .filter(|d| d.rule == "BX018")
            .count(),
        5,
        "BX018 must ignore [[allow]] entries: {:?}",
        outcome.unsuppressed
    );
    assert!(!outcome.is_clean());
}

#[test]
fn baseline_budget_violation_fails_the_gate() {
    let toml = r#"
[limits]
max_baselined = 1

[[allow]]
rule = "BX003"
path = "crates/fixture/src/lib.rs"
justification = "fixture exercises documented contract panics"
"#;
    let config = Config::parse(toml).expect("baseline parses");
    let text = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bx003_bad.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    let diags = lint_source("crates/fixture/src/lib.rs", &text, &config);
    let outcome = apply_baseline(diags, &config);
    assert!(outcome.suppressed.len() > 1, "fixture should baseline >1");
    assert_eq!(outcome.budget_violations.len(), 1);
    assert!(
        !outcome.is_clean(),
        "exceeding max_baselined must fail the gate"
    );
}

#[test]
fn stale_suppression_fails_the_gate() {
    let toml = r#"
[[allow]]
rule = "BX003"
path = "crates/fixture/src/lib.rs"
contains = "this snippet appears nowhere"
justification = "entry kept after the finding was fixed"
"#;
    let config = Config::parse(toml).expect("baseline parses");
    let text = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bx003_clean.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    let diags = lint_source("crates/fixture/src/lib.rs", &text, &config);
    let outcome = apply_baseline(diags, &config);
    assert_eq!(outcome.stale_allows.len(), 1, "{:?}", outcome.stale_allows);
    assert!(!outcome.is_clean(), "a stale [[allow]] must fail the gate");
    assert!(
        outcome.stale_allows[0].contains("BX003"),
        "stale message names the rule: {}",
        outcome.stale_allows[0]
    );
}

#[test]
fn live_suppression_keeps_the_gate_green() {
    let toml = r#"
[[allow]]
rule = "BX003"
path = "crates/fixture/src/lib.rs"
justification = "fixture exercises documented contract panics"

[[allow]]
rule = "BX004"
path = "crates/fixture/src/lib.rs"
justification = "fixture exercises provably-safe casts"
"#;
    let config = Config::parse(toml).expect("baseline parses");
    let text = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bx003_bad.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    let diags = lint_source("crates/fixture/src/lib.rs", &text, &config);
    let outcome = apply_baseline(diags, &config);
    assert!(
        outcome.unsuppressed.is_empty(),
        "{:?}",
        outcome.unsuppressed
    );
    assert_eq!(
        outcome.stale_allows.len(),
        1,
        "the BX004 entry matches nothing in the BX003 fixture"
    );
    assert_eq!(outcome.suppressed.len(), 4);
}
