//! BX010 bad: non-pager code reaches the raw store surface, directly and
//! through a two-hop helper chain, bypassing the blessed `Pager` API.

/// The raw disk surface.
pub struct FileStore;

impl FileStore {
    /// Raw block read — a BX010 sink.
    pub fn read(&self) {}
    /// Raw torn write — a BX010 sink.
    pub fn write_torn(&mut self) {}
}

/// The blessed, accounted I/O surface.
pub struct Pager;

impl Pager {
    /// Accounted read: the only sanctioned route to the raw store.
    pub fn read(&self, s: &FileStore) {
        s.read();
    }
}

// Violation 1: a helper touches the raw store with a typed receiver.
fn helper(s: &FileStore) {
    s.read();
}

// Violation 2: transitive — two hops of indirection must not hide the leak.
pub fn entry(s: &FileStore) {
    helper(s);
}

// Clean: routed through the blessed Pager surface.
pub fn fine(p: &Pager, s: &FileStore) {
    p.read(s);
}
