//! BX005 fixture: an audit-report producer without `#[must_use]`, and a
//! call site that discards the report.

/// Produces the invariant audit.
pub fn audit(tree: &Tree) -> AuditReport {
    tree.check()
}

fn driver(tree: &Tree) {
    // Discarded — the whole point of the audit is lost.
    audit(tree);
}
