//! BX014 bad: `OpSpan::op` constructed after fallible work — early-return
//! paths run with no attribution window.

/// A structure with gated operations.
pub struct Tree;

impl Tree {
    /// The `?` can exit before the span opens.
    pub fn late(&self) -> Result<(), PagerError> {
        self.gate()?;
        let _span = OpSpan::op("tree", "insert");
        Ok(())
    }

    fn gate(&self) -> Result<(), PagerError> {
        Ok(())
    }
}

/// A plain `return` before the span has the same problem.
pub fn late_return(flag: bool) -> u8 {
    if flag {
        return 0;
    }
    let _span = OpSpan::op("tree", "query");
    1
}
