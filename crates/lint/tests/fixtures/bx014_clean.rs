//! BX014 clean: the op span opens first; phase spans inside an open window
//! are exempt.

/// A structure with gated operations.
pub struct Tree;

impl Tree {
    /// Span first, then fallible work; later phase spans are refinements.
    pub fn good(&self) -> Result<(), PagerError> {
        let _span = OpSpan::op("tree", "insert");
        self.gate()?;
        let _phase = OpSpan::phase("split");
        Ok(())
    }

    fn gate(&self) -> Result<(), PagerError> {
        Ok(())
    }
}
