//! BX012 clean: every I/O-error `Result` is propagated, branched on, or
//! meaningfully consumed.

/// The pager's typed error.
pub struct PagerError;

fn raw() -> Result<(), PagerError> {
    Ok(())
}

fn wraps() -> Result<(), PagerError> {
    raw()?;
    Ok(())
}

/// Propagated with `?`.
pub fn propagates() -> Result<(), PagerError> {
    wraps()?;
    Ok(())
}

/// Both arms handled meaningfully.
pub fn branches() -> u8 {
    match wraps() {
        Ok(v) => consume(v),
        Err(e) => report(e),
    }
}

/// Bound and used.
pub fn binds() -> bool {
    let outcome = wraps();
    outcome.is_ok()
}
