//! BX020 clean: the durable-replace idiom syncs the replacement before
//! renaming it over the live file, and raw writes appear only in tests.

use std::fs::{self, File};

/// Durable replace: fsync the replacement, then publish it atomically.
pub fn publish(tmp_file: &File, tmp: &str, live: &str) -> std::io::Result<()> {
    tmp_file.sync_all()?;
    fs::rename(tmp, live)?;
    Ok(())
}

/// The same discipline through the log-store seam: `sync()` is the fsync.
pub fn rotate(tmp_file: &File, tmp: &str, live: &str) -> std::io::Result<()> {
    tmp_file.sync_data()?;
    fs::rename(tmp, live)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use std::io::Write;

    #[test]
    fn scratch_writes_are_fine_in_tests() {
        let mut f = std::fs::File::create("/tmp/scratch").unwrap();
        f.write_all(b"test-only bytes").unwrap();
    }
}
