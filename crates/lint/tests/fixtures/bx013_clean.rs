//! BX013 clean: borrow windows are disjoint — dropped, scoped, on distinct
//! fields, or shared-only.

/// Frame table with interior mutability.
pub struct Frames {
    table: RefCell<Vec<u8>>,
    other: RefCell<Vec<u8>>,
}

impl Frames {
    /// Explicit `drop` closes the first window.
    pub fn dropped(&self) {
        let guard = self.table.borrow_mut();
        drop(guard);
        self.table.borrow();
    }

    /// An inner scope closes the first window.
    pub fn scoped(&self) {
        {
            let guard = self.table.borrow_mut();
            guard.len();
        }
        self.table.borrow_mut();
    }

    /// Distinct fields never conflict.
    pub fn distinct(&self) {
        let a = self.table.borrow();
        let b = self.other.borrow_mut();
        use_both(a, b);
    }

    /// Shared-with-shared is fine.
    pub fn shared(&self) {
        let a = self.table.borrow();
        self.table.borrow();
        a.len();
    }
}
