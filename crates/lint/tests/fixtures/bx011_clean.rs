//! BX011 clean: owned state only; test-only interior mutability is exempt.

/// A cache with owned, Sync-ready state.
pub struct Cache {
    slots: Vec<u8>,
    hits: u64,
}

impl Cache {
    /// Public API over owned state.
    pub fn api(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    struct Scratch {
        cell: RefCell<u8>,
    }
}
