//! BX015 bad: a three-lock cycle A -> B -> C -> A, one edge per method and
//! one of them taken through the blessed `lock_unpoisoned` helper.

/// Three locks acquired in mutually inconsistent orders.
pub struct Triple {
    a: Mutex<u8>,
    b: Mutex<u8>,
    c: Mutex<u8>,
}

/// Poison-recovering acquisition helper (same shape as the pager's).
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl Triple {
    /// Takes `b` while holding `a`.
    pub fn ab(&self) -> u8 {
        let g = self.a.lock();
        let h = self.b.lock();
        *g + *h
    }

    /// Takes `c` while holding `b` (acquired through the helper).
    pub fn bc(&self) -> u8 {
        let g = lock_unpoisoned(&self.b);
        let h = self.c.lock();
        *g + *h
    }

    /// Takes `a` while holding `c` — closes the cycle.
    pub fn ca(&self) -> u8 {
        let g = self.c.lock();
        let h = lock_unpoisoned(&self.a);
        *g + *h
    }
}
