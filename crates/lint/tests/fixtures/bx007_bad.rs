//! BX007 fixture: wall-clock reads in library code. Every clock access is
//! nondeterministic and would make the seeded crash sweeps unreproducible.

use std::time::{Instant, SystemTime};

fn stamp_op(log: &mut Vec<u64>) {
    let since = SystemTime::now();
    let t = Instant::now();
    log.push(since.elapsed().map(|d| d.as_nanos() as u64).unwrap_or(0));
    let _ = t;
}
