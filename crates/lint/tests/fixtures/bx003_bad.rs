//! BX003 fixture: panics in non-test library code.

fn brittle(map: &Map, key: u32) -> u64 {
    let hit = map.get(&key).unwrap();
    let also = map.get(&key).expect("key present");
    if hit != also {
        panic!("impossible");
    }
    match hit {
        0 => unreachable!("zero is reserved"),
        n => n,
    }
}
