//! BX006 fixture: every public item documented.

/// A documented struct.
pub struct Documented {
    /// A documented field.
    pub field: u32,
}

/// Adds one.
pub fn documented(x: u32) -> u32 {
    x + 1
}

fn private_needs_no_docs(x: u32) -> u32 {
    x
}

pub use other::Reexport;
