//! BX006 fixture: undocumented public items.

pub struct Opaque {
    /// Documented field next to an undocumented one.
    pub fine: u32,
    pub mystery: u32,
}

pub fn what_does_this_do(x: u32) -> u32 {
    x + 1
}
