//! BX019 bad: bare relaxed atomic orderings in library code — the
//! workspace standardizes on SeqCst.

/// Counter pair read and bumped with the weakest ordering.
pub struct Stats {
    reads: AtomicU64,
}

impl Stats {
    /// Loads with a relaxed ordering.
    pub fn peek(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Stores with a relaxed ordering.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
    }
}
