//! BX016 clean: the same shapes, but the guard is dropped (explicitly or by
//! a scoped block) before any call that reaches the raw store.

/// Raw disk surface (a BX010/BX016 sink type).
pub struct FileStore;

impl FileStore {
    /// Raw block read.
    pub fn read_block(&self) -> u8 {
        0
    }
}

/// A cache that releases its map lock before touching the disk.
pub struct Cache {
    map: Mutex<u8>,
    store: FileStore,
}

impl Cache {
    fn journaled(&self) -> u8 {
        self.store.read_block()
    }

    /// Copies what it needs, drops the guard, then reads.
    pub fn cool_direct(&self) -> u8 {
        let g = self.map.lock();
        let cached = *g;
        drop(g);
        cached + self.store.read_block()
    }

    /// Scoped guard window ends before the helper call.
    pub fn cool_transitive(&self) -> u8 {
        let cached = {
            let g = self.map.lock();
            *g
        };
        cached + self.journaled()
    }
}
