//! BX005 fixture: `#[must_use]` audit producer and a consumed report.

/// Produces the invariant audit.
#[must_use]
pub fn audit(tree: &Tree) -> AuditReport {
    tree.check()
}

fn driver(tree: &Tree) -> bool {
    let report = audit(tree);
    report.ok()
}
