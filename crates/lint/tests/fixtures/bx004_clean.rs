//! BX004 fixture: checked conversions instead of `as`.

fn converts(slots: u64, count: usize) -> Result<(usize, u16), CastOverflow> {
    let index = usize::try_from(slots).map_err(|_| CastOverflow)?;
    let on_disk = u16::try_from(count).map_err(|_| CastOverflow)?;
    // `as` to a non-integer type is outside BX004's scope.
    let any = &index as &dyn std::any::Any;
    let _ = any;
    Ok((index, on_disk))
}
