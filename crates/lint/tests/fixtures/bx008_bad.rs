//! BX008 fixture: pager/WAL I/O `Result`s silenced instead of handled.
//! Each discard throws away the only signal that the disk is failing or
//! that the store has entered degraded mode.

fn silence_faults(pager: &SharedPager, lidf: &mut Lidf<Rec>, id: BlockId) {
    let _ = pager.try_write(id, &[0u8; 64]); // wildcard bind
    pager.try_resume(); // bare statement
    pager.try_read(id).ok(); // error mapped to None and dropped
    let _ = Pager::open_file("labels.bin", 64); // path-call wildcard
    lidf.try_free(Lid(3)).ok(); // chained discard
}
