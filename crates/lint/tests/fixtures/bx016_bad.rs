//! BX016 bad: a cache lock held across raw-store I/O — once directly, once
//! through a `journaled()`-style helper the call graph has to follow.

/// Raw disk surface (a BX010/BX016 sink type).
pub struct FileStore;

impl FileStore {
    /// Raw block read.
    pub fn read_block(&self) -> u8 {
        0
    }
}

/// A cache whose map lock brackets disk reads.
pub struct Cache {
    map: Mutex<u8>,
    store: FileStore,
}

impl Cache {
    fn journaled(&self) -> u8 {
        self.store.read_block()
    }

    /// Holds the map guard across a *direct* store read.
    pub fn hot_direct(&self) -> u8 {
        let g = self.map.lock();
        *g + self.store.read_block()
    }

    /// Holds the map guard across a helper that reaches the store.
    pub fn hot_transitive(&self) -> u8 {
        let g = self.map.lock();
        *g + self.journaled()
    }
}
