//! BX002 fixture: no filesystem access; persistence goes through the
//! scheme API, which owns the accounted pager traffic.

fn persist(scheme: &mut dyn Scheme, e: ElementId) {
    scheme.flush(e);
}
