//! BX019 clean: SeqCst everywhere in library code; relaxed orderings are
//! fine inside test modules.

/// Counter pair using the workspace-standard ordering.
pub struct Stats {
    reads: AtomicU64,
}

impl Stats {
    /// Loads with the standard ordering.
    pub fn peek(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    fn peek_relaxed(n: &AtomicU64) -> u64 {
        n.load(Ordering::Relaxed)
    }
}
