//! BX018 clean: Sync-ready constructs only — locks, atomics, shared-
//! ownership via Arc is owned state as far as the ratchet is concerned.
//! Test-only interior mutability stays exempt.

/// A cache built from Send + Sync parts.
pub struct Cache {
    slots: Mutex<Vec<u8>>,
    hits: AtomicU64,
    shared: Arc<Vec<u8>>,
}

impl Cache {
    /// Public API over Sync-ready state.
    pub fn api(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    struct Scratch {
        cell: RefCell<u8>,
    }
}
