//! BX017 bad: the same non-reentrant lock taken twice on one path — once
//! directly, once through a helper that locks the same field.

/// A counter whose lock gets re-taken while still held.
pub struct Counter {
    n: Mutex<u8>,
}

impl Counter {
    fn locked_bump(&self) -> u8 {
        let g = self.n.lock();
        *g
    }

    /// Re-locks `n` directly while the first guard is live.
    pub fn double_direct(&self) -> u8 {
        let g = self.n.lock();
        let h = self.n.lock();
        *g + *h
    }

    /// Calls a helper that locks `n` while already holding it.
    pub fn double_transitive(&self) -> u8 {
        let g = self.n.lock();
        *g + self.locked_bump()
    }
}
