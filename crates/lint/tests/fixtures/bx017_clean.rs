//! BX017 clean: the guard is released (drop or scope end) before the lock
//! is taken again, so the windows never overlap.

/// A counter that always releases before re-locking.
pub struct Counter {
    n: Mutex<u8>,
}

impl Counter {
    fn locked_bump(&self) -> u8 {
        let g = self.n.lock();
        *g
    }

    /// Explicit drop between the two acquisitions.
    pub fn serial_direct(&self) -> u8 {
        let g = self.n.lock();
        let first = *g;
        drop(g);
        let h = self.n.lock();
        first + *h
    }

    /// Scoped first window, helper runs after it closes.
    pub fn serial_transitive(&self) -> u8 {
        let first = {
            let g = self.n.lock();
            *g
        };
        first + self.locked_bump()
    }
}
