//! BX015 clean: the same three locks, always acquired in the one global
//! order a -> b -> c. The order graph is a DAG, so no cycle fires.

/// Three locks with a consistent acquisition order.
pub struct Triple {
    a: Mutex<u8>,
    b: Mutex<u8>,
    c: Mutex<u8>,
}

impl Triple {
    /// Takes `b` while holding `a` — with the order.
    pub fn ab(&self) -> u8 {
        let g = self.a.lock();
        let h = self.b.lock();
        *g + *h
    }

    /// Takes `c` while holding `b` — with the order.
    pub fn bc(&self) -> u8 {
        let g = self.b.lock();
        let h = self.c.lock();
        *g + *h
    }

    /// Takes `c` while holding `a` — skipping a level is still ordered.
    pub fn ac(&self) -> u8 {
        let g = self.a.lock();
        let h = self.c.lock();
        *g + *h
    }
}
