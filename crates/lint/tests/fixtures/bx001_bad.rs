//! BX001 fixture: direct pager traffic outside a designated I/O module.

fn sneak_a_read(pager: &mut Pager, id: BlockId) -> Vec<u8> {
    // Unaccounted block transfer — bypasses the scheme API.
    pager.read(id)
}

fn sneak_an_alloc(state: &mut State) -> BlockId {
    state.pager.alloc()
}

fn path_form() {
    Pager::free(BlockId(7));
}
