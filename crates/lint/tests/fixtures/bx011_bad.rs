//! BX011 bad: interior-mutability and shared-ownership sites in library
//! code — each one is a tracked concurrency-readiness finding.

/// A cache full of thread-hostile state.
pub struct Cache {
    slots: RefCell<Vec<u8>>,
    hits: Cell<u64>,
    shared: Rc<Vec<u8>>,
}

static mut GLOBAL: u64 = 0;

thread_local! {
    static LOCAL: RefCell<u8> = RefCell::new(0);
}

impl Cache {
    fn touch(&self) {
        self.slots.borrow();
    }

    /// Public API that reaches the RefCell through a private helper.
    pub fn api(&self) {
        self.touch();
    }
}
