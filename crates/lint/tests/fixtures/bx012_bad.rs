//! BX012 bad: `Result`s carrying an I/O error type are swallowed — through
//! a wrapper, so only the transitive analysis can see them.

/// The pager's typed error.
pub struct PagerError;

fn raw() -> Result<(), PagerError> {
    Ok(())
}

// Transitive producer: returns a Result and `?`-propagates an I/O Result.
fn wraps() -> Result<(), PagerError> {
    raw()?;
    Ok(())
}

/// Wildcard-dropped.
pub fn drops() {
    let _ = wraps();
}

/// Discarded as a bare statement.
pub fn bare() {
    wraps();
}

/// `.ok()`-silenced.
pub fn silenced() {
    wraps().ok();
}

/// Matched with an ignoring error arm.
pub fn ignored() {
    match wraps() {
        Ok(v) => keep(v),
        Err(_) => {}
    }
}

/// Propagation is fine.
pub fn fine() -> Result<(), PagerError> {
    wraps()?;
    Ok(())
}
