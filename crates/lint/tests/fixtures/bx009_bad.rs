//! BX009 fixture: trace spans dropped on construction or leaked. Each one
//! corrupts the I/O attribution the profile gate depends on — a dropped
//! span covers nothing, a forgotten span never closes.

fn broken_observability(tree: &mut WBox) {
    OpSpan::op("W-BOX", "insert"); // bare statement: closes immediately
    let _ = OpSpan::phase("split"); // wildcard bind: same, just wordier
    let span = OpSpan::op("W-BOX", "delete");
    mem::forget(span); // leaked frame skews every enclosing span
    tree.insert_before(anchor);
}
