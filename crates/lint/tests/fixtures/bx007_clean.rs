//! BX007 fixture: determinism preserved — ordering comes from a logical
//! tick counter threaded through the API, never from a clock.

fn stamp_op(log: &mut Vec<u64>, tick: u64) -> u64 {
    log.push(tick);
    tick + 1
}
