//! BX009 fixture: every span is bound to a named local (underscore-prefixed
//! is fine — the binding still lives to the end of the scope), returned, or
//! passed onward, so its RAII window covers the work it labels.

fn observed_insert(tree: &mut WBox) {
    let _span = OpSpan::op("W-BOX", "insert");
    tree.insert_before(anchor);
    {
        let _phase = OpSpan::phase("split");
        tree.split_leaf();
    }
}

fn handed_to_caller() -> OpSpan {
    OpSpan::op("B-BOX", "bulk_load")
}

fn stored_in_guard(keeper: &mut Vec<OpSpan>) {
    keeper.push(OpSpan::phase("relabel"));
}
