//! BX018 bad: new interior-mutability and shared-ownership sites in library
//! code — each regresses the burned-down Send/Sync baseline and, with no
//! matching [[ratchet]] entry, is a hard error.

/// A cache full of thread-hostile state.
pub struct Cache {
    slots: RefCell<Vec<u8>>,
    hits: Cell<u64>,
    shared: Rc<Vec<u8>>,
}

static mut GLOBAL: u64 = 0;

thread_local! {
    static LOCAL: RefCell<u8> = RefCell::new(0);
}

impl Cache {
    /// Public API over the regressed state.
    pub fn api(&self) {
        self.slots.borrow();
    }
}
