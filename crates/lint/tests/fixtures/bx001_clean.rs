//! BX001 fixture: consumer code that stays behind the scheme API.

fn lookup(scheme: &mut dyn Scheme, e: ElementId) -> Label {
    scheme.label_of(e)
}

fn not_a_pager(reader: &mut BufReader) -> Vec<u8> {
    // `read` on a non-pager receiver is fine.
    reader.read(16)
}
