//! BX004 fixture: truncating `as` casts to integer types.

fn truncates(slots: u64, count: usize) -> (usize, u16) {
    let index = slots as usize;
    let on_disk = count as u16;
    (index, on_disk)
}
