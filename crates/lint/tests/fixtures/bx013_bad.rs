//! BX013 bad: overlapping `RefCell` borrow windows on the same field — a
//! panic today, a latch-order violation tomorrow.

/// Frame table with interior mutability.
pub struct Frames {
    table: RefCell<Vec<u8>>,
    other: RefCell<Vec<u8>>,
}

impl Frames {
    /// A let-bound mutable borrow is live to end of scope; re-borrowing the
    /// same field inside that window conflicts.
    pub fn clash(&self) {
        let guard = self.table.borrow_mut();
        self.table.borrow();
        guard.len();
    }

    /// Two temporary mutable borrows of the same field in one statement.
    pub fn temp_clash(&self) {
        swap(self.other.borrow_mut(), self.other.borrow_mut());
    }
}
