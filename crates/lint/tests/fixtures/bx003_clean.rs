//! BX003 fixture: typed errors in library code; panics confined to tests.

fn robust(map: &Map, key: u32) -> Result<u64, MissingKey> {
    map.get(&key).copied().ok_or(MissingKey(key))
}

fn parser_method(p: &mut Parser) -> Result<(), ParseError> {
    // A caller-defined `expect` that propagates with `?` is not
    // `Option::expect`.
    p.expect("<")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_here() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
