//! BX008 fixture: every pager/WAL I/O `Result` is consumed — propagated
//! with `?`, branched on, bound to a live name, or chained onward.

fn handle_faults(pager: &SharedPager, id: BlockId) -> Result<(), PagerError> {
    pager.try_write(id, &[0u8; 64])?;
    if pager.try_resume().is_ok() {
        mark_healthy();
    }
    let kept = pager.try_read(id).ok();
    let image = latest_image(log, 64, id).ok().and_then(|m| m.remove(&id.0));
    match Pager::open_file("labels.bin", 64) {
        Ok(reopened) => consume(reopened, kept, image),
        Err(e) => return Err(e.into()),
    }
    Ok(())
}
