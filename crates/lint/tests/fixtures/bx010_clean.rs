//! BX010 clean: every path to the raw store goes through the blessed
//! `Pager` surface, including helper indirection.

/// The raw disk surface.
pub struct FileStore;

impl FileStore {
    /// Raw block read — a BX010 sink.
    pub fn read(&self) {}
}

/// The blessed, accounted I/O surface.
pub struct Pager;

impl Pager {
    /// Accounted read: the only sanctioned route to the raw store.
    pub fn read(&self, s: &FileStore) {
        s.read();
    }
}

// Helpers that stay on the accounted path are fine, at any depth.
fn helper(p: &Pager, s: &FileStore) {
    p.read(s);
}

/// Entry point routed through the pager.
pub fn entry(p: &Pager, s: &FileStore) {
    helper(p, s);
}
