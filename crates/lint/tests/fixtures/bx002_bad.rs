//! BX002 fixture: filesystem access outside the pager's file backend.

use std::fs;

fn stash(data: &[u8]) {
    let _ = std::fs::write("/tmp/leak.bin", data);
    let _ = fs::read("/tmp/leak.bin");
}
