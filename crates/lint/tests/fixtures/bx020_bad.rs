//! BX020 bad: raw file writes outside the blessed store modules, and a
//! rename that publishes a replacement file nothing ever fsynced.

use std::fs::{self, File};
use std::io::Write;
use std::os::unix::fs::FileExt;

/// Side-channel durability: bytes written straight through a raw handle
/// never pass the accounted `FileStore`/`LogStore` layer, so the crash
/// matrix cannot tear them and the fsync poisoning rules never see them.
pub fn side_channel(file: &mut File, buf: &[u8]) -> std::io::Result<()> {
    file.write_all(buf)?;
    file.write_all_at(buf, 0)?;
    Ok(())
}

/// The classic atomic-replace bug: the replacement file's bytes were never
/// synced, so after power loss the live name can point at torn data.
pub fn publish(tmp: &str, live: &str) -> std::io::Result<()> {
    fs::rename(tmp, live)?;
    Ok(())
}
