//! Property tests for the hand-rolled lexer: a generated token sequence must
//! round-trip through `lex` exactly (kinds and texts), and arbitrary source
//! soup must produce a well-formed, gap-free, deterministic token stream.

use boxes_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// One generated token: its rendered source text plus the expectation.
#[derive(Clone, Debug)]
struct GenTok {
    /// Text as it appears in the source (line comments carry their `\n`).
    rendered: String,
    /// Kind the lexer must produce.
    kind: TokenKind,
    /// Exact token text the lexer must report (no trailing newline).
    text: String,
}

fn tok(kind: TokenKind, text: String) -> GenTok {
    GenTok {
        rendered: text.clone(),
        kind,
        text,
    }
}

/// Raw string literal: prefix, body, and enough hashes that the body cannot
/// terminate the literal early (`"` followed by >= `hashes` hash marks).
fn raw_string(prefix: &str, body: &str, extra_hashes: usize) -> GenTok {
    let bytes = body.as_bytes();
    let mut required = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'"' {
            let run = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count();
            required = required.max(run + 1);
        }
    }
    let hashes = required + extra_hashes;
    let text = format!("{prefix}{h}\"{body}\"{h}", h = "#".repeat(hashes),);
    tok(TokenKind::Str, text)
}

fn token_strategy() -> impl Strategy<Value = GenTok> {
    prop_oneof![
        // Identifiers, raw identifiers, and keywords (keywords are idents).
        (0usize..1000).prop_map(|n| tok(TokenKind::Ident, format!("x{n}"))),
        (0usize..1000).prop_map(|n| tok(TokenKind::Ident, format!("r#match{n}"))),
        Just(tok(TokenKind::Ident, "fn".into())),
        // Lifetimes vs char literals — the classic ambiguity.
        (0usize..100).prop_map(|n| tok(TokenKind::Lifetime, format!("'l{n}"))),
        Just(tok(TokenKind::Lifetime, "'_".into())),
        (0usize..7).prop_map(|n| {
            let c = ["'x'", "'\\''", "'\\n'", "'0'", "'é'", "'😀'", "b'z'"][n];
            tok(TokenKind::Char, c.into())
        }),
        // Numbers with bases, underscores, suffixes, exponents.
        (0usize..5).prop_map(|n| {
            let c = ["42", "0xFF_u32", "1_000u64", "1.5f64", "2e10"][n];
            tok(TokenKind::Num, c.into())
        }),
        // Plain and prefixed strings, escapes included.
        (0usize..1000).prop_map(|n| tok(TokenKind::Str, format!("\"s{n}\\\"q\\\\\""))),
        Just(tok(TokenKind::Str, "b\"bytes\"".into())),
        Just(tok(TokenKind::Str, "c\"cstr\"".into())),
        // Raw strings: every prefix, bodies that probe the hash terminator.
        ((0usize..3), (0usize..4), (0usize..3)).prop_map(|(p, b, extra)| {
            let prefix = ["r", "br", "cr"][p];
            let body = ["plain", "has \" quote", "deep \"## run", "hash# only"][b];
            raw_string(prefix, body, extra)
        }),
        // Comments: nested blocks, line comments end at their newline.
        (0usize..100).prop_map(|n| tok(
            TokenKind::BlockComment,
            format!("/* a{n} /* nested */ tail */"),
        )),
        (0usize..100).prop_map(|n| GenTok {
            rendered: format!("// note{n}\n"),
            kind: TokenKind::LineComment,
            text: format!("// note{n}"),
        }),
        // Punctuation arrives byte-by-byte.
        (0usize..5).prop_map(|n| {
            let c = [";", ",", "{", "}", "&"][n];
            tok(TokenKind::Punct, c.into())
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Space-joined generated tokens lex back to exactly the generated
    /// sequence: same kinds, same texts, nothing merged, split, or dropped.
    #[test]
    fn generated_tokens_round_trip(toks in prop::collection::vec(token_strategy(), 0..40)) {
        let src: String = toks
            .iter()
            .map(|t| t.rendered.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let lexed = lex(&src);
        prop_assert_eq!(lexed.len(), toks.len(), "token count for {:?}", src);
        for (got, want) in lexed.iter().zip(&toks) {
            prop_assert_eq!(got.kind, want.kind, "kind of {:?} in {:?}", want.text, src);
            prop_assert_eq!(got.text(&src), want.text, "text in {:?}", src);
        }
    }

    /// Arbitrary soup built from lexically spicy fragments: the lexer must
    /// not panic, must advance monotonically with no overlaps, must cover
    /// every non-whitespace byte, and must be deterministic.
    #[test]
    fn soup_lexes_total_and_gap_free(pieces in prop::collection::vec(0usize..19, 0..60)) {
        const POOL: [&str; 19] = [
            "'", "\"", "#", "r", "b", "c", "/", "*", "\n", " ", "é", "😀",
            "ident", "0", "1.5", "\\", ";", "{", "'a",
        ];
        let src: String = pieces.iter().map(|&i| POOL[i]).collect();
        let toks = lex(&src);
        let mut prev_end = 0usize;
        for t in &toks {
            prop_assert!(t.start >= prev_end, "overlap in {:?}", src);
            prop_assert!(t.end <= src.len() && t.start < t.end, "span in {:?}", src);
            // Bytes between tokens are whitespace only — nothing is skipped.
            prop_assert!(
                src[prev_end..t.start].bytes().all(|b| b.is_ascii_whitespace()),
                "gap {:?} in {:?}", &src[prev_end..t.start], src
            );
            prev_end = t.end;
        }
        prop_assert!(
            src[prev_end..].bytes().all(|b| b.is_ascii_whitespace()),
            "tail {:?} in {:?}", &src[prev_end..], src
        );
        let again = lex(&src);
        prop_assert_eq!(toks.len(), again.len());
        for (a, b) in toks.iter().zip(&again) {
            prop_assert_eq!((a.kind, a.start, a.end), (b.kind, b.start, b.end));
        }
    }
}
