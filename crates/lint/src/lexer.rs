//! Hand-rolled Rust lexer.
//!
//! The rule engine needs exactly enough lexical fidelity to tell *code* from
//! *not-code*: string literals (plain, raw, byte, C), character literals vs
//! lifetimes, nested block comments, raw identifiers. Everything else is
//! deliberately coarse — keywords arrive as plain [`TokenKind::Ident`] tokens
//! and multi-byte operators as consecutive [`TokenKind::Punct`] tokens, which
//! keeps the lexer small and the rules explicit about the sequences they
//! match.
//!
//! The lexer never panics: malformed or truncated input produces a best-effort
//! token stream, which is the right behavior for an analyzer that must report
//! on files it did not write.

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// Lifetime such as `'a` (also the anonymous `'_`).
    Lifetime,
    /// Character or byte-character literal, e.g. `'x'`, `'\''`, `b'\n'`.
    Char,
    /// String-ish literal: plain, raw, byte, or C string, prefix included.
    Str,
    /// Numeric literal (any base, underscores and suffix included).
    Num,
    /// `// …` comment, doc (`///`, `//!`) or plain.
    LineComment,
    /// `/* … */` comment, doc (`/** */`) or plain; nesting handled.
    BlockComment,
    /// A single punctuation byte (`::` arrives as two `:` tokens).
    Punct,
}

/// One lexed token: kind plus byte span and 1-based line/column.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based column (in bytes) of the first byte.
    pub col: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consume bytes while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }
}

/// Width in bytes of the UTF-8 sequence whose leading byte is `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xE0..=0xEF => 3,
        0xF0..=0xFF => 4,
        _ => 2,
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a complete token stream (comments included).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = if b == b'/' && cur.peek(1) == Some(b'/') {
            lex_line_comment(&mut cur)
        } else if b == b'/' && cur.peek(1) == Some(b'*') {
            lex_block_comment(&mut cur)
        } else if b == b'\'' {
            lex_quote(&mut cur)
        } else if b == b'"' {
            lex_string(&mut cur)
        } else if is_ident_start(b) {
            lex_ident_or_prefixed(&mut cur)
        } else if b.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            cur.bump();
            TokenKind::Punct
        };
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.eat_while(|b| b != b'\n');
    TokenKind::LineComment
}

/// Block comment with Rust's nesting semantics; unterminated comments consume
/// the rest of the file (still reported as a comment token).
fn lex_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump_n(2); // `/*`
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cur.bump_n(2);
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cur.bump_n(2);
            }
            (Some(_), _) => cur.bump(),
            (None, _) => break,
        }
    }
    TokenKind::BlockComment
}

/// `'` starts either a character literal or a lifetime. A lifetime is a `'`
/// followed by an identifier that is *not* closed by another `'`.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    match cur.peek(1) {
        Some(b'\\') => {
            lex_char_body(cur);
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            // The first char may be multi-byte (`'é'`): measure its UTF-8
            // width so the closing-quote probe lands after it, not inside it.
            let len = utf8_len(c);
            if cur.peek(1 + len) == Some(b'\'') {
                // 'x' / 'é' — a plain character literal of any width.
                cur.bump_n(2 + len);
                TokenKind::Char
            } else {
                cur.bump(); // `'`
                cur.eat_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            // Characters that cannot start an identifier, e.g. '(' or '0'.
            lex_char_body(cur);
            TokenKind::Char
        }
        None => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

/// Consume a character literal starting at `'`, handling escapes such as
/// `'\''` and `'\u{1F600}'`. Stops at the closing quote or end of line.
fn lex_char_body(cur: &mut Cursor<'_>) {
    cur.bump(); // opening `'`
    loop {
        match cur.peek(0) {
            Some(b'\\') => cur.bump_n(2),
            Some(b'\'') => {
                cur.bump();
                break;
            }
            Some(b'\n') | None => break,
            Some(_) => cur.bump(),
        }
    }
}

/// Plain (escaped) string body starting at `"`.
fn lex_string(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // opening `"`
    loop {
        match cur.peek(0) {
            Some(b'\\') => cur.bump_n(2),
            Some(b'"') => {
                cur.bump();
                break;
            }
            Some(_) => cur.bump(),
            None => break,
        }
    }
    TokenKind::Str
}

/// Raw string body: the cursor sits on `r`/`b`/`c`; `prefix_len` letters are
/// followed by `hashes` hash marks and the opening quote. Consumes through
/// the matching `"` + hashes terminator.
fn lex_raw_string(cur: &mut Cursor<'_>, prefix_len: usize, hashes: usize) -> TokenKind {
    cur.bump_n(prefix_len + hashes + 1); // letters, hashes, `"`
    'outer: loop {
        match cur.peek(0) {
            Some(b'"') => {
                for k in 0..hashes {
                    if cur.peek(1 + k) != Some(b'#') {
                        cur.bump();
                        continue 'outer;
                    }
                }
                cur.bump_n(1 + hashes);
                break;
            }
            Some(_) => cur.bump(),
            None => break,
        }
    }
    TokenKind::Str
}

/// An identifier-start byte may actually open a prefixed literal: `r"…"`,
/// `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `cr"…"`, `b'x'`, or a raw identifier
/// `r#ident`. Disambiguate by looking past the prefix.
fn lex_ident_or_prefixed(cur: &mut Cursor<'_>) -> TokenKind {
    let b = cur.peek(0).unwrap_or(0);
    let (prefix_len, raw_capable) = match (b, cur.peek(1)) {
        (b'r', _) => (1, true),
        (b'b', Some(b'r')) | (b'c', Some(b'r')) => (2, true),
        (b'b', _) | (b'c', _) => (1, false),
        _ => (0, false),
    };
    if prefix_len > 0 {
        if raw_capable {
            let mut hashes = 0;
            while cur.peek(prefix_len + hashes) == Some(b'#') {
                hashes += 1;
            }
            if cur.peek(prefix_len + hashes) == Some(b'"') {
                return lex_raw_string(cur, prefix_len, hashes);
            }
            if b == b'r' && hashes == 1 && cur.peek(2).is_some_and(is_ident_start) {
                // Raw identifier `r#type`.
                cur.bump_n(2);
                cur.eat_while(is_ident_continue);
                return TokenKind::Ident;
            }
        } else if cur.peek(prefix_len) == Some(b'"') {
            cur.bump_n(prefix_len);
            return lex_string(cur);
        } else if b == b'b' && cur.peek(1) == Some(b'\'') {
            cur.bump(); // `b`
            lex_char_body(cur);
            return TokenKind::Char;
        }
    }
    cur.eat_while(is_ident_continue);
    TokenKind::Ident
}

/// Numeric literal: integer or float, `0x`/`0o`/`0b` bases, underscores, and
/// trailing type suffixes (`u64`, `f32`, …) are all kept in one token.
fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    if cur.peek(0) == Some(b'0')
        && matches!(
            cur.peek(1),
            Some(b'x') | Some(b'o') | Some(b'b') | Some(b'X')
        )
    {
        cur.bump_n(2);
        cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        return TokenKind::Num;
    }
    cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
    // A fractional part only when followed by a digit — `0..5` and `1.max(2)`
    // must not swallow the dot.
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
    }
    // Type suffix or exponent letters.
    cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    TokenKind::Num
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"let s = r#"quote " inside"#;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quote")));
        // The quoted `"` must not terminate the raw string early.
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'x'");
        assert_eq!(chars[1].1, "'\\''");
    }

    #[test]
    fn multibyte_char_literal_is_char_not_lifetime() {
        let toks = kinds("let e = 'é'; let emoji = '😀'; fn g<'état>() {}");
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, ["'é'", "'😀'"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'état"));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = br#"raw"#; let c = c"cstr";"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 3);
    }

    #[test]
    fn raw_identifier_is_ident_not_string() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn numbers_keep_suffix_and_ranges_split() {
        let toks = kinds("0xFF_u32 1_000u64 0..5 1.5f64");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, ["0xFF_u32", "1_000u64", "0", "5", "1.5f64"]);
    }

    #[test]
    fn line_and_column_positions() {
        let src = "ab\n  cd";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["/* never closed", "\"open string", "r#\"open raw", "'"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn doc_comments_are_comments() {
        let toks = kinds("/// doc\n//! inner\n/** block doc */ fn x() {}");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[2].0, TokenKind::BlockComment);
    }
}
