//! Lightweight source model over the token stream.
//!
//! Rules do not get an AST — they get a [`SourceFile`]: the full token
//! stream, a *significant* (comment-free) view of it, bracket matching,
//! a per-token test-code mask (`#[cfg(test)]` / `#[test]` regions), and an
//! item-context map that says which tokens sit at item-declaration level and
//! under what kind of scope (module, inherent impl, trait impl, …). That is
//! enough to express every BX rule precisely without type information.

use crate::lexer::{lex, Token, TokenKind};

/// What kind of scope an item-level token sits in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// File top level or a `mod` body.
    Module,
    /// An `impl Type { … }` block (no trait).
    InherentImpl,
    /// An `impl Trait for Type { … }` block.
    TraitImpl,
    /// A `trait { … }` body.
    Trait,
    /// A `struct`/`enum`/`union` body (field declarations).
    DataBody,
}

/// A lexed source file plus the derived structure the rules consume.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The raw source text.
    pub text: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-comment) tokens.
    pub sig: Vec<usize>,
    /// Per significant token: does it sit inside test-only code?
    pub in_test: Vec<bool>,
    /// Per significant token: matching closer for `(`/`[`/`{`.
    pub close_of: Vec<Option<usize>>,
    /// Per significant token: matching opener for `)`/`]`/`}`.
    pub open_of: Vec<Option<usize>>,
    /// Per significant token: `Some(scope)` when at item-declaration level.
    pub item_ctx: Vec<Option<Scope>>,
    /// Byte offset of each line start (line `n` is `line_starts[n-1]`).
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Lex and analyze one source file.
    pub fn parse(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let path = path.into();
        let text = text.into();
        let tokens = lex(&text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let mut file = SourceFile {
            path,
            text,
            tokens,
            in_test: vec![false; sig.len()],
            close_of: vec![None; sig.len()],
            open_of: vec![None; sig.len()],
            item_ctx: vec![None; sig.len()],
            line_starts: Vec::new(),
            sig,
        };
        file.line_starts = std::iter::once(0)
            .chain(
                file.text
                    .bytes()
                    .enumerate()
                    .filter(|(_, b)| *b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        file.match_brackets();
        file.mark_test_regions();
        file.map_item_contexts();
        file
    }

    /// The significant token at sig-index `si`.
    pub fn stok(&self, si: usize) -> Option<&Token> {
        self.sig.get(si).and_then(|&raw| self.tokens.get(raw))
    }

    /// Text of the significant token at sig-index `si` (empty when out of
    /// range).
    pub fn stext(&self, si: usize) -> &str {
        self.stok(si).map(|t| t.text(&self.text)).unwrap_or("")
    }

    /// Number of significant tokens.
    pub fn slen(&self) -> usize {
        self.sig.len()
    }

    /// The trimmed source line containing significant token `si`.
    pub fn line_snippet(&self, si: usize) -> &str {
        let Some(tok) = self.stok(si) else { return "" };
        let start = self
            .line_starts
            .get(tok.line.saturating_sub(1))
            .copied()
            .unwrap_or(0);
        let end = self
            .line_starts
            .get(tok.line)
            .copied()
            .unwrap_or(self.text.len());
        self.text.get(start..end).unwrap_or("").trim()
    }

    fn match_brackets(&mut self) {
        let mut stack: Vec<(u8, usize)> = Vec::new();
        for si in 0..self.sig.len() {
            let t = self.stext(si);
            let Some(&b) = t.as_bytes().first() else {
                continue;
            };
            if t.len() != 1 {
                continue;
            }
            match b {
                b'(' | b'[' | b'{' => stack.push((b, si)),
                b')' | b']' | b'}' => {
                    let expect = match b {
                        b')' => b'(',
                        b']' => b'[',
                        _ => b'{',
                    };
                    // Pop through mismatches so one stray bracket does not
                    // desynchronize the rest of the file.
                    while let Some((open_b, open_si)) = stack.pop() {
                        if open_b == expect {
                            self.close_of[open_si] = Some(si);
                            self.open_of[si] = Some(open_si);
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// An attribute group starting at sig-index `si` (which must be `#`):
    /// returns `(close_index, idents_inside)` of the `[...]` group.
    fn attr_group(&self, si: usize) -> Option<(usize, Vec<String>)> {
        if self.stext(si) != "#" {
            return None;
        }
        let mut open = si + 1;
        if self.stext(open) == "!" {
            open += 1;
        }
        if self.stext(open) != "[" {
            return None;
        }
        let close = self.close_of.get(open).copied().flatten()?;
        let mut idents = Vec::new();
        for k in open + 1..close {
            if let Some(t) = self.stok(k) {
                if t.kind == TokenKind::Ident {
                    idents.push(t.text(&self.text).to_string());
                }
            }
        }
        Some((close, idents))
    }

    /// Mark `#[test]`, `#[cfg(test)]`-style attributed items (and everything
    /// inside them) as test code. Files under a `tests/` directory are test
    /// code in their entirety.
    fn mark_test_regions(&mut self) {
        if self.path.starts_with("tests/") || self.path.contains("/tests/") {
            self.in_test.iter_mut().for_each(|x| *x = true);
            return;
        }
        let mut si = 0;
        while si < self.slen() {
            let Some((close, idents)) = self.attr_group(si) else {
                si += 1;
                continue;
            };
            let testish = idents
                .iter()
                .any(|t| t == "test" || t == "should_panic" || t == "bench")
                && !idents.iter().any(|t| t == "not");
            if !testish {
                si = close + 1;
                continue;
            }
            // Skip any further attributes between this one and the item.
            let mut j = close + 1;
            while let Some((c, _)) = self.attr_group(j) {
                j = c + 1;
            }
            // The item extends to its body's closing brace, or to the next
            // `;` for braceless items. Bracket groups in the header (fn
            // params, generics as `[]`? no — only () and []) are skipped.
            let mut k = j;
            let mut item_end = self.slen().saturating_sub(1);
            while k < self.slen() {
                match self.stext(k) {
                    "{" => {
                        item_end = self.close_of.get(k).copied().flatten().unwrap_or(k);
                        break;
                    }
                    ";" => {
                        item_end = k;
                        break;
                    }
                    "(" | "[" => {
                        k = self.close_of.get(k).copied().flatten().unwrap_or(k) + 1;
                    }
                    _ => k += 1,
                }
            }
            for m in si..=item_end.min(self.slen().saturating_sub(1)) {
                self.in_test[m] = true;
            }
            si = item_end + 1;
        }
    }

    /// Classify the scope a `{` opens, from the header tokens since the last
    /// statement boundary.
    fn classify_header(&self, header: &[usize]) -> Option<Scope> {
        let texts: Vec<&str> = header.iter().map(|&si| self.stext(si)).collect();
        if texts.contains(&"fn") {
            return None; // function body: opaque to item rules
        }
        if texts.contains(&"impl") {
            // `for` at angle-bracket depth 0 distinguishes a trait impl;
            // `->` must not count its `>` against the depth.
            let mut depth = 0i32;
            for w in 0..texts.len() {
                match texts[w] {
                    "<" => depth += 1,
                    ">" if w == 0 || texts[w - 1] != "-" => depth -= 1,
                    "for" if depth <= 0 => return Some(Scope::TraitImpl),
                    _ => {}
                }
            }
            return Some(Scope::InherentImpl);
        }
        if texts.contains(&"mod") {
            return Some(Scope::Module);
        }
        if texts.contains(&"trait") {
            return Some(Scope::Trait);
        }
        if texts
            .iter()
            .any(|t| *t == "struct" || *t == "enum" || *t == "union")
        {
            return Some(Scope::DataBody);
        }
        None // match arms, plain blocks, initializers, macro bodies, …
    }

    /// Walk the file, recording for every token whether it sits at
    /// item-declaration level and under which scope. Function bodies and
    /// unclassifiable braces are opaque.
    fn map_item_contexts(&mut self) {
        let mut ctx = vec![None; self.slen()];
        let mut work: Vec<(usize, usize, Scope)> = vec![(0, self.slen(), Scope::Module)];
        while let Some((mut i, end, scope)) = work.pop() {
            let mut header: Vec<usize> = Vec::new();
            while i < end {
                match self.stext(i) {
                    "{" => {
                        let close = self
                            .close_of
                            .get(i)
                            .copied()
                            .flatten()
                            .unwrap_or(end.saturating_sub(1));
                        if let Some(inner) = self.classify_header(&header) {
                            work.push((i + 1, close.min(end), inner));
                        }
                        i = close + 1;
                        header.clear();
                    }
                    ";" | "}" => {
                        i += 1;
                        header.clear();
                    }
                    "(" | "[" => {
                        // Bracket groups in headers (fn params, attr args,
                        // array types) carry no item declarations.
                        header.push(i);
                        i = self.close_of.get(i).copied().flatten().unwrap_or(i) + 1;
                    }
                    _ => {
                        if let Some(slot) = ctx.get_mut(i) {
                            *slot = Some(scope);
                        }
                        header.push(i);
                        i += 1;
                    }
                }
            }
        }
        self.item_ctx = ctx;
    }

    /// What precedes the item whose first token (after attributes and
    /// qualifiers) is at sig-index `si`: whether a doc comment is attached
    /// and which attribute idents appear.
    pub fn leading_trivia(&self, si: usize) -> LeadingTrivia {
        let mut out = LeadingTrivia::default();
        let Some(&raw_start) = self.sig.get(si) else {
            return out;
        };
        let mut r = raw_start;
        while r > 0 {
            r -= 1;
            let Some(tok) = self.tokens.get(r) else { break };
            let text = tok.text(&self.text);
            match tok.kind {
                TokenKind::LineComment => {
                    if text.starts_with("///") {
                        out.has_doc = true;
                    }
                }
                TokenKind::BlockComment => {
                    if text.starts_with("/**") {
                        out.has_doc = true;
                    }
                }
                TokenKind::Ident => {
                    // Visibility and qualifier keywords between attributes
                    // and the item keyword.
                    if !matches!(
                        text,
                        "pub"
                            | "const"
                            | "async"
                            | "unsafe"
                            | "extern"
                            | "crate"
                            | "in"
                            | "self"
                            | "super"
                            | "default"
                    ) {
                        break;
                    }
                }
                TokenKind::Str => {} // the ABI string of `extern "C"`
                TokenKind::Punct => match text {
                    ")" => {
                        // pub(crate) / pub(in path): jump to the opener.
                        let mut depth = 1usize;
                        while r > 0 && depth > 0 {
                            r -= 1;
                            match self.tokens.get(r).map(|t| t.text(&self.text)) {
                                Some(")") => depth += 1,
                                Some("(") => depth -= 1,
                                _ => {}
                            }
                        }
                    }
                    "]" => {
                        // An attribute: collect its idents, jump past `#`.
                        let mut depth = 1usize;
                        let close = r;
                        while r > 0 && depth > 0 {
                            r -= 1;
                            match self.tokens.get(r).map(|t| t.text(&self.text)) {
                                Some("]") => depth += 1,
                                Some("[") => depth -= 1,
                                _ => {}
                            }
                        }
                        for k in r..close {
                            if let Some(t) = self.tokens.get(k) {
                                if t.kind == TokenKind::Ident {
                                    out.attr_idents.push(t.text(&self.text).to_string());
                                }
                            }
                        }
                        // Step over the `#` (and a possible `!`, which marks
                        // an inner attribute — those belong to the enclosing
                        // scope, so stop there).
                        if r > 0 && self.tokens.get(r - 1).map(|t| t.text(&self.text)) == Some("!")
                        {
                            break;
                        }
                        r = r.saturating_sub(1); // the `#`
                    }
                    _ => break,
                },
                _ => break,
            }
        }
        if out.attr_idents.iter().any(|a| a == "doc") {
            out.has_doc = true;
        }
        out
    }
}

/// Doc/attribute information preceding an item (see
/// [`SourceFile::leading_trivia`]).
#[derive(Default)]
pub struct LeadingTrivia {
    /// A `///` or `/** */` doc comment (or `#[doc …]` attribute) is attached.
    pub has_doc: bool,
    /// Every identifier appearing in the item's outer attributes.
    pub attr_idents: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() { x.unwrap(); }\n}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let unwrap_si = (0..f.slen()).find(|&i| f.stext(i) == "unwrap");
        let live_si = (0..f.slen()).find(|&i| f.stext(i) == "live");
        assert!(f.in_test[unwrap_si.expect("unwrap token present")]);
        assert!(!f.in_test[live_si.expect("live token present")]);
    }

    #[test]
    fn trait_impl_vs_inherent() {
        let src = "impl Foo { fn a() {} }\nimpl Bar for Foo { fn b() {} }";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut scopes = Vec::new();
        for i in 0..f.slen() {
            if f.stext(i) == "fn" {
                scopes.push(f.item_ctx[i]);
            }
        }
        assert_eq!(
            scopes,
            vec![Some(Scope::InherentImpl), Some(Scope::TraitImpl)]
        );
    }

    #[test]
    fn fn_bodies_are_opaque() {
        let src = "fn outer() { pub fn not_an_item() {} }";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        for i in 0..f.slen() {
            if f.stext(i) == "pub" {
                assert_eq!(f.item_ctx[i], None);
            }
        }
    }

    #[test]
    fn leading_doc_detection() {
        let src = "/// documented\n#[must_use]\npub fn x() {}\npub fn y() {}";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let pubs: Vec<usize> = (0..f.slen()).filter(|&i| f.stext(i) == "pub").collect();
        let first = f.leading_trivia(pubs[0]);
        assert!(first.has_doc);
        assert!(first.attr_idents.iter().any(|a| a == "must_use"));
        assert!(!f.leading_trivia(pubs[1]).has_doc);
    }
}
