//! The workspace call graph.
//!
//! Nodes are the [`FnItem`]s the item parser extracted; edges are call
//! sites, resolved without type information by a layered heuristic:
//!
//! 1. **Path calls** `Type::method(…)` resolve to methods of `Type` (any
//!    impl block for a type of that name, across crates).
//! 2. **Method calls** `recv.method(…)` resolve through the receiver's
//!    type when it is recoverable: `self` (the enclosing impl type), a
//!    typed parameter, or a local bound by `let x: T = …` / `let x =
//!    T::new(…)`. Type aliases are seen through (`SharedPager` → `Pager`).
//! 3. Everything else is an **explicit unknown edge**: the call links to
//!    *every* workspace method of that name with matching arity. Unknown
//!    edges make reachability queries sound-by-default — a rule that must
//!    not miss a path (BX010) includes them; a rule that must not spam
//!    (BX012's per-call-site check) restricts itself to resolved edges.
//!    The caveats live in DESIGN.md under "call-graph soundness".
//!
//! Calls that resolve to nothing in the workspace (std, vendored deps) get
//! no edge: the analysis is about workspace-internal discipline.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::TokenKind;
use crate::model::SourceFile;
use crate::parser::{FnItem, ParsedFile};

/// Index of a function node in [`CallGraph::fns`].
pub type FnId = usize;

/// How a call edge was resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// `Type::method(…)` or a free-function call resolved by name.
    Static,
    /// `recv.method(…)` with a recovered receiver type.
    Method,
    /// Receiver type unknown — candidate set is every same-name,
    /// same-arity method in the workspace.
    Unknown,
}

/// One call edge.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Callee node.
    pub to: FnId,
    /// Resolution class.
    pub kind: EdgeKind,
    /// Sig-index of the callee name token at the call site (in the
    /// caller's file).
    pub call_si: usize,
    /// 1-based line of the call site.
    pub line: usize,
}

/// The whole-workspace call graph.
pub struct CallGraph {
    /// All function nodes, indexed by [`FnId`].
    pub fns: Vec<FnItem>,
    /// Outgoing edges per node.
    pub edges: Vec<Vec<Edge>>,
    /// Incoming edge sources per node (deduplicated).
    pub callers: Vec<Vec<FnId>>,
}

/// A call site classification before resolution.
enum CallForm {
    /// `name(…)` — free function.
    Free,
    /// `Type::name(…)`.
    Path(String),
    /// `recv.name(…)` with recovered receiver base type.
    TypedMethod(String),
    /// `recv.name(…)`, receiver type unknown.
    UnknownMethod,
}

impl CallGraph {
    /// Build the graph over every parsed file.
    pub fn build(files: &[SourceFile], parsed: &[ParsedFile]) -> CallGraph {
        let mut fns: Vec<FnItem> = Vec::new();
        let mut aliases: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut fields: BTreeMap<(String, String), String> = BTreeMap::new();
        for p in parsed {
            fns.extend(p.fns.iter().cloned());
            for (name, rhs) in &p.aliases {
                aliases.entry(name.clone()).or_default().extend(rhs.clone());
            }
            for (container, field, ty) in &p.fields {
                fields.insert((container.clone(), field.clone()), ty.clone());
            }
        }
        // Resolution indexes.
        let mut methods: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            match &f.self_ty {
                Some(ty) => {
                    methods
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                None => free.entry(f.name.clone()).or_default().push(id),
            }
            by_name.entry(f.name.clone()).or_default().push(id);
        }
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        for (id, f) in fns.iter().enumerate() {
            let Some((open, close)) = f.body else {
                continue;
            };
            let file = &files[f.file_idx];
            let locals = collect_local_types(file, f, open, close);
            let mut out = Vec::new();
            extract_calls(
                file, f, open, close, &locals, &aliases, &fields, &methods, &free, &by_name, &fns,
                &mut out,
            );
            edges[id] = out;
        }
        let mut callers: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
        for (from, out) in edges.iter().enumerate() {
            for e in out {
                callers[e.to].push(from);
            }
        }
        for c in &mut callers {
            c.sort_unstable();
            c.dedup();
        }
        CallGraph {
            fns,
            edges,
            callers,
        }
    }

    /// Forward BFS from `start`, following edges accepted by `follow` and
    /// not expanding through nodes rejected by `expand`. Returns every
    /// visited node (including `start`).
    pub fn reachable(
        &self,
        start: FnId,
        follow: impl Fn(&Edge) -> bool,
        expand: impl Fn(FnId) -> bool,
    ) -> BTreeSet<FnId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            if n != start && !expand(n) {
                continue;
            }
            for e in &self.edges[n] {
                if follow(e) && seen.insert(e.to) {
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }

    /// Reverse BFS: every node that can reach a node in `sinks` through
    /// edges accepted by `follow`, without the path passing *through* a
    /// node rejected by `via` (sinks themselves are always included;
    /// rejected nodes are not expanded backwards).
    pub fn reaching(
        &self,
        sinks: &BTreeSet<FnId>,
        follow: impl Fn(&Edge) -> bool,
        via: impl Fn(FnId) -> bool,
    ) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = sinks.clone();
        let mut queue: VecDeque<FnId> = sinks.iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            for &from in &self.callers[n] {
                if seen.contains(&from) {
                    continue;
                }
                let has_edge = self.edges[from].iter().any(|e| e.to == n && follow(e));
                if has_edge && via(from) && seen.insert(from) {
                    queue.push_back(from);
                }
            }
        }
        seen
    }

    /// The node containing significant-token index `si` of file `file_idx`,
    /// if any function body covers it.
    pub fn fn_at(&self, file_idx: usize, si: usize) -> Option<FnId> {
        self.fns
            .iter()
            .position(|f| f.file_idx == file_idx && f.body.is_some_and(|(o, c)| si >= o && si <= c))
    }

    /// One shortest call path (as function quals) from `from` to any node in
    /// `targets`, following `follow`-accepted edges; used for diagnostics.
    pub fn path_to(
        &self,
        from: FnId,
        targets: &BTreeSet<FnId>,
        follow: impl Fn(&Edge) -> bool,
        expand: impl Fn(FnId) -> bool,
    ) -> Vec<String> {
        let mut prev: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        let mut hit = None;
        'bfs: while let Some(n) = queue.pop_front() {
            if n != from && !expand(n) {
                continue;
            }
            for e in &self.edges[n] {
                if !follow(e) || prev.contains_key(&e.to) || e.to == from {
                    continue;
                }
                prev.insert(e.to, n);
                if targets.contains(&e.to) {
                    hit = Some(e.to);
                    break 'bfs;
                }
                queue.push_back(e.to);
            }
        }
        let Some(mut cur) = hit else {
            return vec![self.fns[from].qual()];
        };
        let mut path = vec![self.fns[cur].qual()];
        while let Some(&p) = prev.get(&cur) {
            path.push(self.fns[p].qual());
            cur = p;
            if cur == from {
                break;
            }
        }
        if path.last().map(String::as_str) != Some(self.fns[from].qual().as_str()) {
            path.push(self.fns[from].qual());
        }
        path.reverse();
        path
    }
}

/// Recover local-variable base types in a function body:
/// `let x: T = …`, `let x = T::new(…)` / `T::with_…(…)` / `T { … }`, plus
/// the function's typed parameters. Shared with the lock-set analysis
/// ([`crate::locks`]), which needs the same receiver typing.
pub(crate) fn collect_local_types(
    file: &SourceFile,
    f: &FnItem,
    open: usize,
    close: usize,
) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for (name, ty) in f.param_names.iter().zip(&f.param_types) {
        if !ty.is_empty() {
            map.insert(name.clone(), ty.clone());
        }
    }
    let mut k = open + 1;
    while k < close {
        if file.stext(k) != "let" {
            k += 1;
            continue;
        }
        // `let [mut] name …`
        let mut j = k + 1;
        if file.stext(j) == "mut" {
            j += 1;
        }
        let name = file.stext(j).to_string();
        if !file.stok(j).is_some_and(|t| t.kind == TokenKind::Ident) {
            k += 1;
            continue;
        }
        j += 1;
        let mut ty = String::new();
        if file.stext(j) == ":" {
            // Explicit annotation: take the base ident up to `=`/`;`.
            let mut m = j + 1;
            while m < close && !matches!(file.stext(m), "=" | ";") {
                let t = file.stext(m);
                if t == "<" {
                    break;
                }
                if file.stok(m).is_some_and(|tk| tk.kind == TokenKind::Ident)
                    && !matches!(t, "mut" | "dyn" | "impl" | "ref")
                {
                    ty = t.to_string();
                }
                m += 1;
            }
            j = m;
        }
        if ty.is_empty() && file.stext(j) == "=" {
            // `= Type::ctor(…)` or `= Type { … }` — an uppercase path head.
            let head = file.stext(j + 1);
            let headlike = file.stok(j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                && head.chars().next().is_some_and(|c| c.is_ascii_uppercase());
            if headlike
                && (file.stext(j + 2) == "{"
                    || (file.stext(j + 2) == ":" && file.stext(j + 3) == ":"))
            {
                ty = head.to_string();
            }
        }
        if !ty.is_empty() {
            map.insert(name, ty);
        }
        k += 1;
    }
    map
}

/// Arity of a call: top-level commas in the argument group plus one (zero
/// for an empty group).
fn call_arity(file: &SourceFile, open: usize, close: usize) -> usize {
    if close == open + 1 {
        return 0;
    }
    let mut commas = 0usize;
    let mut k = open + 1;
    let mut angle = 0i32;
    while k < close {
        match file.stext(k) {
            "(" | "[" | "{" => {
                k = file.close_of.get(k).copied().flatten().unwrap_or(k) + 1;
                continue;
            }
            "<" => angle += 1,
            ">" if file.stext(k.wrapping_sub(1)) != "-" => angle -= 1,
            "," if angle <= 0 => commas += 1,
            _ => {}
        }
        k += 1;
    }
    commas + 1
}

const KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "let", "fn", "move", "in", "as", "else",
    "break", "continue",
];

#[allow(clippy::too_many_arguments)]
fn extract_calls(
    file: &SourceFile,
    caller: &FnItem,
    open: usize,
    close: usize,
    locals: &BTreeMap<String, String>,
    aliases: &BTreeMap<String, Vec<String>>,
    fields: &BTreeMap<(String, String), String>,
    methods: &BTreeMap<(String, String), Vec<FnId>>,
    free: &BTreeMap<String, Vec<FnId>>,
    by_name: &BTreeMap<String, Vec<FnId>>,
    fns: &[FnItem],
    out: &mut Vec<Edge>,
) {
    for si in open + 1..close {
        let name = file.stext(si).to_string();
        if file.stok(si).map(|t| t.kind) != Some(TokenKind::Ident)
            || file.stext(si + 1) != "("
            || KEYWORDS.contains(&name.as_str())
        {
            continue;
        }
        let Some(args_close) = file.close_of.get(si + 1).copied().flatten() else {
            continue;
        };
        let arity = call_arity(file, si + 1, args_close);
        let form = classify_call(file, caller, locals, fields, aliases, si);
        let line = file.stok(si).map(|t| t.line).unwrap_or(0);
        let mut push_edges = |ids: &[FnId], kind: EdgeKind| {
            for &id in ids {
                out.push(Edge {
                    to: id,
                    kind,
                    call_si: si,
                    line,
                });
            }
        };
        match form {
            CallForm::Path(ty) => {
                let ty = if ty == "Self" {
                    caller.self_ty.clone().unwrap_or(ty)
                } else {
                    ty
                };
                if let Some(ids) = lookup_method(&ty, &name, methods, aliases) {
                    push_edges(&ids, EdgeKind::Static);
                }
            }
            CallForm::TypedMethod(ty) => {
                match lookup_method(&ty, &name, methods, aliases) {
                    Some(ids) => push_edges(&ids, EdgeKind::Method),
                    None => {
                        // Recovered a type but no such method in the
                        // workspace — likely a std/vendored type; no edge.
                    }
                }
            }
            CallForm::UnknownMethod => {
                if let Some(ids) = by_name.get(&name) {
                    let cands: Vec<FnId> = ids
                        .iter()
                        .copied()
                        .filter(|&id| {
                            fns[id].self_ty.is_some() && fns[id].has_self && fns[id].arity == arity
                        })
                        .collect();
                    push_edges(&cands, EdgeKind::Unknown);
                }
            }
            CallForm::Free => {
                if let Some(ids) = free.get(&name) {
                    // Prefer same-crate definitions; fall back to the whole
                    // workspace only when the crate defines none.
                    let same: Vec<FnId> = ids
                        .iter()
                        .copied()
                        .filter(|&id| fns[id].crate_name == caller.crate_name)
                        .collect();
                    if same.is_empty() {
                        push_edges(ids, EdgeKind::Static);
                    } else {
                        push_edges(&same, EdgeKind::Static);
                    }
                }
            }
        }
    }
}

/// Method lookup that sees through one level of type alias
/// (`SharedPager.read` → `Pager::read`).
fn lookup_method(
    ty: &str,
    name: &str,
    methods: &BTreeMap<(String, String), Vec<FnId>>,
    aliases: &BTreeMap<String, Vec<String>>,
) -> Option<Vec<FnId>> {
    if let Some(ids) = methods.get(&(ty.to_string(), name.to_string())) {
        return Some(ids.clone());
    }
    if let Some(targets) = aliases.get(ty) {
        for t in targets {
            if let Some(ids) = methods.get(&(t.clone(), name.to_string())) {
                return Some(ids.clone());
            }
        }
    }
    None
}

/// Resolve the declared type of `container.field`, seeing through one level
/// of type alias on the container (`SharedPager.inner` → `Pager.inner`).
fn field_type(
    fields: &BTreeMap<(String, String), String>,
    aliases: &BTreeMap<String, Vec<String>>,
    container: &str,
    field: &str,
) -> Option<String> {
    if let Some(ty) = fields.get(&(container.to_string(), field.to_string())) {
        return Some(ty.clone());
    }
    for t in aliases.get(container).into_iter().flatten() {
        if let Some(ty) = fields.get(&(t.clone(), field.to_string())) {
            return Some(ty.clone());
        }
    }
    None
}

/// Classify the call whose name token sits at `si`.
fn classify_call(
    file: &SourceFile,
    caller: &FnItem,
    locals: &BTreeMap<String, String>,
    fields: &BTreeMap<(String, String), String>,
    aliases: &BTreeMap<String, Vec<String>>,
    si: usize,
) -> CallForm {
    // `Qualifier::name(…)`
    if si >= 3 && file.stext(si - 1) == ":" && file.stext(si - 2) == ":" {
        let q = file.stext(si - 3);
        if file
            .stok(si - 3)
            .is_some_and(|t| t.kind == TokenKind::Ident)
            && q.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        {
            return CallForm::Path(q.to_string());
        }
        // `module::free_fn(…)` — resolve as a free call by name.
        return CallForm::Free;
    }
    // `recv.name(…)`
    if si >= 2 && file.stext(si - 1) == "." {
        let r = si - 2;
        let recv = file.stext(r);
        if file.stok(r).is_some_and(|t| t.kind == TokenKind::Ident) {
            let before = r.checked_sub(1).map(|b| file.stext(b)).unwrap_or("");
            if before != "." {
                // Direct receiver: `self.name(…)` / `local.name(…)`.
                if recv == "self" {
                    if let Some(ty) = &caller.self_ty {
                        return CallForm::TypedMethod(ty.clone());
                    }
                    return CallForm::UnknownMethod;
                }
                if let Some(ty) = locals.get(recv) {
                    return CallForm::TypedMethod(ty.clone());
                }
                return CallForm::UnknownMethod;
            }
            // One-level field receiver: `base.field.name(…)` where `base` is
            // `self` or a typed local and the field's declared type is known.
            if r >= 2 && file.stext(r - 1) == "." {
                let b = r - 2;
                let base = file.stext(b);
                let base_direct = b.checked_sub(1).map(|p| file.stext(p)).unwrap_or("") != ".";
                let container = if base == "self" {
                    caller.self_ty.clone()
                } else {
                    locals.get(base).cloned()
                };
                if base_direct && file.stok(b).is_some_and(|t| t.kind == TokenKind::Ident) {
                    if let Some(c) = container {
                        if let Some(ty) = field_type(fields, aliases, &c, recv) {
                            return CallForm::TypedMethod(ty);
                        }
                    }
                }
            }
            return CallForm::UnknownMethod;
        }
        return CallForm::UnknownMethod;
    }
    CallForm::Free
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph(src: &str) -> CallGraph {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let p = parse_file(&f, 0);
        CallGraph::build(std::slice::from_ref(&f), std::slice::from_ref(&p))
    }

    fn id(g: &CallGraph, name: &str) -> FnId {
        g.fns.iter().position(|f| f.name == name).expect("fn")
    }

    #[test]
    fn free_and_path_calls_resolve() {
        let g = graph(
            "fn a() { b(); Pager::open(); }\nfn b() {}\n\
             struct Pager; impl Pager { fn open() {} }",
        );
        let a = id(&g, "a");
        let tos: Vec<&str> = g.edges[a]
            .iter()
            .map(|e| g.fns[e.to].name.as_str())
            .collect();
        assert!(tos.contains(&"b"));
        assert!(tos.contains(&"open"));
        assert!(g.edges[a].iter().all(|e| e.kind == EdgeKind::Static));
    }

    #[test]
    fn receiver_types_resolve_methods() {
        let g = graph(
            "struct Store; impl Store { fn read(&self) {} }\n\
             fn a(s: &mut Store) { s.read(); }\n\
             fn b() { let s = Store::new(); s.read(); }\n\
             fn c() { let s: Store = mk(); s.read(); }",
        );
        for f in ["a", "b", "c"] {
            let e = &g.edges[id(&g, f)];
            assert!(
                e.iter()
                    .any(|e| g.fns[e.to].name == "read" && e.kind == EdgeKind::Method),
                "{f}: {e:?}"
            );
        }
    }

    #[test]
    fn unknown_receivers_get_unknown_edges_with_arity_match() {
        let g = graph(
            "struct A; impl A { fn go(&self, x: u8) {} }\n\
             struct B; impl B { fn go(&self, x: u8, y: u8) {} }\n\
             fn f(xs: &[A]) { xs[0].go(1); }",
        );
        let e = &g.edges[id(&g, "f")];
        // Arity 1 matches only A::go.
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].kind, EdgeKind::Unknown);
        assert_eq!(g.fns[e[0].to].self_ty.as_deref(), Some("A"));
    }

    #[test]
    fn aliases_are_seen_through() {
        let g = graph(
            "struct Pager; impl Pager { fn read(&self) {} }\n\
             type SharedPager = Rc<Pager>;\n\
             fn f(p: &SharedPager) { p.read(); }",
        );
        let e = &g.edges[id(&g, "f")];
        assert!(e.iter().any(|e| g.fns[e.to].name == "read"));
    }

    #[test]
    fn self_calls_resolve_to_inherent_methods() {
        let g = graph("struct T; impl T { fn outer(&self) { self.inner(); } fn inner(&self) {} }");
        let e = &g.edges[id(&g, "outer")];
        assert!(e
            .iter()
            .any(|e| g.fns[e.to].name == "inner" && e.kind == EdgeKind::Method));
    }

    #[test]
    fn reachability_and_blocking() {
        let g = graph("fn a() { b(); }\nfn b() { c(); }\nfn c() { sink(); }\nfn sink() {}");
        let (a, b, sink) = (id(&g, "a"), id(&g, "b"), id(&g, "sink"));
        let r = g.reachable(a, |_| true, |_| true);
        assert!(r.contains(&sink));
        // Blocking expansion at b cuts the path.
        let r = g.reachable(a, |_| true, |n| n != b);
        assert!(!r.contains(&sink));
        // Reverse: who reaches sink?
        let sinks: BTreeSet<FnId> = [sink].into_iter().collect();
        let up = g.reaching(&sinks, |_| true, |_| true);
        assert!(up.contains(&a) && up.contains(&b));
        let up = g.reaching(&sinks, |_| true, |n| n != b);
        assert!(!up.contains(&a));
    }

    #[test]
    fn path_to_reports_the_chain() {
        let g = graph("fn a() { b(); }\nfn b() { c(); }\nfn c() {}");
        let targets: BTreeSet<FnId> = [id(&g, "c")].into_iter().collect();
        let path = g.path_to(id(&g, "a"), &targets, |_| true, |_| true);
        assert_eq!(path.len(), 3);
        assert!(path[0].ends_with("::a") && path[2].ends_with("::c"));
    }
}
