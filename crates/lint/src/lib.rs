//! `boxes-lint` — a dependency-free source-level static analyzer for the
//! BOXes workspace.
//!
//! The paper's contribution is measured in block I/Os, so correctness here
//! means *discipline*: every disk touch flows through the accounted
//! [`Pager`] entry points and label/offset arithmetic never silently
//! truncates. Generic tools cannot see those invariants; this crate encodes
//! them as the BX001–BX020 rule catalog (see [`rules`]) over a hand-rolled
//! lexer ([`lexer`]) and a lightweight token-stream model ([`model`]).
//!
//! Three analysis tiers share that substrate:
//!
//! * **Token-stream rules** (BX001–BX009, BX020) are pure per-file
//!   functions.
//! * **Call-graph rules** (BX010–BX014) run over an [`Analysis`]: an
//!   item-level parse ([`parser`]) of every file, a heuristic workspace
//!   call graph ([`callgraph`]) with explicit unknown edges so reachability
//!   stays sound-by-default, and per-function dataflow summaries
//!   ([`dataflow`]). No rustc internals, no external dependencies.
//! * **Lock-discipline rules** (BX015–BX019) run over the lock-set
//!   analysis ([`locks`]): per-function `Mutex`/`RwLock` acquisition
//!   summaries with guard-liveness windows, solved to fixpoint over the
//!   call graph. The resulting lock-order graph is exported to
//!   `target/lock-order.json` ([`Analysis::lock_order_json`]).
//!
//! Findings are [`report::Diagnostic`]s with `file:line:col` spans. A
//! checked-in baseline (`lint.toml`, parsed by [`config`]) suppresses
//! reviewed findings; every entry needs a justification, an entry that no
//! longer matches anything fails the gate, and `[limits] max_baselined`
//! caps the suppressed total so the baseline can only shrink. BX018 uses a
//! separate `[[ratchet]]` table with the same stale-checking but no budget
//! headroom: unmatched findings are hard errors.
//!
//! [`Pager`]: https://docs.rs/boxes-pager

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The workspace call graph with explicit unknown edges.
pub mod callgraph;
/// The `lint.toml` suppression baseline: parser and matching policy.
pub mod config;
/// Per-function dataflow: error propagation, borrow liveness, span order.
pub mod dataflow;
/// The hand-rolled, panic-free Rust lexer.
pub mod lexer;
/// Lock-set analysis: acquisitions, guard windows, the lock-order graph.
pub mod locks;
/// Token-stream source model (brackets, test regions, item scopes).
pub mod model;
/// Item-level parser: functions, impl blocks, shared-state sites.
pub mod parser;
/// Diagnostics plus the human and JSON renderers.
pub mod report;
/// The BX001–BX020 rule catalog.
pub mod rules;

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use callgraph::CallGraph;
use config::Config;
use dataflow::FnSummary;
use model::SourceFile;
use parser::ParsedFile;
use report::{Diagnostic, Outcome};

/// The whole-workspace analysis the BX010–BX014 rules run over.
pub struct Analysis {
    /// Every scanned file, token-stream form.
    pub files: Vec<SourceFile>,
    /// Item-level parse of each file, parallel to `files`.
    pub parsed: Vec<ParsedFile>,
    /// The workspace call graph over all parsed functions.
    pub graph: CallGraph,
    /// Dataflow summaries, parallel to `graph.fns`.
    pub summaries: Vec<FnSummary>,
}

impl Analysis {
    /// Parse, link, and summarize a set of files.
    pub fn build(files: Vec<SourceFile>) -> Analysis {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .enumerate()
            .map(|(i, f)| parser::parse_file(f, i))
            .collect();
        let graph = CallGraph::build(&files, &parsed);
        let summaries = dataflow::summarize(&graph, &files);
        Analysis {
            files,
            parsed,
            graph,
            summaries,
        }
    }

    /// The concurrency-readiness inventory as JSON
    /// (`target/sync-readiness.json`).
    pub fn sync_readiness_json(&self) -> String {
        rules::graph::sync_readiness_json(self)
    }

    /// The lock-order graph — locks, witnessed edges, cycles — as JSON
    /// (`target/lock-order.json`).
    pub fn lock_order_json(&self) -> String {
        locks::LockAnalysis::build(self).to_json()
    }
}

/// Lint a single source text under its workspace-relative `path`, running
/// both rule tiers (the call graph sees just this one file).
///
/// Applies the per-rule `allow_paths` policy from `config` but not the
/// `[[allow]]` baseline — feed the result to [`apply_baseline`] for that.
pub fn lint_source(path: &str, text: &str, config: &Config) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, text);
    let fns = rules::collect_report_fns(&file);
    let analysis = Analysis::build(vec![file]);
    let mut diags = Vec::new();
    rules::run_all(&analysis.files[0], &fns, &mut diags);
    rules::run_graph(&analysis, &mut diags);
    diags.retain(|d| !config.rule_allows_path(d.rule, &d.path));
    sort_diags(&mut diags);
    diags
}

/// Partition findings into suppressed/unsuppressed against the `[[allow]]`
/// baseline, surface entries that matched nothing (stale suppressions), and
/// enforce the `[limits] max_baselined` budget.
///
/// BX018 findings never consult the `[[allow]]` baseline: they match only
/// `[[ratchet]]` entries (path + optional `contains`), land in
/// [`Outcome::ratcheted`] outside the `max_baselined` budget, and any
/// unmatched finding stays a hard error — the sync-readiness baseline can
/// only shrink.
pub fn apply_baseline(diags: Vec<Diagnostic>, config: &Config) -> Outcome {
    let mut matched = vec![false; config.allows.len()];
    let mut r_matched = vec![false; config.ratchets.len()];
    let mut outcome = Outcome::default();
    for d in diags {
        if d.rule == "BX018" {
            let hit = config.ratchets.iter().position(|r| {
                r.path == d.path && r.contains.as_deref().is_none_or(|c| d.snippet.contains(c))
            });
            match hit {
                Some(i) => {
                    if let Some(slot) = r_matched.get_mut(i) {
                        *slot = true;
                    }
                    outcome.ratcheted.push(d);
                }
                None => outcome.unsuppressed.push(d),
            }
            continue;
        }
        let hit = config.allows.iter().position(|a| {
            a.rule == d.rule
                && a.path == d.path
                && a.contains.as_deref().is_none_or(|c| d.snippet.contains(c))
        });
        match hit {
            Some(i) => {
                if let Some(slot) = matched.get_mut(i) {
                    *slot = true;
                }
                outcome.suppressed.push(d);
            }
            None => outcome.unsuppressed.push(d),
        }
    }
    for (i, a) in config.allows.iter().enumerate() {
        if !matched.get(i).copied().unwrap_or(true) {
            outcome.stale_allows.push(format!(
                "lint.toml:{}: [[allow]] {} in {} matched no findings — remove the \
                 stale entry",
                a.line_no, a.rule, a.path
            ));
        }
    }
    for (i, r) in config.ratchets.iter().enumerate() {
        if !r_matched.get(i).copied().unwrap_or(true) {
            outcome.stale_ratchets.push(format!(
                "lint.toml:{}: [[ratchet]] in {} matched no BX018 findings — the site \
                 was retired; remove the entry",
                r.line_no, r.path
            ));
        }
    }
    if let Some(max) = config.max_baselined {
        if outcome.suppressed.len() > max {
            outcome.budget_violations.push(format!(
                "baseline budget exceeded: {} suppressed findings > max_baselined = {} \
                 — fix findings instead of growing the baseline",
                outcome.suppressed.len(),
                max
            ));
        }
    }
    outcome
}

/// Lint the whole workspace rooted at `root`: every `.rs` file under
/// `crates/*/src` and `xtask/src` (integration tests, fixtures, and
/// `third_party/` are out of scope), with both rule tiers and the baseline
/// applied.
pub fn lint_workspace(root: &Path, config: &Config) -> io::Result<Outcome> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let xtask_src = root.join("xtask").join("src");
    if xtask_src.is_dir() {
        collect_rs(&xtask_src, &mut files)?;
    }
    files.sort();

    let mut sources: Vec<SourceFile> = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path)?;
        sources.push(SourceFile::parse(rel_path(root, path), text));
    }
    let mut fns: BTreeSet<String> = BTreeSet::new();
    for f in &sources {
        fns.extend(rules::collect_report_fns(f));
    }
    let analysis = Analysis::build(sources);
    let mut diags = Vec::new();
    for f in &analysis.files {
        rules::run_all(f, &fns, &mut diags);
    }
    rules::run_graph(&analysis, &mut diags);
    diags.retain(|d| !config.rule_allows_path(d.rule, &d.path));
    sort_diags(&mut diags);
    let mut outcome = apply_baseline(diags, config);
    outcome.files_scanned = analysis.files.len();
    Ok(outcome)
}

/// Build the whole-workspace [`Analysis`] without running any rules — the
/// driver uses this to emit `target/sync-readiness.json` alongside the lint
/// report.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let xtask_src = root.join("xtask").join("src");
    if xtask_src.is_dir() {
        collect_rs(&xtask_src, &mut files)?;
    }
    files.sort();
    let mut sources: Vec<SourceFile> = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path)?;
        sources.push(SourceFile::parse(rel_path(root, path), text));
    }
    Ok(Analysis::build(sources))
}

/// Load and parse `lint.toml` from the workspace root. A missing file is an
/// empty config (no policy, no suppressions).
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    if !path.is_file() {
        return Ok(Config::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read lint.toml: {e}"))?;
    Config::parse(&text).map_err(|e| e.to_string())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use report::Diagnostic;

    fn diag(rule: &'static str, path: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line: 1,
            col: 1,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn baseline_suppresses_and_detects_stale() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"BX003\"\npath = \"crates/a/src/lib.rs\"\n\
             contains = \"invariant\"\njustification = \"documented invariant\"\n\
             [[allow]]\nrule = \"BX004\"\npath = \"crates/b/src/lib.rs\"\n\
             justification = \"never matches\"\n",
        )
        .expect("valid config");
        let diags = vec![
            diag("BX003", "crates/a/src/lib.rs", "x.expect(\"invariant: y\")"),
            diag("BX003", "crates/a/src/lib.rs", "z.unwrap()"),
        ];
        let outcome = apply_baseline(diags, &cfg);
        assert_eq!(outcome.suppressed.len(), 1);
        assert_eq!(outcome.unsuppressed.len(), 1);
        assert_eq!(outcome.stale_allows.len(), 1);
        assert!(outcome.stale_allows[0].contains("BX004"));
        assert!(!outcome.is_clean());
    }

    #[test]
    fn allow_paths_policy_filters_findings() {
        let cfg =
            Config::parse("[rules.BX003]\nallow_paths = [\"xtask/src\"]\n").expect("valid config");
        let diags = lint_source("xtask/src/main.rs", "fn f() { x.unwrap(); }", &cfg);
        assert!(diags.is_empty());
        let diags = lint_source("crates/a/src/lib.rs", "fn f() { x.unwrap(); }", &cfg);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn baseline_budget_enforced() {
        let cfg = Config::parse(
            "[limits]\nmax_baselined = 0\n\
             [[allow]]\nrule = \"BX003\"\npath = \"crates/a/src/lib.rs\"\n\
             justification = \"temporary\"\n",
        )
        .expect("valid config");
        let outcome = apply_baseline(vec![diag("BX003", "crates/a/src/lib.rs", "x")], &cfg);
        assert_eq!(outcome.suppressed.len(), 1);
        assert_eq!(outcome.budget_violations.len(), 1);
        assert!(!outcome.is_clean());
        assert!(outcome.to_json().contains("baseline budget exceeded"));
    }
}
