//! `boxes-lint` — a dependency-free source-level static analyzer for the
//! BOXes workspace.
//!
//! The paper's contribution is measured in block I/Os, so correctness here
//! means *discipline*: every disk touch flows through the accounted
//! [`Pager`] entry points and label/offset arithmetic never silently
//! truncates. Generic tools cannot see those invariants; this crate encodes
//! them as the BX001–BX009 rule catalog (see [`rules`]) over a hand-rolled
//! lexer ([`lexer`]) and a lightweight token-stream model ([`model`]) — no
//! rustc internals, no external dependencies.
//!
//! Findings are [`report::Diagnostic`]s with `file:line:col` spans. A
//! checked-in baseline (`lint.toml`, parsed by [`config`]) suppresses
//! reviewed findings; every entry needs a justification, and an entry that
//! no longer matches anything fails the gate so the baseline can only
//! shrink.
//!
//! [`Pager`]: https://docs.rs/boxes-pager

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The `lint.toml` suppression baseline: parser and matching policy.
pub mod config;
/// The hand-rolled, panic-free Rust lexer.
pub mod lexer;
/// Token-stream source model (brackets, test regions, item scopes).
pub mod model;
/// Diagnostics plus the human and JSON renderers.
pub mod report;
/// The BX001–BX009 rule catalog.
pub mod rules;

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use config::Config;
use model::SourceFile;
use report::{Diagnostic, Outcome};

/// Lint a single source text under its workspace-relative `path`.
///
/// Applies the per-rule `allow_paths` policy from `config` but not the
/// `[[allow]]` baseline — feed the result to [`apply_baseline`] for that.
pub fn lint_source(path: &str, text: &str, config: &Config) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, text);
    let fns = rules::collect_report_fns(&file);
    let mut diags = Vec::new();
    rules::run_all(&file, &fns, &mut diags);
    diags.retain(|d| !config.rule_allows_path(d.rule, &d.path));
    sort_diags(&mut diags);
    diags
}

/// Partition findings into suppressed/unsuppressed against the `[[allow]]`
/// baseline and surface entries that matched nothing (stale suppressions).
pub fn apply_baseline(diags: Vec<Diagnostic>, config: &Config) -> Outcome {
    let mut matched = vec![false; config.allows.len()];
    let mut outcome = Outcome::default();
    for d in diags {
        let hit = config.allows.iter().position(|a| {
            a.rule == d.rule
                && a.path == d.path
                && a.contains.as_deref().is_none_or(|c| d.snippet.contains(c))
        });
        match hit {
            Some(i) => {
                if let Some(slot) = matched.get_mut(i) {
                    *slot = true;
                }
                outcome.suppressed.push(d);
            }
            None => outcome.unsuppressed.push(d),
        }
    }
    for (i, a) in config.allows.iter().enumerate() {
        if !matched.get(i).copied().unwrap_or(true) {
            outcome.stale_allows.push(format!(
                "lint.toml:{}: [[allow]] {} in {} matched no findings — remove the \
                 stale entry",
                a.line_no, a.rule, a.path
            ));
        }
    }
    outcome
}

/// Lint the whole workspace rooted at `root`: every `.rs` file under
/// `crates/*/src` and `xtask/src` (integration tests, fixtures, and
/// `third_party/` are out of scope), with the baseline applied.
pub fn lint_workspace(root: &Path, config: &Config) -> io::Result<Outcome> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let xtask_src = root.join("xtask").join("src");
    if xtask_src.is_dir() {
        collect_rs(&xtask_src, &mut files)?;
    }
    files.sort();

    let mut parsed: Vec<SourceFile> = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path)?;
        parsed.push(SourceFile::parse(rel_path(root, path), text));
    }
    let mut fns: BTreeSet<String> = BTreeSet::new();
    for f in &parsed {
        fns.extend(rules::collect_report_fns(f));
    }
    let mut diags = Vec::new();
    for f in &parsed {
        let mut file_diags = Vec::new();
        rules::run_all(f, &fns, &mut file_diags);
        file_diags.retain(|d| !config.rule_allows_path(d.rule, &d.path));
        diags.extend(file_diags);
    }
    sort_diags(&mut diags);
    let mut outcome = apply_baseline(diags, config);
    outcome.files_scanned = parsed.len();
    Ok(outcome)
}

/// Load and parse `lint.toml` from the workspace root. A missing file is an
/// empty config (no policy, no suppressions).
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    if !path.is_file() {
        return Ok(Config::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read lint.toml: {e}"))?;
    Config::parse(&text).map_err(|e| e.to_string())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use report::Diagnostic;

    fn diag(rule: &'static str, path: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line: 1,
            col: 1,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn baseline_suppresses_and_detects_stale() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"BX003\"\npath = \"crates/a/src/lib.rs\"\n\
             contains = \"invariant\"\njustification = \"documented invariant\"\n\
             [[allow]]\nrule = \"BX004\"\npath = \"crates/b/src/lib.rs\"\n\
             justification = \"never matches\"\n",
        )
        .expect("valid config");
        let diags = vec![
            diag("BX003", "crates/a/src/lib.rs", "x.expect(\"invariant: y\")"),
            diag("BX003", "crates/a/src/lib.rs", "z.unwrap()"),
        ];
        let outcome = apply_baseline(diags, &cfg);
        assert_eq!(outcome.suppressed.len(), 1);
        assert_eq!(outcome.unsuppressed.len(), 1);
        assert_eq!(outcome.stale_allows.len(), 1);
        assert!(outcome.stale_allows[0].contains("BX004"));
        assert!(!outcome.is_clean());
    }

    #[test]
    fn allow_paths_policy_filters_findings() {
        let cfg =
            Config::parse("[rules.BX003]\nallow_paths = [\"xtask/src\"]\n").expect("valid config");
        let diags = lint_source("xtask/src/main.rs", "fn f() { x.unwrap(); }", &cfg);
        assert!(diags.is_empty());
        let diags = lint_source("crates/a/src/lib.rs", "fn f() { x.unwrap(); }", &cfg);
        assert_eq!(diags.len(), 1);
    }
}
