//! Item-level parser over the token stream.
//!
//! The BX010–BX014 rules need more than tokens: they need to know *which
//! function* a token belongs to, what type an `impl` block is for, which
//! struct fields carry interior-mutability types, and what a function's
//! signature looks like. This module extracts exactly that — a flat list of
//! [`FnItem`]s and [`StateSite`]s per file — without attempting to be a full
//! Rust parser. Macro-generated items (except `thread_local!`, which is
//! matched structurally) are invisible; the soundness caveats are documented
//! in DESIGN.md under "call-graph soundness".

use crate::lexer::TokenKind;
use crate::model::SourceFile;

/// One parsed function (free function, inherent/trait method, or trait
/// default method) with its signature and body extent.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// `Some(TypeName)` when declared inside `impl TypeName` (inherent or
    /// trait impl) or inside `trait TypeName` (default methods).
    pub self_ty: Option<String>,
    /// The trait name for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// Crate the function lives in (`boxes-pager`-style name derived from
    /// the `crates/<dir>/src` path, or `xtask`).
    pub crate_name: String,
    /// Index of the containing [`SourceFile`] in the analysis file list.
    pub file_idx: usize,
    /// Workspace-relative path (denormalized from the file for reporting).
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Unrestricted `pub` (not `pub(crate)`/`pub(in …)`).
    pub is_pub: bool,
    /// Takes a `self` receiver.
    pub has_self: bool,
    /// Number of non-`self` parameters.
    pub arity: usize,
    /// Base type ident of each non-`self` parameter, when recoverable
    /// (`&mut FileStore` → `FileStore`, `Vec<u8>` → `Vec`).
    pub param_names: Vec<String>,
    /// Parameter base types, parallel to `param_names` (empty string when
    /// the type could not be reduced to a base ident).
    pub param_types: Vec<String>,
    /// Token texts of the return type (empty for `()`).
    pub ret_tokens: Vec<String>,
    /// Significant-token range `(open_brace, close_brace)` of the body;
    /// `None` for bodiless trait/extern declarations.
    pub body: Option<(usize, usize)>,
    /// Sig-index of the `fn` keyword.
    pub fn_si: usize,
    /// Declared inside test-only code.
    pub in_test: bool,
}

impl FnItem {
    /// Qualified display name: `crate::Type::name` or `crate::name`.
    pub fn qual(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{}::{}::{}", self.crate_name, t, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// What kind of shared-state construct a [`StateSite`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StateKind {
    /// `RefCell<T>` — single-threaded interior mutability, `!Sync`.
    RefCell,
    /// `Cell<T>` — copy-based interior mutability, `!Sync`.
    Cell,
    /// `Rc<T>` — non-atomic shared ownership, `!Send`/`!Sync`.
    Rc,
    /// A `thread_local!` static — per-thread state invisible across threads.
    ThreadLocal,
    /// `static mut` — data race by construction under threads.
    StaticMut,
}

impl StateKind {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StateKind::RefCell => "RefCell",
            StateKind::Cell => "Cell",
            StateKind::Rc => "Rc",
            StateKind::ThreadLocal => "thread_local",
            StateKind::StaticMut => "static_mut",
        }
    }
}

/// One shared-state declaration site: a struct/enum field of an
/// interior-mutability type, a `static mut`, a `thread_local!` static, or a
/// type alias wrapping `Rc`/`RefCell`/`Cell`.
#[derive(Clone, Debug)]
pub struct StateSite {
    /// Which construct.
    pub kind: StateKind,
    /// Containing type (struct/enum name), or a pseudo-container:
    /// `<static>`, `<thread_local>`, `<type alias>`.
    pub container: String,
    /// Field, static, or alias name.
    pub name: String,
    /// The declared type, as source text (trimmed).
    pub type_text: String,
    /// Crate the site lives in.
    pub crate_name: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Whether the site (or its container) is declared `pub`.
    pub is_pub: bool,
    /// Declared inside test-only code.
    pub in_test: bool,
}

/// Everything the item parser extracts from one file.
#[derive(Default)]
pub struct ParsedFile {
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// Shared-state sites, in source order.
    pub sites: Vec<StateSite>,
    /// `type Alias = …;` items mapping the alias name to the base idents of
    /// its right-hand side (e.g. `SharedPager` → `[Rc, Pager]`), used by the
    /// call graph to see through newtype-ish aliases.
    pub aliases: Vec<(String, Vec<String>)>,
    /// `(container, field, base_type)` for every named struct field — lets
    /// the call graph type `self.field.method()` receivers.
    pub fields: Vec<(String, String, String)>,
}

/// Derive the crate name from a workspace-relative path:
/// `crates/pager/src/lib.rs` → `boxes-pager`, `xtask/src/…` → `xtask`,
/// anything else → the first path segment.
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => match parts.next() {
            Some(dir) => format!("boxes-{dir}"),
            None => "crates".to_string(),
        },
        Some(first) => first.to_string(),
        None => String::new(),
    }
}

const STATE_CTORS: [(&str, StateKind); 3] = [
    ("RefCell", StateKind::RefCell),
    ("Cell", StateKind::Cell),
    ("Rc", StateKind::Rc),
];

/// Parse one file into functions, state sites, and type aliases.
pub fn parse_file(file: &SourceFile, file_idx: usize) -> ParsedFile {
    let mut out = ParsedFile::default();
    let crate_name = crate_of(&file.path);
    // Work stack of (range, self_ty, trait_name) item-level regions.
    let mut work: Vec<(usize, usize, Option<String>, Option<String>)> =
        vec![(0, file.slen(), None, None)];
    while let Some((start, end, self_ty, trait_name)) = work.pop() {
        let mut i = start;
        let mut header: Vec<usize> = Vec::new();
        while i < end {
            match file.stext(i) {
                "#" => {
                    // Outer/inner attribute: skip the whole group.
                    let open = if file.stext(i + 1) == "!" {
                        i + 2
                    } else {
                        i + 1
                    };
                    if file.stext(open) == "[" {
                        i = file.close_of.get(open).copied().flatten().unwrap_or(open) + 1;
                    } else {
                        i += 1;
                    }
                }
                "{" => {
                    let close = file
                        .close_of
                        .get(i)
                        .copied()
                        .flatten()
                        .unwrap_or(end.saturating_sub(1));
                    handle_braced_item(
                        file,
                        file_idx,
                        &crate_name,
                        &header,
                        i,
                        close,
                        &self_ty,
                        &trait_name,
                        &mut out,
                        &mut work,
                    );
                    i = close + 1;
                    header.clear();
                }
                ";" => {
                    handle_terminated_item(file, &crate_name, &header, &self_ty, &mut out, i);
                    i += 1;
                    header.clear();
                }
                "(" | "[" => {
                    header.push(i);
                    i = file.close_of.get(i).copied().flatten().unwrap_or(i) + 1;
                }
                "=" => {
                    // `type X = …;`, `static X: T = …;`, associated consts:
                    // keep collecting so the RHS reaches the handlers, but
                    // brace-initialized statics (`= Foo { … };`) must not be
                    // misread as an item body.
                    header.push(i);
                    i += 1;
                    while i < end && file.stext(i) != ";" {
                        if matches!(file.stext(i), "{" | "(" | "[") {
                            header.push(i);
                            i = file.close_of.get(i).copied().flatten().unwrap_or(i) + 1;
                        } else {
                            header.push(i);
                            i += 1;
                        }
                    }
                }
                "}" => {
                    i += 1;
                    header.clear();
                }
                _ => {
                    header.push(i);
                    i += 1;
                }
            }
        }
    }
    out.fns.sort_by_key(|f| f.fn_si);
    out.sites.sort_by_key(|s| s.line);
    out
}

/// Texts of a header's token indices.
fn texts<'f>(file: &'f SourceFile, header: &[usize]) -> Vec<&'f str> {
    header.iter().map(|&si| file.stext(si)).collect()
}

#[allow(clippy::too_many_arguments)]
fn handle_braced_item(
    file: &SourceFile,
    file_idx: usize,
    crate_name: &str,
    header: &[usize],
    open: usize,
    close: usize,
    self_ty: &Option<String>,
    trait_name: &Option<String>,
    out: &mut ParsedFile,
    work: &mut Vec<(usize, usize, Option<String>, Option<String>)>,
) {
    let t = texts(file, header);
    if let Some(fn_pos) = t.iter().position(|x| *x == "fn") {
        if let Some(item) = parse_fn(
            file,
            file_idx,
            crate_name,
            header,
            fn_pos,
            Some((open, close)),
            self_ty,
            trait_name,
        ) {
            out.fns.push(item);
        }
        return; // function bodies are walked by the call-graph pass
    }
    if t.contains(&"impl") {
        let (imp_trait, imp_ty) = impl_names(&t);
        work.push((open + 1, close, imp_ty, imp_trait));
        return;
    }
    if t.contains(&"trait") {
        let name = ident_after(&t, "trait");
        work.push((open + 1, close, name.map(str::to_string), None));
        return;
    }
    if t.contains(&"mod") {
        work.push((open + 1, close, None, None));
        return;
    }
    if t.iter().any(|x| matches!(*x, "struct" | "enum" | "union")) {
        let container = t
            .iter()
            .position(|x| matches!(*x, "struct" | "enum" | "union"))
            .and_then(|p| t.get(p + 1))
            .copied()
            .unwrap_or("?");
        let is_pub = t.first() == Some(&"pub");
        collect_field_sites(file, crate_name, container, is_pub, open, close, out);
        return;
    }
    // `thread_local! { static X: RefCell<…> = …; }` — matched structurally.
    if t.contains(&"thread_local") {
        collect_thread_local_sites(file, crate_name, open, close, out);
    }
}

/// Bodiless item ending in `;`: tuple structs, statics, type aliases,
/// trait-method declarations.
fn handle_terminated_item(
    file: &SourceFile,
    crate_name: &str,
    header: &[usize],
    self_ty: &Option<String>,
    out: &mut ParsedFile,
    _semi: usize,
) {
    let t = texts(file, header);
    if t.contains(&"fn") {
        // Trait method declaration without a body — still a call-graph node
        // (callers dispatch to every impl; the decl itself has no edges).
        return;
    }
    if t.contains(&"static") {
        let is_mut = t.contains(&"mut");
        let name = ident_after(&t, if is_mut { "mut" } else { "static" });
        if is_mut {
            if let (Some(name), Some(&first)) = (name, header.first()) {
                out.sites.push(StateSite {
                    kind: StateKind::StaticMut,
                    container: "<static>".to_string(),
                    name: name.to_string(),
                    type_text: file.line_snippet(first).to_string(),
                    crate_name: crate_name.to_string(),
                    path: file.path.clone(),
                    line: file.stok(first).map(|tk| tk.line).unwrap_or(0),
                    is_pub: t.first() == Some(&"pub"),
                    in_test: header
                        .first()
                        .is_some_and(|&si| file.in_test.get(si).copied().unwrap_or(false)),
                });
            }
        }
        return;
    }
    if t.contains(&"type") && self_ty.is_none() {
        // `type Alias = RHS;` — record the alias and, when the RHS wraps a
        // shared-ownership ctor, a state site.
        let Some(name) = ident_after(&t, "type") else {
            return;
        };
        let eq = t.iter().position(|x| *x == "=");
        let rhs: Vec<String> = match eq {
            Some(p) => t[p + 1..]
                .iter()
                .filter(|x| {
                    x.chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                })
                .map(|x| x.to_string())
                .collect(),
            None => Vec::new(),
        };
        if let Some((_, kind)) = STATE_CTORS.iter().find(|(c, _)| rhs.iter().any(|r| r == c)) {
            if let Some(&first) = header.first() {
                out.sites.push(StateSite {
                    kind: *kind,
                    container: "<type alias>".to_string(),
                    name: name.to_string(),
                    type_text: file.line_snippet(first).to_string(),
                    crate_name: crate_name.to_string(),
                    path: file.path.clone(),
                    line: file.stok(first).map(|tk| tk.line).unwrap_or(0),
                    is_pub: t.first() == Some(&"pub"),
                    in_test: header
                        .first()
                        .is_some_and(|&si| file.in_test.get(si).copied().unwrap_or(false)),
                });
            }
        }
        out.aliases.push((name.to_string(), rhs));
        return;
    }
    // Tuple struct `struct Foo(Rc<Bar>);` — fields live in the header's
    // paren group, which the walker skipped; rescan it.
    if t.contains(&"struct") {
        if let Some(pos) = header
            .iter()
            .position(|&si| file.stext(si) == "(")
            .map(|p| header[p])
        {
            let close = file.close_of.get(pos).copied().flatten().unwrap_or(pos);
            let container = ident_after(&t, "struct").unwrap_or("?");
            collect_field_sites(
                file,
                crate_name,
                container,
                t.first() == Some(&"pub"),
                pos,
                close,
                out,
            );
        }
    }
}

/// First ident token text following `kw` in a header text list.
fn ident_after<'t>(t: &[&'t str], kw: &str) -> Option<&'t str> {
    let p = t.iter().position(|x| *x == kw)?;
    t[p + 1..]
        .iter()
        .find(|x| {
            x.chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
        })
        .copied()
}

/// Extract `(trait_name, self_type)` from an `impl` header.
///
/// Handles `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`, and
/// `impl fmt::Display for Foo` (path segments reduce to their last ident).
fn impl_names(t: &[&str]) -> (Option<String>, Option<String>) {
    let Some(impl_pos) = t.iter().position(|x| *x == "impl") else {
        return (None, None);
    };
    let mut rest = &t[impl_pos + 1..];
    // Skip the generic parameter list if present.
    if rest.first() == Some(&"<") {
        let mut depth = 0i32;
        let mut k = 0;
        while k < rest.len() {
            match rest[k] {
                "<" => depth += 1,
                ">" if k == 0 || rest[k - 1] != "-" => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        rest = &rest[k..];
    }
    let for_pos = angle_depth_position(rest, "for");
    match for_pos {
        Some(p) => (
            last_path_ident(&rest[..p]).map(str::to_string),
            last_path_ident(&rest[p + 1..]).map(str::to_string),
        ),
        None => (None, last_path_ident(rest).map(str::to_string)),
    }
}

/// Position of `needle` at angle-bracket depth 0.
fn angle_depth_position(t: &[&str], needle: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, x) in t.iter().enumerate() {
        match *x {
            "<" => depth += 1,
            ">" if k == 0 || t[k - 1] != "-" => depth -= 1,
            w if w == needle && depth <= 0 => return Some(k),
            _ => {}
        }
    }
    None
}

/// Last ident of a (possibly path-qualified) type, before generic args:
/// `fmt::Display` → `Display`, `Foo<T>` → `Foo`.
fn last_path_ident<'t>(t: &[&'t str]) -> Option<&'t str> {
    let mut best: Option<&str> = None;
    for x in t {
        match *x {
            "<" => break,
            w if w
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
                && !matches!(w, "for" | "where" | "dyn" | "impl") =>
            {
                best = Some(w);
            }
            _ => {}
        }
    }
    best
}

/// Scan a struct/enum body (or tuple-struct paren group) for fields whose
/// type mentions an interior-mutability constructor.
fn collect_field_sites(
    file: &SourceFile,
    crate_name: &str,
    container: &str,
    container_pub: bool,
    open: usize,
    close: usize,
    out: &mut ParsedFile,
) {
    // Split the body into fields at top-level commas (angle-bracket depth 0,
    // so `BTreeMap<K, V>` stays one field).
    let mut field_start = open + 1;
    let mut k = open + 1;
    let mut angle = 0i32;
    while k <= close {
        if matches!(file.stext(k), "(" | "[" | "{") && k < close {
            k = file.close_of.get(k).copied().flatten().unwrap_or(k) + 1;
            continue;
        }
        match file.stext(k) {
            "<" => angle += 1,
            ">" if file.stext(k.wrapping_sub(1)) != "-" => angle -= 1,
            _ => {}
        }
        let end_of_field = k == close || (file.stext(k) == "," && angle <= 0);
        if end_of_field {
            scan_one_field(
                file,
                crate_name,
                container,
                container_pub,
                field_start,
                k,
                out,
            );
            field_start = k + 1;
        }
        k += 1;
    }
}

fn scan_one_field(
    file: &SourceFile,
    crate_name: &str,
    container: &str,
    container_pub: bool,
    start: usize,
    end: usize,
    out: &mut ParsedFile,
) {
    // Field name: first ident before a `:` (tuple fields have none).
    let mut name = String::new();
    let mut colon = None;
    for k in start..end {
        let t = file.stext(k);
        if t == ":" {
            colon = Some(k);
            break;
        }
        if file.stok(k).is_some_and(|tk| tk.kind == TokenKind::Ident) && t != "pub" {
            name = t.to_string();
        }
    }
    if let Some(c) = colon {
        if !name.is_empty() {
            let ty = base_type_ident(file, c + 1, end);
            if !ty.is_empty() {
                out.fields.push((container.to_string(), name.clone(), ty));
            }
        }
    }
    for k in start..end {
        let t = file.stext(k);
        if let Some((_, kind)) = STATE_CTORS.iter().find(|(c, _)| *c == t) {
            if file.stext(k + 1) == "<" {
                out.sites.push(StateSite {
                    kind: *kind,
                    container: container.to_string(),
                    name: if name.is_empty() {
                        format!("<field {}>", out.sites.len())
                    } else {
                        name.clone()
                    },
                    type_text: file.line_snippet(k).to_string(),
                    crate_name: crate_name.to_string(),
                    path: file.path.clone(),
                    line: file.stok(k).map(|tk| tk.line).unwrap_or(0),
                    is_pub: container_pub,
                    in_test: file.in_test.get(k).copied().unwrap_or(false),
                });
                return; // one site per field, even for nested ctors
            }
        }
    }
}

/// Scan a `thread_local! { … }` body: every inner `static NAME: Type` is a
/// per-thread state site.
fn collect_thread_local_sites(
    file: &SourceFile,
    crate_name: &str,
    open: usize,
    close: usize,
    out: &mut ParsedFile,
) {
    let mut k = open + 1;
    while k < close {
        if file.stext(k) == "static" {
            let name = file.stext(k + 1).to_string();
            out.sites.push(StateSite {
                kind: StateKind::ThreadLocal,
                container: "<thread_local>".to_string(),
                name,
                type_text: file.line_snippet(k).to_string(),
                crate_name: crate_name.to_string(),
                path: file.path.clone(),
                line: file.stok(k).map(|tk| tk.line).unwrap_or(0),
                is_pub: false,
                in_test: file.in_test.get(k).copied().unwrap_or(false),
            });
        }
        k += 1;
    }
}

/// Parse a function signature from its header tokens.
#[allow(clippy::too_many_arguments)]
fn parse_fn(
    file: &SourceFile,
    file_idx: usize,
    crate_name: &str,
    header: &[usize],
    fn_pos: usize,
    body: Option<(usize, usize)>,
    self_ty: &Option<String>,
    trait_name: &Option<String>,
) -> Option<FnItem> {
    let t = texts(file, header);
    let name = t.get(fn_pos + 1)?.to_string();
    if !name
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
    {
        return None;
    }
    let fn_si = header[fn_pos];
    // The parameter list is the first paren group after the name; the walker
    // stored its opener in the header (groups are skipped wholesale).
    let paren = header
        .iter()
        .position(|&si| si > header[fn_pos + 1] && file.stext(si) == "(")?;
    let open = header[paren];
    let close = file.close_of.get(open).copied().flatten()?;
    let (has_self, param_names, param_types, arity) = parse_params(file, open, close);
    // Return tokens: header entries after the param group opener (the walker
    // skipped the group's interior, so these are exactly the `-> …` tokens).
    let mut ret_tokens = Vec::new();
    for &si in &header[paren + 1..] {
        let x = file.stext(si);
        if x == "where" {
            break;
        }
        // The leading `->` arrow tokens are kept; consumers look for type
        // idents and ignore punctuation.
        ret_tokens.push(x.to_string());
    }
    let is_pub = t.first() == Some(&"pub") && t.get(1) != Some(&"(");
    Some(FnItem {
        name,
        self_ty: self_ty.clone(),
        trait_name: trait_name.clone(),
        crate_name: crate_name.to_string(),
        file_idx,
        path: file.path.clone(),
        line: file.stok(fn_si).map(|tk| tk.line).unwrap_or(0),
        is_pub,
        has_self,
        arity,
        param_names,
        param_types,
        ret_tokens,
        body,
        fn_si,
        in_test: file.in_test.get(fn_si).copied().unwrap_or(false),
    })
}

/// Parse a parameter list `(…)`: `(has_self, names, base_types, arity)`.
fn parse_params(
    file: &SourceFile,
    open: usize,
    close: usize,
) -> (bool, Vec<String>, Vec<String>, usize) {
    let mut has_self = false;
    let mut names = Vec::new();
    let mut types = Vec::new();
    let mut start = open + 1;
    let mut k = open + 1;
    while k <= close {
        if matches!(file.stext(k), "(" | "[" | "{") && k < close {
            k = file.close_of.get(k).copied().flatten().unwrap_or(k) + 1;
            continue;
        }
        let boundary = k == close || is_top_level_comma(file, k, open);
        if boundary {
            if k > start {
                let colon = (start..k).find(|&j| file.stext(j) == ":");
                let is_self_param = (start..colon.unwrap_or(k)).any(|j| file.stext(j) == "self");
                if is_self_param {
                    has_self = true;
                } else {
                    let name = (start..colon.unwrap_or(k))
                        .rev()
                        .map(|j| file.stext(j))
                        .find(|x| {
                            x.chars()
                                .next()
                                .is_some_and(|c| c.is_alphabetic() || c == '_')
                        })
                        .unwrap_or("_")
                        .to_string();
                    let ty = colon
                        .map(|c| base_type_ident(file, c + 1, k))
                        .unwrap_or_default();
                    names.push(name);
                    types.push(ty);
                }
            }
            start = k + 1;
        }
        k += 1;
    }
    let arity = names.len();
    (has_self, names, types, arity)
}

/// Is the token at `k` a comma at angle-bracket depth 0 relative to the
/// parameter group opened at `open`? (`Fn(u8, u8)` interiors were skipped by
/// the caller; this guards `Result<T, E>` commas.)
fn is_top_level_comma(file: &SourceFile, k: usize, open: usize) -> bool {
    if file.stext(k) != "," {
        return false;
    }
    let mut depth = 0i32;
    for j in open + 1..k {
        match file.stext(j) {
            "<" => depth += 1,
            ">" if file.stext(j.wrapping_sub(1)) != "-" => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

/// Reduce a type token range to its base ident: the last path-segment ident
/// before the first `<` (skipping `&`, `mut`, lifetimes, `dyn`, `impl`).
fn base_type_ident(file: &SourceFile, start: usize, end: usize) -> String {
    let mut best = String::new();
    for k in start..end {
        let t = file.stext(k);
        if t == "<" {
            break;
        }
        let tok_kind = file.stok(k).map(|tk| tk.kind);
        if tok_kind == Some(TokenKind::Ident)
            && !matches!(t, "mut" | "dyn" | "impl" | "const" | "ref")
        {
            best = t.to_string();
        }
        if tok_kind == Some(TokenKind::Lifetime) {
            continue;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        parse_file(&f, 0)
    }

    #[test]
    fn free_fns_and_methods() {
        let src = "pub fn free(a: u32, b: &mut FileStore) -> u64 { 0 }\n\
                   impl Pager { fn read(&self, id: BlockId) -> Vec<u8> { v } }\n\
                   impl Journal for Wal { fn begin(&mut self) {} }";
        let p = parse(src);
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "free");
        assert!(p.fns[0].is_pub);
        assert_eq!(p.fns[0].arity, 2);
        assert_eq!(p.fns[0].param_types, vec!["u32", "FileStore"]);
        assert_eq!(p.fns[1].self_ty.as_deref(), Some("Pager"));
        assert!(p.fns[1].has_self);
        assert_eq!(p.fns[1].arity, 1);
        assert_eq!(p.fns[2].self_ty.as_deref(), Some("Wal"));
        assert_eq!(p.fns[2].trait_name.as_deref(), Some("Journal"));
    }

    #[test]
    fn generic_impls_and_paths() {
        let src = "impl<'a, T: Ord> Tree<'a, T> { fn get(&self) {} }\n\
                   impl fmt::Display for Label { fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) } }";
        let p = parse(src);
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("Tree"));
        assert_eq!(p.fns[1].self_ty.as_deref(), Some("Label"));
        assert_eq!(p.fns[1].trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn state_sites_fields_statics_aliases() {
        let src = "pub struct Pager { pool: RefCell<Pool>, hits: Cell<u64> }\n\
                   struct Wrap(Rc<Inner>);\n\
                   static mut COUNTER: u64 = 0;\n\
                   pub type SharedPager = Rc<Pager>;\n\
                   thread_local! { static TRACER: RefCell<Tracer> = RefCell::new(Tracer::new()); }";
        let p = parse(src);
        let kinds: Vec<_> = p.sites.iter().map(|s| (s.kind, s.name.clone())).collect();
        assert!(kinds.contains(&(StateKind::RefCell, "pool".to_string())));
        assert!(kinds.contains(&(StateKind::Cell, "hits".to_string())));
        assert!(kinds.iter().any(|(k, _)| *k == StateKind::Rc));
        assert!(kinds.contains(&(StateKind::StaticMut, "COUNTER".to_string())));
        assert!(kinds.contains(&(StateKind::ThreadLocal, "TRACER".to_string())));
        assert!(p
            .aliases
            .iter()
            .any(|(n, rhs)| n == "SharedPager" && rhs.contains(&"Pager".to_string())));
        // The alias wraps Rc, so it is also a site.
        assert!(p
            .sites
            .iter()
            .any(|s| s.kind == StateKind::Rc && s.name == "SharedPager"));
    }

    #[test]
    fn trait_default_methods_get_trait_self_ty() {
        let src = "pub trait Scheme { fn len(&self) -> u64; fn is_empty(&self) -> bool { self.len() == 0 } }";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1); // only the default method has a body
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("Scheme"));
    }

    #[test]
    fn test_code_is_marked() {
        let src = "#[cfg(test)]\nmod tests { fn helper() {} }\nfn live() {}";
        let p = parse(src);
        let h = p.fns.iter().find(|f| f.name == "helper").expect("helper");
        let l = p.fns.iter().find(|f| f.name == "live").expect("live");
        assert!(h.in_test);
        assert!(!l.in_test);
    }
}
