//! Lock-set dataflow: which `Mutex`/`RwLock` fields each function acquires,
//! how long each guard stays live, and the resulting workspace lock-order
//! graph.
//!
//! The BX015–BX017 rules and the `target/lock-order.json` artifact all run
//! over one [`LockAnalysis`]:
//!
//! * **Lock identities** are struct fields whose declared base type is
//!   `Mutex` or `RwLock`, keyed `crate::Container.field` (e.g.
//!   `boxes-pager::Pager.inner`). Static and local locks are not modeled —
//!   the caveat is documented in DESIGN.md under "lock-set soundness".
//! * **Acquisition events** come from three syntactic shapes: a zero-arg
//!   `.lock()`/`.read()`/`.write()` on a `base.field` receiver whose base
//!   resolves to a known container (`self`, a typed parameter, or a typed
//!   local), a `lock_unpoisoned(&base.field)` call (the workspace's blessed
//!   poison-recovering helper), and a resolved call edge to a
//!   *guard-returning helper* — a function whose return type names a guard
//!   and whose body acquires exactly one lock (`Pager::lock`).
//! * **Guard liveness** reuses the borrow-liveness walk from
//!   [`crate::dataflow`]: a guard bound with `let g = …` lives to its
//!   enclosing block close or an explicit `drop(g)`; a temporary lives to
//!   its statement's `;`. This over-approximates guards that die inside an
//!   `if` condition — the analysis errs toward reporting, like every rule
//!   in the catalog.
//! * **`may_acquire` summaries** close the per-function lock sets over
//!   *resolved* call edges to fixpoint. Unknown edges do not propagate:
//!   trait-object calls (`dyn Journal`) are invisible to the order graph,
//!   which is the price of zero false cycles (caveat in DESIGN.md).
//!
//! A lock-order edge `A → B` is recorded whenever a function acquires `B`
//! (directly or via a callee's `may_acquire`) while a guard of `A` is live.
//! Any cycle among those edges is a potential deadlock (BX015); an `A → A`
//! overlap is a self-deadlock with non-reentrant `std` locks (BX017).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{collect_local_types, EdgeKind, FnId};
use crate::dataflow::borrow_live_end;
use crate::lexer::TokenKind;
use crate::model::SourceFile;
use crate::parser::{crate_of, FnItem};
use crate::Analysis;

/// Field base types that declare a lock.
const LOCK_TYPES: [&str; 2] = ["Mutex", "RwLock"];

/// Zero-arg guard-returning methods on lock fields.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Return-type idents that mark a guard-returning helper.
const GUARD_TYPES: [&str; 3] = ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// Free helpers that acquire the lock passed as `&base.field`.
/// `lock_unpoisoned` is the workspace's canonical poison-recovering
/// acquisition (exported by `boxes-pager`).
const ACQUIRE_HELPERS: [&str; 1] = ["lock_unpoisoned"];

/// One lock acquisition inside a function body.
#[derive(Clone, Debug)]
pub struct Acquire {
    /// Lock identity, `crate::Container.field`.
    pub lock: String,
    /// Sig-index of the acquiring token (method name or helper call).
    pub si: usize,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Guard liveness window end (exclusive sig-index).
    pub live_end: usize,
    /// `Some(callee qual)` when acquired through a guard-returning helper.
    pub via: Option<String>,
}

/// Per-function lock summary.
#[derive(Clone, Debug, Default)]
pub struct FnLocks {
    /// Acquisition events in source order (direct shapes plus calls to
    /// guard-returning helpers).
    pub acquires: Vec<Acquire>,
    /// Locks this function may acquire, transitively over resolved call
    /// edges (fixpoint; unknown edges do not propagate).
    pub may_acquire: BTreeSet<String>,
    /// `Some(lock)` when the function returns a guard for exactly one lock
    /// (e.g. `Pager::lock`), making each call site an acquisition site.
    pub returns_guard: Option<String>,
}

/// One witness for a lock-order edge: `holder_fn` acquired `to` while a
/// guard of `from` was live.
#[derive(Clone, Debug)]
pub struct OrderWitness {
    /// Lock held when the inner acquisition happened.
    pub from: String,
    /// Lock acquired inside the held window.
    pub to: String,
    /// Qualified name of the function holding the guard.
    pub holder: String,
    /// Workspace-relative path of the witness site.
    pub path: String,
    /// 1-based line of the inner acquisition (or the call carrying it).
    pub line: usize,
    /// `Some(callee qual)` when the inner lock is taken inside a callee.
    pub via: Option<String>,
}

/// A same-lock re-acquisition while the first guard is still live (BX017).
#[derive(Clone, Debug)]
pub struct Reacquire {
    /// Function the overlap occurs in.
    pub fn_id: FnId,
    /// Sig-index of the second acquisition (or the call carrying it).
    pub si: usize,
    /// 1-based line of the second acquisition.
    pub line: usize,
    /// The lock acquired twice.
    pub lock: String,
    /// 1-based line of the still-live first acquisition.
    pub first_line: usize,
    /// `Some(callee qual)` when the re-acquisition is inside a callee.
    pub via: Option<String>,
}

/// The whole-workspace lock analysis.
pub struct LockAnalysis {
    /// Every modeled lock identity, sorted.
    pub locks: Vec<String>,
    /// Per-function summaries, parallel to `Analysis::graph.fns`.
    pub fn_locks: Vec<FnLocks>,
    /// All lock-order edge witnesses (may repeat an edge; deduplicated per
    /// `(from, to)` in the JSON export).
    pub witnesses: Vec<OrderWitness>,
    /// Same-lock overlaps, for BX017.
    pub reacquires: Vec<Reacquire>,
}

impl LockAnalysis {
    /// Build the lock analysis over a finished workspace [`Analysis`].
    pub fn build(a: &Analysis) -> LockAnalysis {
        // Lock identity table: (container, field) -> "crate::Container.field"
        // for every field declared as Mutex<…>/RwLock<…>.
        let mut field_locks: BTreeMap<(String, String), String> = BTreeMap::new();
        let mut locks: BTreeSet<String> = BTreeSet::new();
        for (i, p) in a.parsed.iter().enumerate() {
            let krate = crate_of(&a.files[i].path);
            for (container, field, base) in &p.fields {
                if LOCK_TYPES.contains(&base.as_str()) {
                    let key = format!("{krate}::{container}.{field}");
                    field_locks.insert((container.clone(), field.clone()), key.clone());
                    locks.insert(key);
                }
            }
        }
        // Container aliases (`SharedPager` -> [Arc, Pager]) so aliased
        // receivers still resolve their lock fields.
        let mut aliases: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for p in &a.parsed {
            for (name, rhs) in &p.aliases {
                aliases.entry(name.clone()).or_default().extend(rhs.clone());
            }
        }

        let g = &a.graph;
        let mut fn_locks: Vec<FnLocks> = g
            .fns
            .iter()
            .map(|f| {
                let mut fl = FnLocks::default();
                if let Some((open, close)) = f.body {
                    let file = &a.files[f.file_idx];
                    fl.acquires = direct_acquires(file, f, open, close, &field_locks, &aliases);
                }
                fl
            })
            .collect();

        // Guard-returning helpers: guard in the return type + exactly one
        // distinct direct lock.
        for (id, f) in g.fns.iter().enumerate() {
            let returns_guard = f
                .ret_tokens
                .iter()
                .any(|t| GUARD_TYPES.contains(&t.as_str()));
            if !returns_guard {
                continue;
            }
            let distinct: BTreeSet<&str> = fn_locks[id]
                .acquires
                .iter()
                .map(|e| e.lock.as_str())
                .collect();
            if distinct.len() == 1 {
                fn_locks[id].returns_guard = distinct.iter().next().map(|s| (*s).to_string());
            }
        }

        // Calls to guard-returning helpers are acquisition sites too.
        for id in 0..g.fns.len() {
            let f = &g.fns[id];
            let Some((open, close)) = f.body else {
                continue;
            };
            let file = &a.files[f.file_idx];
            let mut used: BTreeSet<usize> = fn_locks[id].acquires.iter().map(|e| e.si).collect();
            let mut extra: Vec<Acquire> = Vec::new();
            for e in &g.edges[id] {
                if e.kind == EdgeKind::Unknown || used.contains(&e.call_si) {
                    continue;
                }
                let Some(lock) = fn_locks[e.to].returns_guard.clone() else {
                    continue;
                };
                used.insert(e.call_si);
                extra.push(Acquire {
                    lock,
                    si: e.call_si,
                    line: e.line,
                    live_end: borrow_live_end(file, open, close, e.call_si),
                    via: Some(g.fns[e.to].qual()),
                });
            }
            fn_locks[id].acquires.extend(extra);
            fn_locks[id].acquires.sort_by_key(|e| e.si);
        }

        // may_acquire fixpoint over resolved edges.
        for fl in &mut fn_locks {
            fl.may_acquire = fl.acquires.iter().map(|e| e.lock.clone()).collect();
        }
        loop {
            let mut changed = false;
            for id in 0..g.fns.len() {
                let mut add: Vec<String> = Vec::new();
                for e in &g.edges[id] {
                    if e.kind == EdgeKind::Unknown {
                        continue;
                    }
                    for l in &fn_locks[e.to].may_acquire {
                        if !fn_locks[id].may_acquire.contains(l) {
                            add.push(l.clone());
                        }
                    }
                }
                if !add.is_empty() {
                    fn_locks[id].may_acquire.extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Window scan: for each live guard, other acquisitions and resolved
        // callee lock sets inside its window become order edges (distinct
        // locks) or re-acquisitions (same lock).
        let mut witnesses: Vec<OrderWitness> = Vec::new();
        let mut reacquires: Vec<Reacquire> = Vec::new();
        let mut seen_w: BTreeSet<(String, String, String, usize)> = BTreeSet::new();
        let mut seen_r: BTreeSet<(FnId, usize, String)> = BTreeSet::new();
        for (id, f) in g.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let events = &fn_locks[id].acquires;
            let event_sis: BTreeSet<usize> = events.iter().map(|e| e.si).collect();
            for e in events {
                for e2 in events {
                    if e2.si <= e.si || e2.si >= e.live_end {
                        continue;
                    }
                    if e2.lock == e.lock {
                        if seen_r.insert((id, e2.si, e2.lock.clone())) {
                            reacquires.push(Reacquire {
                                fn_id: id,
                                si: e2.si,
                                line: e2.line,
                                lock: e2.lock.clone(),
                                first_line: e.line,
                                via: e2.via.clone(),
                            });
                        }
                    } else if seen_w.insert((e.lock.clone(), e2.lock.clone(), f.qual(), e2.line)) {
                        witnesses.push(OrderWitness {
                            from: e.lock.clone(),
                            to: e2.lock.clone(),
                            holder: f.qual(),
                            path: f.path.clone(),
                            line: e2.line,
                            via: e2.via.clone(),
                        });
                    }
                }
                for c in &g.edges[id] {
                    if c.kind == EdgeKind::Unknown
                        || c.call_si <= e.si
                        || c.call_si >= e.live_end
                        || event_sis.contains(&c.call_si)
                    {
                        continue;
                    }
                    let callee = g.fns[c.to].qual();
                    for l in &fn_locks[c.to].may_acquire {
                        if *l == e.lock {
                            if seen_r.insert((id, c.call_si, l.clone())) {
                                reacquires.push(Reacquire {
                                    fn_id: id,
                                    si: c.call_si,
                                    line: c.line,
                                    lock: l.clone(),
                                    first_line: e.line,
                                    via: Some(callee.clone()),
                                });
                            }
                        } else if seen_w.insert((e.lock.clone(), l.clone(), f.qual(), c.line)) {
                            witnesses.push(OrderWitness {
                                from: e.lock.clone(),
                                to: l.clone(),
                                holder: f.qual(),
                                path: f.path.clone(),
                                line: c.line,
                                via: Some(callee.clone()),
                            });
                        }
                    }
                }
            }
        }

        LockAnalysis {
            locks: locks.into_iter().collect(),
            fn_locks,
            witnesses,
            reacquires,
        }
    }

    /// Cycles in the lock-order graph, each as an ordered node list
    /// (`[A, B, C]` means `A → B → C → A`). Deterministic: nodes are walked
    /// in sorted order. Self-loops cannot occur (same-lock overlaps are
    /// [`Reacquire`]s, not edges).
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for w in &self.witnesses {
            adj.entry(w.from.as_str())
                .or_default()
                .insert(w.to.as_str());
        }
        let nodes: BTreeSet<&str> = adj
            .iter()
            .flat_map(|(k, vs)| std::iter::once(*k).chain(vs.iter().copied()))
            .collect();
        // Transitive closure per node — lock graphs are tiny (a handful of
        // nodes), so the quadratic walk is fine.
        let reach = |start: &str| -> BTreeSet<&str> {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(n) = stack.pop() {
                for &m in adj.get(n).into_iter().flatten() {
                    if seen.insert(m) {
                        stack.push(m);
                    }
                }
            }
            seen
        };
        let reaches: BTreeMap<&str, BTreeSet<&str>> =
            nodes.iter().map(|&n| (n, reach(n))).collect();
        let mut groups: Vec<Vec<String>> = Vec::new();
        let mut assigned: BTreeSet<&str> = BTreeSet::new();
        for &n in &nodes {
            if assigned.contains(n) || !reaches[n].contains(n) {
                continue;
            }
            // The strongly connected component of n: mutual reachability.
            let grp: Vec<&str> = nodes
                .iter()
                .copied()
                .filter(|&m| reaches[n].contains(m) && reaches[m].contains(n))
                .collect();
            assigned.extend(grp.iter().copied());
            groups.push(order_cycle(&grp, &adj));
        }
        groups
    }

    /// Render the lock-order graph as pretty JSON for
    /// `target/lock-order.json`: all modeled locks, the deduplicated edge
    /// set with every witness, and any cycles.
    pub fn to_json(&self) -> String {
        let js = crate::report::json_string;
        // Group witnesses per (from, to).
        let mut edges: BTreeMap<(&str, &str), Vec<&OrderWitness>> = BTreeMap::new();
        for w in &self.witnesses {
            edges
                .entry((w.from.as_str(), w.to.as_str()))
                .or_default()
                .push(w);
        }
        let mut out = String::from("{\n");
        out.push_str("  \"locks\": [");
        for (i, l) in self.locks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&js(l));
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"edge_count\": {},\n", edges.len()));
        out.push_str("  \"edges\": [\n");
        for (i, ((from, to), ws)) in edges.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"from\": {}, ", js(from)));
            out.push_str(&format!("\"to\": {}, ", js(to)));
            out.push_str("\"witnesses\": [");
            for (j, w) in ws.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"holder\": {}, \"path\": {}, \"line\": {}, \"via\": {}}}",
                    js(&w.holder),
                    js(&w.path),
                    w.line,
                    match &w.via {
                        Some(v) => js(v),
                        None => "null".to_string(),
                    }
                ));
            }
            out.push_str("]}");
            if i + 1 < edges.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        let cycles = self.cycles();
        out.push_str("  \"cycles\": [");
        for (i, cycle) in cycles.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (j, n) in cycle.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&js(n));
            }
            out.push(']');
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Order an SCC's nodes along one concrete cycle: greedy walk from the
/// smallest node, always taking the smallest in-component successor not yet
/// visited. Falls back to sorted members if the walk dead-ends (possible in
/// dense components; the membership is still correct).
fn order_cycle(grp: &[&str], adj: &BTreeMap<&str, BTreeSet<&str>>) -> Vec<String> {
    let inset: BTreeSet<&str> = grp.iter().copied().collect();
    let Some(&start) = grp.first() else {
        return Vec::new();
    };
    let mut path: Vec<&str> = vec![start];
    let mut cur = start;
    loop {
        let next = adj
            .get(cur)
            .into_iter()
            .flatten()
            .copied()
            .find(|m| inset.contains(m) && !path.contains(m));
        match next {
            Some(m) => {
                path.push(m);
                cur = m;
            }
            None => {
                let closes = adj.get(cur).is_some_and(|s| s.contains(start));
                if closes && path.len() == grp.len() {
                    return path.iter().map(|s| (*s).to_string()).collect();
                }
                // Dead end or partial walk: report sorted membership.
                return grp.iter().map(|s| (*s).to_string()).collect();
            }
        }
    }
}

/// Direct acquisition events in one function body: `base.field.lock()`
/// shapes and `lock_unpoisoned(&base.field)` calls.
fn direct_acquires(
    file: &SourceFile,
    f: &FnItem,
    open: usize,
    close: usize,
    field_locks: &BTreeMap<(String, String), String>,
    aliases: &BTreeMap<String, Vec<String>>,
) -> Vec<Acquire> {
    let locals = collect_local_types(file, f, open, close);
    let mut out = Vec::new();
    for si in open + 1..close {
        if file.stok(si).map(|t| t.kind) != Some(TokenKind::Ident) {
            continue;
        }
        let t = file.stext(si);
        let lock = if ACQUIRE_METHODS.contains(&t)
            && si >= 1
            && file.stext(si - 1) == "."
            && file.stext(si + 1) == "("
            && file.close_of.get(si + 1).copied().flatten() == Some(si + 2)
        {
            // `base.field.lock()` — zero-arg only, so `store.read(id)`-style
            // I/O calls never match. Deeper chains stay unresolved.
            if si < 4 || file.stext(si - 3) != "." {
                continue;
            }
            let field = file.stext(si - 2);
            let base = file.stext(si - 4);
            let base_direct = si < 5 || file.stext(si - 5) != ".";
            if !base_direct || file.stok(si - 4).map(|tk| tk.kind) != Some(TokenKind::Ident) {
                continue;
            }
            resolve_lock(f, &locals, field_locks, aliases, base, field)
        } else if ACQUIRE_HELPERS.contains(&t)
            && file.stext(si + 1) == "("
            && (si == 0 || file.stext(si - 1) != ".")
        {
            // `lock_unpoisoned(&base.field)` — the argument must be a
            // borrowed two-segment field path.
            let mut j = si + 2;
            if file.stext(j) == "&" {
                j += 1;
            }
            let base = file.stext(j);
            if file.stok(j).map(|tk| tk.kind) != Some(TokenKind::Ident)
                || file.stext(j + 1) != "."
                || file.stok(j + 2).map(|tk| tk.kind) != Some(TokenKind::Ident)
                || file.stext(j + 3) != ")"
            {
                continue;
            }
            let field = file.stext(j + 2);
            resolve_lock(f, &locals, field_locks, aliases, base, field)
        } else {
            continue;
        };
        let Some(lock) = lock else {
            continue;
        };
        out.push(Acquire {
            lock,
            si,
            line: file.stok(si).map(|tk| tk.line).unwrap_or(0),
            live_end: borrow_live_end(file, open, close, si),
            via: None,
        });
    }
    out
}

/// Resolve `base.field` to a lock identity: `self` uses the enclosing impl
/// type; anything else must be a typed parameter or local. Sees through one
/// container alias level.
fn resolve_lock(
    f: &FnItem,
    locals: &BTreeMap<String, String>,
    field_locks: &BTreeMap<(String, String), String>,
    aliases: &BTreeMap<String, Vec<String>>,
    base: &str,
    field: &str,
) -> Option<String> {
    let container = if base == "self" {
        f.self_ty.clone()
    } else {
        locals.get(base).cloned()
    }?;
    if let Some(key) = field_locks.get(&(container.clone(), field.to_string())) {
        return Some(key.clone());
    }
    for t in aliases.get(&container).into_iter().flatten() {
        if let Some(key) = field_locks.get(&(t.clone(), field.to_string())) {
            return Some(key.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysis(srcs: &[(&str, &str)]) -> Analysis {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::parse(*p, *s))
            .collect();
        Analysis::build(files)
    }

    #[test]
    fn direct_method_and_helper_acquires_are_found() {
        let a = analysis(&[(
            "crates/x/src/lib.rs",
            "pub struct S { a: Mutex<u8>, b: RwLock<u8> }\n\
             fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().into_inner() }\n\
             impl S { pub fn f(&self) { let g = self.a.lock(); \
             let h = lock_unpoisoned(&self.a); let r = self.b.read(); } }",
        )]);
        let la = LockAnalysis::build(&a);
        assert_eq!(
            la.locks,
            vec!["boxes-x::S.a".to_string(), "boxes-x::S.b".to_string()]
        );
        let f = a
            .graph
            .fns
            .iter()
            .position(|f| f.name == "f")
            .expect("fn f");
        let locks: Vec<&str> = la.fn_locks[f]
            .acquires
            .iter()
            .map(|e| e.lock.as_str())
            .collect();
        assert_eq!(locks, vec!["boxes-x::S.a", "boxes-x::S.a", "boxes-x::S.b"]);
    }

    #[test]
    fn guard_returning_helper_marks_call_sites() {
        let a = analysis(&[(
            "crates/x/src/lib.rs",
            "pub struct P { inner: Mutex<u8> }\n\
             impl P { fn lock(&self) -> MutexGuard<'_, u8> { \
             lock_unpoisoned(&self.inner) } \
             pub fn api(&self) { let g = self.lock(); } }",
        )]);
        let la = LockAnalysis::build(&a);
        let helper = a
            .graph
            .fns
            .iter()
            .position(|f| f.name == "lock")
            .expect("helper");
        assert_eq!(
            la.fn_locks[helper].returns_guard.as_deref(),
            Some("boxes-x::P.inner")
        );
        let api = a
            .graph
            .fns
            .iter()
            .position(|f| f.name == "api")
            .expect("api");
        assert_eq!(la.fn_locks[api].acquires.len(), 1);
        assert!(la.fn_locks[api].acquires[0].via.is_some());
        assert!(la.fn_locks[api].may_acquire.contains("boxes-x::P.inner"));
    }

    #[test]
    fn overlapping_windows_make_edges_and_drop_ends_them() {
        let a = analysis(&[(
            "crates/x/src/lib.rs",
            "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S { pub fn held(&self) { let g = self.a.lock(); self.b.lock(); }\n\
             pub fn dropped(&self) { let g = self.b.lock(); drop(g); self.a.lock(); } }",
        )]);
        let la = LockAnalysis::build(&a);
        assert_eq!(la.witnesses.len(), 1, "{:?}", la.witnesses);
        assert_eq!(la.witnesses[0].from, "boxes-x::S.a");
        assert_eq!(la.witnesses[0].to, "boxes-x::S.b");
        assert!(la.cycles().is_empty());
    }

    #[test]
    fn cycle_detected_and_ordered() {
        let a = analysis(&[(
            "crates/x/src/lib.rs",
            "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S { pub fn ab(&self) { let g = self.a.lock(); self.b.lock(); }\n\
             pub fn ba(&self) { let g = self.b.lock(); self.a.lock(); } }",
        )]);
        let la = LockAnalysis::build(&a);
        let cycles = la.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(
            cycles[0],
            vec!["boxes-x::S.a".to_string(), "boxes-x::S.b".to_string()]
        );
        let json = la.to_json();
        assert!(json.contains("\"cycles\": [[\"boxes-x::S.a\", \"boxes-x::S.b\"]]"));
    }

    #[test]
    fn transitive_acquire_through_callee_is_an_edge() {
        let a = analysis(&[(
            "crates/x/src/lib.rs",
            "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S { fn takes_b(&self) { let g = self.b.lock(); }\n\
             pub fn outer(&self) { let g = self.a.lock(); self.takes_b(); } }",
        )]);
        let la = LockAnalysis::build(&a);
        assert_eq!(la.witnesses.len(), 1, "{:?}", la.witnesses);
        assert_eq!(la.witnesses[0].to, "boxes-x::S.b");
        assert!(la.witnesses[0]
            .via
            .as_deref()
            .is_some_and(|v| v.contains("takes_b")));
    }

    #[test]
    fn same_lock_overlap_is_a_reacquire_not_an_edge() {
        let a = analysis(&[(
            "crates/x/src/lib.rs",
            "pub struct S { a: Mutex<u8> }\n\
             impl S { pub fn twice(&self) { let g = self.a.lock(); self.a.lock(); } }",
        )]);
        let la = LockAnalysis::build(&a);
        assert!(la.witnesses.is_empty());
        assert_eq!(la.reacquires.len(), 1);
        assert_eq!(la.reacquires[0].lock, "boxes-x::S.a");
    }
}
