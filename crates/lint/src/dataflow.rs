//! Per-function dataflow summaries.
//!
//! Three token-level analyses feed the BX012–BX014 rules:
//!
//! * **I/O-error Result propagation** ([`summarize`]): which functions
//!   produce a `Result` carrying `PagerError`/`WalError` — directly (the
//!   error type appears in the return type) or transitively (the function
//!   returns a `Result` and propagates an I/O-result call with `?`). The
//!   transitive closure is a fixpoint over the call graph.
//! * **Borrow liveness** ([`borrow_conflicts`]): `RefCell` borrows bound to
//!   locals are live to the end of their enclosing block (or an explicit
//!   `drop`); a second borrow of the same field inside that window, with at
//!   least one side mutable, is the static shadow of a latch conflict.
//! * **Span ordering** ([`spans_after_early_return`]): an `OpSpan::op`
//!   opened after a `?`/`return` in the same body has early-return paths
//!   on which the operation runs with no attribution window at all.

use crate::callgraph::{CallGraph, EdgeKind};
use crate::lexer::TokenKind;
use crate::model::SourceFile;

/// Error-type names whose `Result`s BX012 guards.
pub const IO_ERROR_TYPES: [&str; 2] = ["PagerError", "WalError"];

/// What one function's signature and body imply for error flow.
#[derive(Clone, Copy, Debug, Default)]
pub struct FnSummary {
    /// The return type mentions `Result`.
    pub returns_result: bool,
    /// The return type names an I/O error type directly.
    pub io_error_direct: bool,
    /// Produces an I/O-error `Result` — directly or by `?`-propagating one
    /// (transitive fixpoint).
    pub io_result: bool,
}

/// Build summaries for every node in the graph, running the propagation
/// fixpoint to completion.
pub fn summarize(graph: &CallGraph, files: &[SourceFile]) -> Vec<FnSummary> {
    let mut out: Vec<FnSummary> = graph
        .fns
        .iter()
        .map(|f| {
            let returns_result = f.ret_tokens.iter().any(|t| t == "Result");
            let io_error_direct = returns_result
                && f.ret_tokens
                    .iter()
                    .any(|t| IO_ERROR_TYPES.contains(&t.as_str()));
            FnSummary {
                returns_result,
                io_error_direct,
                io_result: io_error_direct,
            }
        })
        .collect();
    // Fixpoint: a Result-returning fn that `?`-propagates an io_result call
    // becomes io_result itself. Only resolved edges propagate — an unknown
    // edge is too weak a signal to brand the caller's whole signature.
    loop {
        let mut changed = false;
        for (id, f) in graph.fns.iter().enumerate() {
            if out[id].io_result || !out[id].returns_result {
                continue;
            }
            let file = &files[f.file_idx];
            let hit = graph.edges[id].iter().any(|e| {
                e.kind != EdgeKind::Unknown
                    && out[e.to].io_result
                    && call_is_propagated(file, e.call_si)
            });
            if hit {
                out[id].io_result = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    out
}

/// Does the call whose name token is at `si` end in a `?` (directly or
/// through a trailing method chain such as `.map_err(…)?`)?
pub fn call_is_propagated(file: &SourceFile, si: usize) -> bool {
    let Some(mut j) = file.close_of.get(si + 1).copied().flatten() else {
        return false;
    };
    loop {
        match file.stext(j + 1) {
            "?" => return true,
            "." => {
                // Skip `.ident(…)` or `.ident` links.
                let name = j + 2;
                if file.stok(name).map(|t| t.kind) != Some(TokenKind::Ident) {
                    return false;
                }
                if file.stext(name + 1) == "(" {
                    match file.close_of.get(name + 1).copied().flatten() {
                        Some(c) => j = c,
                        None => return false,
                    }
                } else {
                    j = name;
                }
            }
            _ => return false,
        }
    }
}

/// How a call's `Result` value is consumed at its call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Consumption {
    /// Propagated with `?`.
    Propagated,
    /// `let _ = f(…);` — wildcard-dropped.
    WildcardDropped,
    /// `f(…);` as a bare statement.
    BareStatement,
    /// `f(…).ok();` — converted to `Option` and then dropped.
    OkSilenced,
    /// `match f(…) { …, Err(_) => {} }` — the error arm does nothing.
    IgnoredErrArm,
    /// Anything else: bound, matched meaningfully, chained onward.
    Flows,
}

impl Consumption {
    /// Is the error silently thrown away?
    pub fn is_swallowed(self) -> bool {
        matches!(
            self,
            Consumption::WildcardDropped
                | Consumption::BareStatement
                | Consumption::OkSilenced
                | Consumption::IgnoredErrArm
        )
    }

    /// Human label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Consumption::WildcardDropped => "`let _ =`-dropped",
            Consumption::BareStatement => "discarded as a bare statement",
            Consumption::OkSilenced => "`.ok()`-silenced",
            Consumption::IgnoredErrArm => "matched with an ignoring `Err(_) => {}` arm",
            _ => "consumed",
        }
    }
}

/// Classify how the call at name token `si` is consumed. `chain_start`
/// must locate the first token of the receiver chain (see
/// [`crate::rules::chain_start`]); it is injected to avoid a module cycle.
pub fn classify_consumption(
    file: &SourceFile,
    si: usize,
    chain_start: impl Fn(&SourceFile, usize) -> Option<usize>,
) -> Consumption {
    if call_is_propagated(file, si) {
        return Consumption::Propagated;
    }
    let Some(close) = file.close_of.get(si + 1).copied().flatten() else {
        return Consumption::Flows;
    };
    // Trailing `.ok();`
    if file.stext(close + 1) == "." && file.stext(close + 2) == "ok" && file.stext(close + 3) == "("
    {
        if let Some(okc) = file.close_of.get(close + 3).copied().flatten() {
            if file.stext(okc + 1) == ";" {
                return Consumption::OkSilenced;
            }
        }
        return Consumption::Flows;
    }
    let start = match chain_start(file, si) {
        Some(s) => s,
        None => return Consumption::Flows,
    };
    // `match f(…) { … }` with an ignoring error arm.
    if start >= 1 && file.stext(start - 1) == "match" {
        if let Some(arm) = ignoring_err_arm(file, close) {
            return arm;
        }
        return Consumption::Flows;
    }
    if file.stext(close + 1) != ";" {
        return Consumption::Flows;
    }
    if start == 0 {
        return Consumption::BareStatement;
    }
    let prev = file.stext(start - 1);
    if matches!(prev, ";" | "{" | "}") {
        return Consumption::BareStatement;
    }
    if prev == "=" && start >= 3 && file.stext(start - 2) == "_" && file.stext(start - 3) == "let" {
        return Consumption::WildcardDropped;
    }
    Consumption::Flows
}

/// After the argument close paren of a matched call, find the match body and
/// look for `Err(_) => {}` / `Err(_) => ()` arms.
fn ignoring_err_arm(file: &SourceFile, args_close: usize) -> Option<Consumption> {
    // The match body is the next `{` after the scrutinee.
    let mut j = args_close + 1;
    let mut guard = 0;
    while file.stext(j) != "{" {
        j += 1;
        guard += 1;
        if guard > 16 || j >= file.slen() {
            return None;
        }
    }
    let body_close = file.close_of.get(j).copied().flatten()?;
    let mut k = j + 1;
    while k < body_close {
        if file.stext(k) == "Err"
            && file.stext(k + 1) == "("
            && file.stext(k + 2) == "_"
            && file.stext(k + 3) == ")"
            && file.stext(k + 4) == "="
            && file.stext(k + 5) == ">"
        {
            let arm = k + 6;
            let empty_block = file.stext(arm) == "{"
                && file.close_of.get(arm).copied().flatten() == Some(arm + 1);
            let unit = file.stext(arm) == "("
                && file.close_of.get(arm).copied().flatten() == Some(arm + 1);
            if empty_block || unit {
                return Some(Consumption::IgnoredErrArm);
            }
        }
        k += 1;
    }
    None
}

/// One conflicting second borrow found by [`borrow_conflicts`].
#[derive(Clone, Debug)]
pub struct BorrowConflict {
    /// Sig-index of the second (conflicting) borrow's method name.
    pub si: usize,
    /// Normalized receiver key, e.g. `self.frames`.
    pub key: String,
    /// 1-based line of the first (still-live) borrow.
    pub first_line: usize,
    /// Whether the *second* borrow is mutable.
    pub second_mut: bool,
}

struct BorrowEvent {
    si: usize,
    key: String,
    mutable: bool,
    /// Live until this sig-index (exclusive).
    live_end: usize,
    line: usize,
}

/// Find `borrow_mut()`-while-borrowed conflicts inside one function body
/// (`open`..`close` are the body braces).
///
/// A borrow bound with `let g = recv.borrow[_mut]()` is live until its
/// enclosing block closes or `drop(g)` runs; a temporary borrow is live to
/// its statement's `;`. Two overlapping borrows of the same receiver key
/// with at least one mutable side conflict — the runtime would panic, and
/// the future latch protocol would deadlock.
pub fn borrow_conflicts(file: &SourceFile, open: usize, close: usize) -> Vec<BorrowConflict> {
    let mut events: Vec<BorrowEvent> = Vec::new();
    for si in open + 1..close {
        let name = file.stext(si);
        let mutable = match name {
            "borrow_mut" => true,
            "borrow" => false,
            _ => continue,
        };
        if file.stok(si).map(|t| t.kind) != Some(TokenKind::Ident)
            || si < 2
            || file.stext(si - 1) != "."
            || file.stext(si + 1) != "("
        {
            continue;
        }
        // Zero-arg call only (RefCell::borrow/borrow_mut take none).
        let Some(args_close) = file.close_of.get(si + 1).copied().flatten() else {
            continue;
        };
        if args_close != si + 2 {
            continue;
        }
        let Some(key) = receiver_key(file, si - 2) else {
            continue;
        };
        let line = file.stok(si).map(|t| t.line).unwrap_or(0);
        let live_end = borrow_live_end(file, open, close, si);
        events.push(BorrowEvent {
            si,
            key,
            mutable,
            live_end,
            line,
        });
    }
    let mut out = Vec::new();
    for (i, first) in events.iter().enumerate() {
        for second in events.iter().skip(i + 1) {
            if second.key == first.key
                && second.si < first.live_end
                && (first.mutable || second.mutable)
            {
                out.push(BorrowConflict {
                    si: second.si,
                    key: second.key.clone(),
                    first_line: first.line,
                    second_mut: second.mutable,
                });
            }
        }
    }
    out
}

/// Normalize a borrow receiver ending at sig-index `last` into a dotted
/// ident key (`self.frames`, `inner.cache`). `None` when the receiver is an
/// expression we cannot name (call results, index chains).
fn receiver_key(file: &SourceFile, last: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = last;
    loop {
        if file.stok(j).map(|t| t.kind) != Some(TokenKind::Ident) {
            return None;
        }
        parts.push(file.stext(j).to_string());
        if j >= 2 && file.stext(j - 1) == "." {
            j -= 2;
        } else {
            break;
        }
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Where does the borrow starting at method-name token `si` stop being
/// live?
///
/// * Bound via `let g = …` → the enclosing block's close (or an
///   intervening `drop(g)`).
/// * Temporary → the statement's terminating `;`.
///
/// Shared with the lock-set analysis ([`crate::locks`]): a `MutexGuard`
/// binding has exactly the same liveness shape as a `RefCell` borrow.
pub(crate) fn borrow_live_end(
    file: &SourceFile,
    body_open: usize,
    body_close: usize,
    si: usize,
) -> usize {
    // Statement start: walk left to the nearest `;`/`{`/`}` inside the body.
    let mut stmt_start = si;
    while stmt_start > body_open + 1 && !matches!(file.stext(stmt_start - 1), ";" | "{" | "}") {
        stmt_start -= 1;
    }
    let bound_name = if file.stext(stmt_start) == "let" {
        let mut n = stmt_start + 1;
        if file.stext(n) == "mut" {
            n += 1;
        }
        // Only simple `let name = …` bindings count; `let (a, b) = …` and
        // wildcard drops do not extend liveness.
        if file.stok(n).is_some_and(|t| t.kind == TokenKind::Ident) && file.stext(n) != "_" {
            Some(file.stext(n).to_string())
        } else {
            None
        }
    } else {
        None
    };
    match bound_name {
        None => {
            // Temporary: live to the end of the statement.
            let mut j = si;
            while j < body_close && file.stext(j) != ";" {
                if matches!(file.stext(j), "(" | "[" | "{") {
                    j = file.close_of.get(j).copied().flatten().unwrap_or(j) + 1;
                    continue;
                }
                j += 1;
            }
            j
        }
        Some(name) => {
            let block_close = enclosing_block_close(file, body_open, body_close, si);
            // An explicit `drop(name)` ends the borrow early.
            let mut j = si;
            while j < block_close {
                if file.stext(j) == "drop"
                    && file.stext(j + 1) == "("
                    && file.stext(j + 2) == name.as_str()
                    && file.stext(j + 3) == ")"
                {
                    return j;
                }
                j += 1;
            }
            block_close
        }
    }
}

/// The close brace of the innermost `{ … }` containing `si` within the
/// function body (`body_open`..`body_close`).
fn enclosing_block_close(
    file: &SourceFile,
    body_open: usize,
    body_close: usize,
    si: usize,
) -> usize {
    let mut best = body_close;
    let mut stack: Vec<usize> = Vec::new();
    let mut j = body_open + 1;
    while j < body_close {
        match file.stext(j) {
            "{" => stack.push(j),
            "}" => {
                if let Some(o) = stack.pop() {
                    if o < si && j > si && j < best {
                        best = j;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    best
}

/// One `OpSpan::op` constructed after fallible work in the same body.
#[derive(Clone, Debug)]
pub struct LateSpan {
    /// Sig-index of the `op` token.
    pub si: usize,
    /// What precedes the span: `"?"` or `"return"`.
    pub reason: &'static str,
    /// 1-based line of the earliest preceding early-return token.
    pub early_line: usize,
}

/// Find `OpSpan::op(…)` constructions preceded by a `?` operator or a
/// `return` statement in the same function body. Phase spans are exempt —
/// they are scoped refinements inside an already-open op window.
pub fn spans_after_early_return(file: &SourceFile, open: usize, close: usize) -> Vec<LateSpan> {
    let mut first_fallible: Option<(&'static str, usize)> = None;
    let mut out = Vec::new();
    for si in open + 1..close {
        let t = file.stext(si);
        if first_fallible.is_none() {
            let reason = match t {
                "?" if file.stok(si).map(|tk| tk.kind) == Some(TokenKind::Punct) => Some("?"),
                "return" => Some("return"),
                _ => None,
            };
            if let Some(r) = reason {
                let line = file.stok(si).map(|tk| tk.line).unwrap_or(0);
                first_fallible = Some((r, line));
                continue;
            }
        }
        if t == "op"
            && file.stext(si + 1) == "("
            && si >= 3
            && file.stext(si - 1) == ":"
            && file.stext(si - 2) == ":"
            && file.stext(si - 3) == "OpSpan"
        {
            if let Some((reason, early_line)) = first_fallible {
                out.push(LateSpan {
                    si,
                    reason,
                    early_line,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::parser::parse_file;

    fn analysis(src: &str) -> (Vec<SourceFile>, CallGraph, Vec<FnSummary>) {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let p = parse_file(&f, 0);
        let files = vec![f];
        let g = CallGraph::build(&files, std::slice::from_ref(&p));
        let s = summarize(&g, &files);
        (files, g, s)
    }

    fn summary_of<'s>(g: &CallGraph, s: &'s [FnSummary], name: &str) -> &'s FnSummary {
        let id = g.fns.iter().position(|f| f.name == name).expect("fn");
        &s[id]
    }

    #[test]
    fn direct_and_transitive_io_results() {
        let src = "\
fn raw() -> Result<(), PagerError> { Ok(()) }
fn wraps() -> Result<u8, PagerError> { raw()?; Ok(1) }
fn chained() -> Result<u8, MyError> { raw().map_err(MyError::from)?; Ok(1) }
fn unrelated() -> Result<u8, OtherError> { Ok(1) }
fn consumes() { let _ = raw(); }";
        let (_, g, s) = analysis(src);
        assert!(summary_of(&g, &s, "raw").io_error_direct);
        assert!(summary_of(&g, &s, "wraps").io_result);
        assert!(summary_of(&g, &s, "chained").io_result);
        assert!(!summary_of(&g, &s, "unrelated").io_result);
        assert!(!summary_of(&g, &s, "consumes").io_result);
    }

    fn body_of(src: &str) -> (SourceFile, usize, usize) {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let open = (0..f.slen()).find(|&i| f.stext(i) == "{").expect("open");
        let close = f.close_of[open].expect("close");
        (f, open, close)
    }

    #[test]
    fn borrow_conflict_detection() {
        let (f, o, c) =
            body_of("fn f(&self) { let a = self.frames.borrow_mut(); self.frames.borrow(); }");
        let confl = borrow_conflicts(&f, o, c);
        assert_eq!(confl.len(), 1);
        assert_eq!(confl[0].key, "self.frames");
    }

    #[test]
    fn distinct_fields_and_dropped_borrows_pass() {
        let (f, o, c) = body_of(
            "fn f(&self) { let a = self.frames.borrow_mut(); drop(a); self.frames.borrow_mut(); \
             let b = self.other.borrow(); self.frames.borrow(); }",
        );
        assert!(borrow_conflicts(&f, o, c).is_empty());
    }

    #[test]
    fn shared_then_shared_is_fine_and_scopes_end_borrows() {
        let (f, o, c) = body_of(
            "fn f(&self) { let a = self.x.borrow(); self.x.borrow(); \
             { let b = self.y.borrow_mut(); } self.y.borrow_mut(); }",
        );
        assert!(borrow_conflicts(&f, o, c).is_empty());
    }

    #[test]
    fn temporary_borrow_in_same_statement_conflicts() {
        let (f, o, c) = body_of("fn f(&self) { swap(self.x.borrow_mut(), self.x.borrow_mut()); }");
        assert_eq!(borrow_conflicts(&f, o, c).len(), 1);
    }

    #[test]
    fn late_spans_flagged_early_spans_pass() {
        let (f, o, c) = body_of(
            "fn f(&self) -> Result<(), E> { self.gate()?; let _s = OpSpan::op(\"W\", \"i\"); Ok(()) }",
        );
        let late = spans_after_early_return(&f, o, c);
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].reason, "?");

        let (f, o, c) = body_of(
            "fn f(&self) -> Result<(), E> { let _s = OpSpan::op(\"W\", \"i\"); self.gate()?; \
             let _p = OpSpan::phase(\"split\"); Ok(()) }",
        );
        assert!(spans_after_early_return(&f, o, c).is_empty());
    }

    #[test]
    fn consumption_classification() {
        let chain = |f: &SourceFile, si: usize| crate::rules::chain_start(f, si);
        let cases: [(&str, Consumption); 6] = [
            ("fn f() { let _ = io(); }", Consumption::WildcardDropped),
            ("fn f() { io(); }", Consumption::BareStatement),
            ("fn f() { io().ok(); }", Consumption::OkSilenced),
            (
                "fn f() { match io() { Ok(v) => use_it(v), Err(_) => {} } }",
                Consumption::IgnoredErrArm,
            ),
            ("fn f() -> R { io()?; Ok(()) }", Consumption::Propagated),
            ("fn f() { let x = io(); keep(x); }", Consumption::Flows),
        ];
        for (src, want) in cases {
            let f = SourceFile::parse("crates/x/src/lib.rs", src);
            let si = (0..f.slen())
                .find(|&i| f.stext(i) == "io" && f.stext(i + 1) == "(")
                .expect("call");
            assert_eq!(classify_consumption(&f, si, chain), want, "{src}");
        }
    }
}
