//! The BX rule catalog.
//!
//! Three rule families share this module's helpers:
//!
//! * [`stream`] — BX001–BX009 and BX020, pure functions over one
//!   [`SourceFile`]'s token stream (no cross-file knowledge).
//! * [`graph`] — BX010–BX014, functions over the whole-workspace
//!   [`Analysis`](crate::Analysis): call graph plus dataflow summaries.
//! * [`locks`] — BX015–BX019, lock-discipline rules over the workspace
//!   lock-set analysis ([`crate::locks`]): lock-order cycles, guards held
//!   across disk I/O, re-acquisition, the sync-readiness ratchet, and
//!   atomic-ordering hygiene.
//!
//! Every rule errs on the side of firing — a finding can be baselined with
//! a justification; a silent miss cannot.

/// BX010–BX014: call-graph and dataflow rules over the whole workspace.
pub mod graph;
/// BX015–BX019: lock-discipline rules over the lock-set analysis.
pub mod locks;
/// BX001–BX009 and BX020: per-file token-stream rules.
pub mod stream;

use crate::lexer::TokenKind;
use crate::model::SourceFile;
use crate::report::Diagnostic;

pub use stream::collect_report_fns;

/// All stable rule IDs, in catalog order.
pub const RULE_IDS: [&str; 20] = [
    "BX001", "BX002", "BX003", "BX004", "BX005", "BX006", "BX007", "BX008", "BX009", "BX010",
    "BX011", "BX012", "BX013", "BX014", "BX015", "BX016", "BX017", "BX018", "BX019", "BX020",
];

/// Rationale and fix recipe for one rule, rendered by
/// `cargo xtask analyze --explain BXnnn`.
pub struct RuleDoc {
    /// Stable rule ID.
    pub id: &'static str,
    /// One-line invariant statement.
    pub title: &'static str,
    /// Why the workspace enforces it (ties back to the paper's claims).
    pub rationale: &'static str,
    /// How to fix a finding (or when to baseline it instead).
    pub fix: &'static str,
}

/// The full rule documentation table.
pub const RULE_DOCS: [RuleDoc; 20] = [
    RuleDoc {
        id: "BX001",
        title: "pager I/O (`read/write/alloc/free`) only in designated I/O modules",
        rationale: "Every complexity claim (Thm 4.4, Thm 5.1) counts pager block transfers. \
                    A direct pager call outside the accounted storage modules is I/O the \
                    measurements never see.",
        fix: "Route the access through the owning scheme's API. If the module genuinely is \
              a storage module, add it to [rules.BX001] allow_paths with a comment.",
    },
    RuleDoc {
        id: "BX002",
        title: "`std::fs` only behind the pager's file backend and tooling",
        rationale: "The pager is the paper's disk model; side-channel file I/O bypasses \
                    block-transfer accounting entirely.",
        fix: "Use `Pager`/`FileStore` for data. Report/artifact writers belong in xtask or \
              crates/bench, which are policy-allowed.",
    },
    RuleDoc {
        id: "BX003",
        title: "no `unwrap/expect/panic!/unreachable!` in non-test library code",
        rationale: "Auditors must report corruption, not crash on it; a panic mid-update can \
                    strand a half-relabeled structure the audit can no longer inspect.",
        fix: "Return a typed error or restructure so the invariant is checked once. A \
              documented contract panic gets a [[allow]] with the invariant as justification.",
    },
    RuleDoc {
        id: "BX004",
        title: "no `as` casts to integer types",
        rationale: "Label-bit budgets are load-bearing (naive-k exists because labels \
                    overflow); a silent truncation fabricates exactly the overflow BOXes \
                    avoid.",
        fix: "Use `From`/`TryFrom` or the checked helpers in `pager::codec` \
              (`u32_to_usize`, `usize_to_u64`, `usize_to_u32`, `u64_to_index`, …). \
              Provably-safe casts get per-file [[allow]] entries.",
    },
    RuleDoc {
        id: "BX005",
        title: "`AuditReport`/`IoStats` producers are `#[must_use]`, never dropped",
        rationale: "A dropped audit report is a skipped invariant check; dropped I/O stats \
                    un-measure the experiment.",
        fix: "Add `#[must_use]` to the producer; consume or explicitly assert on the value \
              at call sites.",
    },
    RuleDoc {
        id: "BX006",
        title: "every `pub` item carries a doc comment",
        rationale: "The repo is a paper reproduction — an undocumented public surface loses \
                    the mapping back to the paper's definitions.",
        fix: "Write a `///` comment tying the item to its paper construct, or restrict \
              visibility to `pub(crate)`.",
    },
    RuleDoc {
        id: "BX007",
        title: "no wall-clock reads (`std::time`) in library code",
        rationale: "Crash-recovery sweeps and experiments replay seeded workloads and demand \
                    bit-identical results; a clock read breaks the committed-prefix oracle.",
        fix: "Pass logical ticks or counters in. Timing belongs to crates/bench and xtask \
              (policy-allowed).",
    },
    RuleDoc {
        id: "BX008",
        title: "pager/WAL I/O `Result`s are handled, never `let _ =` / bare-`;` / `.ok();`",
        rationale: "A swallowed `PagerError` is a swallowed disk fault: the structure \
                    silently diverges from media and the next audit reads fiction.",
        fix: "Propagate with `?`, branch on the value, or park the failure in degraded \
              mode via the documented gate-first pattern.",
    },
    RuleDoc {
        id: "BX009",
        title: "trace spans are bound to named locals, never dropped or leaked",
        rationale: "An `OpSpan` is an RAII attribution window; an unbound constructor drops \
                    it immediately and `mem::forget` skews every enclosing span.",
        fix: "Bind the span: `let _span = OpSpan::op(…)`. Never `mem::forget` an RAII \
              guard in library code.",
    },
    RuleDoc {
        id: "BX010",
        title: "transitive pager-I/O discipline: no path to the raw disk surface that \
                bypasses `Pager`",
        rationale: "BX001 only sees direct calls. The call graph extends the same invariant \
                    through helpers: a function outside the pager crate must not reach \
                    `FileStore`/`DiskImage`/`DiskBlock` methods except through the blessed \
                    `Pager` API, or block transfers escape accounting transitively.",
        fix: "Insert the `Pager` surface between the helper chain and the raw store. \
              Deliberate corruption injection (faultlib, chaos tooling) is policy-allowed \
              via [rules.BX010] allow_paths.",
    },
    RuleDoc {
        id: "BX011",
        title: "concurrency-readiness inventory: every `RefCell`/`Cell`/`Rc`/\
                `thread_local!`/`static mut` in library crates is a tracked finding",
        rationale: "ROADMAP item 1 (concurrent multi-session core) is blocked by !Send/!Sync \
                    shared state. Each site is inventoried — with its containing type and \
                    the public APIs that reach it — in target/sync-readiness.json, the \
                    burndown the concurrency PR consumes. The baseline can only shrink, so \
                    new shared state cannot land unnoticed.",
        fix: "Either replace the construct with a Sync-ready design (latch-per-frame, \
              atomics, owned state) or add a [[allow]] naming the refactor that will \
              retire it. The JSON report tracks the burndown either way.",
    },
    RuleDoc {
        id: "BX012",
        title: "no swallowed `PagerError`/`WalError` Results, transitively",
        rationale: "BX008 guards a fixed list of entry-point names; BX012 follows the call \
                    graph — any function that produces or `?`-propagates an I/O-error \
                    Result is protected, so wrapping an I/O call in a helper no longer \
                    hides a swallowed disk fault.",
        fix: "Propagate with `?`, handle both arms meaningfully, or document why the error \
              is ignorable in a [[allow]] justification.",
    },
    RuleDoc {
        id: "BX013",
        title: "latch-discipline scaffold: no `borrow_mut()` while another borrow of the \
                same field is live",
        rationale: "Overlapping `RefCell` borrow windows panic today and deadlock tomorrow \
                    — the latch-per-frame refactor maps each borrow window onto a latch \
                    hold. Non-overlapping windows are the static precondition for a cycle-\
                    free latch order.",
        fix: "Narrow the first borrow's scope (inner block or explicit `drop`) before \
              taking the second, or split the state so the borrows touch different cells.",
    },
    RuleDoc {
        id: "BX014",
        title: "span balance: `OpSpan::op` opens before any fallible work in its function",
        rationale: "The profile gate enforces that every pager I/O lands in an open span. \
                    An op span constructed after a `?`/`return` leaves early-return paths \
                    (including fault-service retries) unattributed, which the attribution \
                    identity then reports as someone else's I/O.",
        fix: "Open the op span as the first statement of the public entry point — before \
              gates, journaled() checks, or any `?`. Phase spans are exempt.",
    },
    RuleDoc {
        id: "BX015",
        title: "lock-order graph is acyclic: no path acquires lock B holding A while \
                another acquires A holding B",
        rationale: "The storage core is Send + Sync; deadlock freedom now rests on a \
                    single global lock order. The analysis records an edge A → B \
                    whenever any path acquires B while a guard of A is live (directly \
                    or through a callee's lock set) and exports the graph with \
                    witnesses to target/lock-order.json. Any cycle is a schedule away \
                    from a frozen pager.",
        fix: "Pick one acquisition order and restructure the violating path (usually: \
              drop the outer guard before calling into the other subsystem, as \
              `Wal::commit` does around the barrier tick). Witness paths in \
              target/lock-order.json show exactly which functions to fix.",
    },
    RuleDoc {
        id: "BX016",
        title: "no guard held across a call that reaches the raw disk surface",
        rationale: "A mutex held across `FileStore`/`DiskImage`/`DiskBlock` I/O \
                    serializes every other thread behind disk latency — the \
                    concurrent-session throughput the BOX maintenance bounds promise \
                    evaporates behind one hot lock. The pager crate itself is \
                    policy-allowed: holding its own inner lock across its backend is \
                    the design.",
        fix: "Copy what the I/O needs out of the guarded state, drop the guard, then \
              do the I/O (the WAL's commit path is the template). If the hold is \
              deliberate, add the path to [rules.BX016] allow_paths with a comment.",
    },
    RuleDoc {
        id: "BX017",
        title: "no same-lock re-acquisition while the first guard is live",
        rationale: "std::sync locks are not reentrant: a path that re-locks a mutex it \
                    already holds — directly or through a helper that locks the same \
                    field — deadlocks itself the first time it runs. Single-threaded \
                    tests never catch this; the analysis does.",
        fix: "Thread the existing guard (or the data it derefs to) into the helper \
              instead of re-locking, or drop the first guard before the second \
              acquisition. Guard-returning helpers like `Pager::lock` are modeled, so \
              moving the lock into one does not hide the overlap.",
    },
    RuleDoc {
        id: "BX018",
        title: "sync-readiness ratchet: no new interior-mutability or shared-ownership \
                sites in library crates",
        rationale: "The Send + Sync refactor burned the BX011 inventory down to a \
                    deliberate handful. BX018 is the ratchet that keeps it burned: it \
                    fires on the same sites as BX011 but is suppressible only through \
                    [[ratchet]] entries in lint.toml, which are stale-checked — so a \
                    new site is a hard error and a removed site retires its entry.",
        fix: "Use Mutex/RwLock/atomics (or owned state) instead. A deliberate \
              survivor — e.g. the per-thread span stack in boxes-trace — gets a \
              [[ratchet]] entry with the design rationale as justification.",
    },
    RuleDoc {
        id: "BX019",
        title: "no bare relaxed atomic ordering in library crates",
        rationale: "The workspace standardizes on SeqCst: the atomics guard cheap \
                    counters and flags, not hot paths, so the strongest ordering costs \
                    nothing measurable while a misplaced weak ordering costs a \
                    heisenbug. Weakening is opt-in, not default.",
        fix: "Use Ordering::SeqCst. If a profile shows the fence matters, weaken it \
              behind a justified [[allow]] citing the measurement.",
    },
    RuleDoc {
        id: "BX020",
        title: "durable-file discipline: raw file writes only in blessed store modules; \
                `fs::rename` publishes fsync first",
        rationale: "The crash matrix proves durability only for bytes that flow through \
                    `FileStore`/`FileLogStore` — a raw `write_all`/`write_at` elsewhere is \
                    durable state the kill sweep never tears and the fsync poisoning rules \
                    never guard. And a rename that publishes an unsynced file is the \
                    classic atomic-replace bug: after power loss the new name can point at \
                    torn or empty bytes.",
        fix: "Route data through `FileStore`/`LogStore` (policy-allowed via \
              [rules.BX020] allow_paths for the store modules themselves). For a \
              durable replace, call `sync_all`/`sync_data` on the replacement (and \
              sync the directory) before `fs::rename`, as `FileLogStore::rotate` does.",
    },
];

/// Look up a rule's documentation by ID.
pub fn rule_doc(id: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.id.eq_ignore_ascii_case(id))
}

/// Run the token-stream rules (BX001–BX009, BX020) against one file.
pub fn run_all(
    file: &SourceFile,
    must_use_fns: &std::collections::BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    stream::run_all(file, must_use_fns, out);
}

/// Run the call-graph/dataflow rules (BX010–BX014) and the lock-discipline
/// rules (BX015–BX019) against a whole analysis.
pub fn run_graph(analysis: &crate::Analysis, out: &mut Vec<Diagnostic>) {
    graph::run_all(analysis, out);
    locks::run_all(analysis, out);
}

// ------------------------------------------------------------------ helpers
// Shared between both rule families (and the dataflow consumption
// classifier, which takes `chain_start` as an injected fn).

pub(crate) fn push(
    file: &SourceFile,
    si: usize,
    rule: &'static str,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    let (line, col) = file.stok(si).map(|t| (t.line, t.col)).unwrap_or((0, 0));
    out.push(Diagnostic {
        rule,
        path: file.path.clone(),
        line,
        col,
        message,
        snippet: file.line_snippet(si).to_string(),
    });
}

pub(crate) fn is_ident(file: &SourceFile, si: usize, text: &str) -> bool {
    file.stok(si).is_some_and(|t| t.kind == TokenKind::Ident) && file.stext(si) == text
}

/// Is sig-index `si` immediately preceded by a `::` (two `:` puncts)?
pub(crate) fn preceded_by_path_sep(file: &SourceFile, si: usize) -> bool {
    si >= 2 && file.stext(si - 1) == ":" && file.stext(si - 2) == ":"
}

/// Walk left from the call ident at `si` over `.`/`::` links, call groups,
/// and index groups to the first token of the whole receiver chain. `None`
/// on malformed input.
pub(crate) fn chain_start(file: &SourceFile, si: usize) -> Option<usize> {
    let mut start = si; // first token of the current chain element
    loop {
        if start == 0 {
            return Some(0);
        }
        let prev = start - 1;
        if file.stext(prev) == "." || preceded_by_path_sep(file, start) {
            let link = if file.stext(prev) == "." {
                prev
            } else {
                start - 2
            };
            if link == 0 {
                return None;
            }
            let mut elem = link - 1;
            // Jump over a call/index group: `foo(…).name`, `xs[i].name`.
            if matches!(file.stext(elem), ")" | "]") {
                match file.open_of[elem] {
                    Some(open) => elem = open,
                    None => return None,
                }
                // `foo(…)` — include the callee ident.
                if elem > 0
                    && file
                        .stok(elem - 1)
                        .is_some_and(|t| t.kind == TokenKind::Ident)
                {
                    elem -= 1;
                }
            }
            start = elem;
        } else {
            return Some(start);
        }
    }
}
