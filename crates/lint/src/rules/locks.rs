//! The lock-discipline rule family (BX015–BX019).
//!
//! BX015–BX017 run over the workspace [`LockAnalysis`][crate::locks] —
//! per-function lock-set summaries solved to fixpoint over the call graph:
//!
//! * **BX015** — lock-order cycles: an edge `A → B` is recorded whenever
//!   some path acquires `B` while a guard of `A` is live; any cycle in that
//!   graph is a potential ABBA deadlock. The full graph (with witnesses) is
//!   exported to `target/lock-order.json`.
//! * **BX016** — guard held across disk I/O: a live guard window must not
//!   contain a call that (transitively, over resolved edges) reaches the
//!   raw store surface. Holding a hot lock across a disk round-trip
//!   serializes every other thread behind the I/O latency.
//! * **BX017** — same-lock re-acquisition on a path: `std` locks are not
//!   reentrant, so overlapping acquisitions of one lock self-deadlock the
//!   moment the code runs under a real second thread.
//!
//! BX018–BX019 are site rules that keep the storage core honest now that it
//! is `Send + Sync`:
//!
//! * **BX018** — sync-readiness ratchet: every interior-mutability /
//!   shared-ownership site in a library crate must be covered by a
//!   `[[ratchet]]` entry in lint.toml. New sites are hard errors — the
//!   burned-down baseline cannot regrow.
//! * **BX019** — bare relaxed atomic ordering: the workspace standardizes
//!   on `SeqCst`; a weaker ordering needs a justified `[[allow]]`.

use std::collections::BTreeSet;

use super::{graph::RAW_STORE_TYPES, is_ident, preceded_by_path_sep, push};
use crate::callgraph::{EdgeKind, FnId};
use crate::locks::LockAnalysis;
use crate::report::Diagnostic;
use crate::Analysis;

/// Run every lock-discipline rule.
pub fn run_all(a: &Analysis, out: &mut Vec<Diagnostic>) {
    let la = LockAnalysis::build(a);
    bx015(a, &la, out);
    bx016(a, &la, out);
    bx017(a, &la, out);
    bx018(a, out);
    bx019(a, out);
}

/// BX015: cycles in the lock-order graph.
fn bx015(_a: &Analysis, la: &LockAnalysis, out: &mut Vec<Diagnostic>) {
    for cycle in la.cycles() {
        let mut rendered = cycle.join(" -> ");
        if let Some(first) = cycle.first() {
            rendered.push_str(" -> ");
            rendered.push_str(first);
        }
        // Anchor the diagnostic at a witness for the cycle's first edge so
        // the finding points at real code, not thin air.
        let anchor = cycle
            .first()
            .zip(cycle.get(1).or(cycle.first()))
            .and_then(|(from, to)| la.witnesses.iter().find(|w| &w.from == from && &w.to == to));
        let (path, line) = match anchor {
            Some(w) => (w.path.clone(), w.line),
            None => (String::from("<workspace>"), 0),
        };
        out.push(Diagnostic {
            rule: "BX015",
            path,
            line,
            col: 1,
            message: format!(
                "lock-order cycle: {rendered} — two threads taking these locks in \
                 opposing orders deadlock; pick one global order (witnesses in \
                 target/lock-order.json)"
            ),
            snippet: rendered.clone(),
        });
    }
}

/// BX016: a live guard window contains a call reaching the raw disk surface.
fn bx016(a: &Analysis, la: &LockAnalysis, out: &mut Vec<Diagnostic>) {
    let g = &a.graph;
    let sinks: BTreeSet<FnId> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.self_ty
                .as_deref()
                .is_some_and(|t| RAW_STORE_TYPES.contains(&t))
        })
        .map(|(id, _)| id)
        .collect();
    if sinks.is_empty() {
        return;
    }
    // Everything that can reach a sink over resolved edges: calling any of
    // these inside a guard window holds the lock across disk I/O.
    let io_fns = g.reaching(&sinks, |e| e.kind != EdgeKind::Unknown, |_| true);
    for (id, f) in g.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let file = &a.files[f.file_idx];
        let events = &la.fn_locks[id].acquires;
        let event_sis: BTreeSet<usize> = events.iter().map(|e| e.si).collect();
        let mut flagged: BTreeSet<usize> = BTreeSet::new();
        for e in events {
            for c in &g.edges[id] {
                if c.kind == EdgeKind::Unknown
                    || c.call_si <= e.si
                    || c.call_si >= e.live_end
                    || event_sis.contains(&c.call_si)
                    || !io_fns.contains(&c.to)
                    || !flagged.insert(c.call_si)
                {
                    continue;
                }
                let callee = g.fns[c.to].qual();
                push(
                    file,
                    c.call_si,
                    "BX016",
                    format!(
                        "guard of `{}` (taken line {}) held across `{}`, which reaches \
                         the raw disk surface — drop the guard before I/O or every \
                         thread queues behind the disk",
                        e.lock, e.line, callee
                    ),
                    out,
                );
            }
        }
    }
}

/// BX017: same lock acquired again while the first guard is live.
fn bx017(a: &Analysis, la: &LockAnalysis, out: &mut Vec<Diagnostic>) {
    for r in &la.reacquires {
        let f = &a.graph.fns[r.fn_id];
        let file = &a.files[f.file_idx];
        let via = match &r.via {
            Some(v) => format!(" (inside `{v}`)"),
            None => String::new(),
        };
        push(
            file,
            r.si,
            "BX017",
            format!(
                "`{}` re-acquired{via} while the guard taken at line {} is still \
                 live — std locks are not reentrant; this self-deadlocks under a \
                 real mutex",
                r.lock, r.first_line
            ),
            out,
        );
    }
}

/// BX018: interior-mutability / shared-ownership sites in library crates.
/// Fires on the same inventory as BX011 but is suppressible *only* through
/// `[[ratchet]]` entries, so new sites cannot ride the baseline.
fn bx018(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for p in &a.parsed {
        for site in &p.sites {
            if site.in_test || !site.path.starts_with("crates/") {
                continue;
            }
            out.push(Diagnostic {
                rule: "BX018",
                path: site.path.clone(),
                line: site.line,
                col: 1,
                message: format!(
                    "{} site `{}.{}` regresses the Send/Sync core — the \
                     sync-readiness baseline is burned down; cover a deliberate \
                     survivor with a [[ratchet]] entry, otherwise use \
                     Mutex/RwLock/atomics",
                    site.kind.label(),
                    site.container,
                    site.name
                ),
                snippet: site.type_text.clone(),
            });
        }
    }
}

/// BX019: bare relaxed atomic ordering outside tests.
fn bx019(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for file in &a.files {
        if !file.path.starts_with("crates/") {
            continue;
        }
        for si in 0..file.slen() {
            if file.in_test[si]
                || !is_ident(file, si, "Relaxed")
                || !preceded_by_path_sep(file, si)
                || si < 3
                || file.stext(si - 3) != "Ordering"
            {
                continue;
            }
            push(
                file,
                si,
                "BX019",
                "relaxed atomic ordering — the workspace standardizes on SeqCst; \
                 a weaker ordering needs a measured win and a justified [[allow]]"
                    .to_string(),
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn analyze(srcs: &[(&str, &str)]) -> Analysis {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::parse(*p, *s))
            .collect();
        Analysis::build(files)
    }

    fn rules_of(out: &[Diagnostic], rule: &str) -> Vec<String> {
        out.iter()
            .filter(|d| d.rule == rule)
            .map(|d| d.message.clone())
            .collect()
    }

    #[test]
    fn bx015_fires_on_two_lock_cycle() {
        let a = analyze(&[(
            "crates/x/src/lib.rs",
            "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S { pub fn ab(&self) { let g = self.a.lock(); self.b.lock(); }\n\
             pub fn ba(&self) { let g = self.b.lock(); self.a.lock(); } }",
        )]);
        let mut out = Vec::new();
        run_all(&a, &mut out);
        let b = rules_of(&out, "BX015");
        assert_eq!(b.len(), 1, "{b:?}");
        assert!(
            b[0].contains("boxes-x::S.a -> boxes-x::S.b -> boxes-x::S.a"),
            "{b:?}"
        );
    }

    #[test]
    fn bx015_silent_on_consistent_order() {
        let a = analyze(&[(
            "crates/x/src/lib.rs",
            "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S { pub fn ab(&self) { let g = self.a.lock(); self.b.lock(); }\n\
             pub fn ab2(&self) { let g = self.a.lock(); self.b.lock(); } }",
        )]);
        let mut out = Vec::new();
        run_all(&a, &mut out);
        assert!(rules_of(&out, "BX015").is_empty());
    }

    #[test]
    fn bx016_fires_on_guard_across_io_direct_and_transitive() {
        let a = analyze(&[(
            "crates/x/src/lib.rs",
            "pub struct FileStore;\n\
             impl FileStore { pub fn read_block(&self) {} }\n\
             pub struct Cache { map: Mutex<u8>, store: FileStore }\n\
             impl Cache { fn journaled(&self) { self.store.read_block(); }\n\
             pub fn hot(&self) { let g = self.map.lock(); self.journaled(); } }",
        )]);
        let mut out = Vec::new();
        run_all(&a, &mut out);
        let b = rules_of(&out, "BX016");
        assert_eq!(b.len(), 1, "{b:?}");
        assert!(b[0].contains("journaled"), "{b:?}");
    }

    #[test]
    fn bx016_silent_after_drop() {
        let a = analyze(&[(
            "crates/x/src/lib.rs",
            "pub struct FileStore;\n\
             impl FileStore { pub fn read_block(&self) {} }\n\
             pub struct Cache { map: Mutex<u8>, store: FileStore }\n\
             impl Cache { pub fn cool(&self) { let g = self.map.lock(); drop(g); \
             self.store.read_block(); } }",
        )]);
        let mut out = Vec::new();
        run_all(&a, &mut out);
        assert!(rules_of(&out, "BX016").is_empty(), "{out:?}");
    }

    #[test]
    fn bx017_fires_on_overlap() {
        let a = analyze(&[(
            "crates/x/src/lib.rs",
            "pub struct S { n: Mutex<u8> }\n\
             impl S { pub fn twice(&self) { let g = self.n.lock(); self.n.lock(); } }",
        )]);
        let mut out = Vec::new();
        run_all(&a, &mut out);
        let b = rules_of(&out, "BX017");
        assert_eq!(b.len(), 1, "{b:?}");
        assert!(b[0].contains("not reentrant"), "{b:?}");
    }

    #[test]
    fn bx018_fires_on_library_site_only() {
        let a = analyze(&[
            ("crates/x/src/lib.rs", "pub struct S { c: RefCell<u8> }"),
            ("xtask/src/main.rs", "pub struct T { c: RefCell<u8> }"),
        ]);
        let mut out = Vec::new();
        run_all(&a, &mut out);
        let b = rules_of(&out, "BX018");
        assert_eq!(b.len(), 1, "{b:?}");
        assert!(b[0].contains("[[ratchet]]"), "{b:?}");
    }

    #[test]
    fn bx019_fires_outside_tests_only() {
        let a = analyze(&[(
            "crates/x/src/lib.rs",
            "pub fn f(n: &AtomicU64) { n.load(Ordering::Relaxed); }\n\
             #[cfg(test)] mod tests { pub fn t(n: &AtomicU64) { \
             n.load(Ordering::Relaxed); } }",
        )]);
        let mut out = Vec::new();
        run_all(&a, &mut out);
        let b = rules_of(&out, "BX019");
        assert_eq!(b.len(), 1, "{b:?}");
        assert!(b[0].contains("SeqCst"), "{b:?}");
    }
}
