//! The token-stream rule family (BX001–BX009, BX020).
//!
//! Every rule here is a pure function over one [`SourceFile`] — no types,
//! no cross-file knowledge (the call-graph family lives in
//! [`super::graph`]). Each one is written to be precise on this
//! workspace's idioms and to err on the side of firing (a finding can be
//! baselined with a justification; a silent miss cannot).
//!
//! | ID    | Invariant                                                        |
//! |-------|------------------------------------------------------------------|
//! | BX001 | pager I/O (`read/write/alloc/free`) only in designated modules   |
//! | BX002 | `std::fs` only behind the pager's file backend (and tooling)     |
//! | BX003 | no `unwrap/expect/panic!/unreachable!` in non-test library code  |
//! | BX004 | no `as` casts to integer types — use `try_from`/`From` helpers   |
//! | BX005 | `AuditReport`/`IoStats` producers are `#[must_use]`, never dropped |
//! | BX006 | every `pub` item carries a doc comment                           |
//! | BX007 | no wall-clock time (`std::time`) in library code — determinism   |
//! | BX008 | pager/WAL I/O `Result`s are handled, never `let _ =` / `.ok();`  |
//! | BX009 | trace spans are bound to named locals, never dropped or leaked   |
//! | BX020 | raw file writes only in blessed store modules; renames fsync first |

use std::collections::BTreeSet;

use super::{chain_start, is_ident, preceded_by_path_sep, push};
use crate::lexer::TokenKind;
use crate::model::{Scope, SourceFile};
use crate::report::Diagnostic;

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

const PAGER_METHODS: [&str; 4] = ["read", "write", "alloc", "free"];

/// Type names whose producers must be `#[must_use]` (BX005).
const REPORT_TYPES: [&str; 2] = ["AuditReport", "IoStats"];

/// Run every rule against one file.
pub fn run_all(file: &SourceFile, must_use_fns: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    bx001_pager_discipline(file, out);
    bx002_filesystem_access(file, out);
    bx003_panic_freedom(file, out);
    bx004_integer_casts(file, out);
    bx005_must_use(file, must_use_fns, out);
    bx006_public_docs(file, out);
    bx007_wall_clock(file, out);
    bx008_io_result_discipline(file, out);
    bx009_span_discipline(file, out);
    bx020_durable_file_discipline(file, out);
}

/// Collect the names of functions in `file` that return one of the
/// [`REPORT_TYPES`] — the name set BX005's discard check consumes.
pub fn collect_report_fns(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for si in 0..file.slen() {
        if file.stext(si) != "fn" || file.item_ctx[si].is_none() {
            continue;
        }
        if let Some((name, _, returns_report)) = fn_signature(file, si) {
            if returns_report {
                names.insert(name);
            }
        }
    }
    names
}

/// BX001: pager entry points (`read`/`write`/`alloc`/`free`) may only be
/// invoked from the pager crate and each scheme's designated I/O modules
/// (enforced via `allow_paths` policy in `lint.toml`). Every other call is
/// unaccounted I/O that voids the paper's block-transfer measurements.
fn bx001_pager_discipline(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for si in 0..file.slen() {
        if file.in_test[si] {
            continue;
        }
        let name = file.stext(si);
        if !PAGER_METHODS.contains(&name)
            || file.stok(si).map(|t| t.kind) != Some(TokenKind::Ident)
            || file.stext(si + 1) != "("
        {
            continue;
        }
        let via_method = si >= 2 && file.stext(si - 1) == "." && {
            let recv = si - 2;
            let recv_is_pager = |j: usize| {
                file.stok(j).is_some_and(|t| t.kind == TokenKind::Ident)
                    && file.stext(j).to_ascii_lowercase().ends_with("pager")
            };
            if recv_is_pager(recv) {
                true
            } else if file.stext(recv) == ")" {
                // `.pager().read(…)` — look at the ident before the call.
                file.open_of[recv]
                    .and_then(|open| open.checked_sub(1))
                    .is_some_and(recv_is_pager)
            } else {
                false
            }
        };
        let via_path = preceded_by_path_sep(file, si) && si >= 3 && file.stext(si - 3) == "Pager";
        if via_method || via_path {
            push(
                file,
                si,
                "BX001",
                format!(
                    "direct pager `{name}()` call outside a designated I/O module — \
                     block transfers must stay accounted"
                ),
                out,
            );
        }
    }
}

/// BX002: the only module allowed to touch the filesystem is the pager's
/// file backend (plus tooling crates, via `allow_paths`). Everything else
/// must go through `Pager` so I/O stays measurable.
fn bx002_filesystem_access(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for si in 0..file.slen() {
        if file.in_test[si] {
            continue;
        }
        if is_ident(file, si, "std")
            && file.stext(si + 1) == ":"
            && file.stext(si + 2) == ":"
            && is_ident(file, si + 3, "fs")
        {
            push(
                file,
                si,
                "BX002",
                "`std::fs` outside the pager file backend — disk access must flow \
                 through `Pager`"
                    .to_string(),
                out,
            );
        }
    }
}

/// BX003: library code must be panic-free. `unwrap`/`expect` calls and
/// `panic!`/`unreachable!` invocations outside `#[cfg(test)]` regions are
/// findings; documented contract panics get baseline entries instead.
fn bx003_panic_freedom(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for si in 0..file.slen() {
        if file.in_test[si] {
            continue;
        }
        let text = file.stext(si);
        let is_method = matches!(text, "unwrap" | "expect")
            && si >= 1
            && file.stext(si - 1) == "."
            && file.stext(si + 1) == "("
            && !call_returns_try(file, si + 1);
        let is_macro = matches!(text, "panic" | "unreachable") && file.stext(si + 1) == "!";
        if (is_method || is_macro) && file.stok(si).map(|t| t.kind) == Some(TokenKind::Ident) {
            let form = if is_macro {
                format!("`{text}!`")
            } else {
                format!("`.{text}()`")
            };
            push(
                file,
                si,
                "BX003",
                format!(
                    "{form} in non-test library code — return a typed error or baseline \
                         with a documented invariant"
                ),
                out,
            );
        }
    }
}

/// A call whose close paren is immediately followed by `?` returns
/// `Result`/`Option` and is propagated, so it cannot be the panicking
/// `Option::expect`/`Result::unwrap` — it is a caller-defined method that
/// happens to share the name (e.g. a parser's `self.expect("<")?`).
fn call_returns_try(file: &SourceFile, open: usize) -> bool {
    file.close_of
        .get(open)
        .copied()
        .flatten()
        .is_some_and(|close| file.stext(close + 1) == "?")
}

/// BX004: `as` casts to integer types silently truncate or sign-flip, which
/// voids the paper's label-bit accounting (Thm 4.4 / Thm 5.1). Use
/// `From`/`TryFrom` or the checked helpers in `pager::codec`; provably-safe
/// casts get per-file baseline entries.
fn bx004_integer_casts(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for si in 0..file.slen() {
        if file.in_test[si] {
            continue;
        }
        if is_ident(file, si, "as") && INT_TYPES.contains(&file.stext(si + 1)) {
            push(
                file,
                si,
                "BX004",
                format!(
                    "`as {}` cast — use `From`/`TryFrom` (or a checked codec helper) so \
                     truncation cannot silently corrupt labels or offsets",
                    file.stext(si + 1)
                ),
                out,
            );
        }
    }
}

/// Decode the signature starting at the `fn` keyword at sig-index `si`.
/// Returns `(name, name_si, returns_report_type)`.
fn fn_signature(file: &SourceFile, si: usize) -> Option<(String, usize, bool)> {
    let name_si = si + 1;
    let name_tok = file.stok(name_si)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = file.stext(name_si).to_string();
    // Skip generics, find the parameter list.
    let mut j = name_si + 1;
    if file.stext(j) == "<" {
        let mut depth = 1i32;
        j += 1;
        while j < file.slen() && depth > 0 {
            match file.stext(j) {
                "<" => depth += 1,
                ">" if file.stext(j.wrapping_sub(1)) != "-" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    if file.stext(j) != "(" {
        return None;
    }
    let close = file.close_of[j]?;
    // Return type: scan from after `)` to the body/terminator.
    let mut returns_report = false;
    if file.stext(close + 1) == "-" && file.stext(close + 2) == ">" {
        let mut k = close + 3;
        while k < file.slen() {
            match file.stext(k) {
                "{" | ";" | "where" => break,
                t if REPORT_TYPES.contains(&t) => {
                    returns_report = true;
                    break;
                }
                _ => k += 1,
            }
        }
    }
    Some((name, name_si, returns_report))
}

/// BX005: any function returning `AuditReport`/`IoStats` must be
/// `#[must_use]` (trait impls inherit the trait's attribute and are
/// skipped), and call sites must consume the value — a dropped report is an
/// unchecked invariant.
fn bx005_must_use(file: &SourceFile, must_use_fns: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    // Declarations.
    for si in 0..file.slen() {
        if file.in_test[si] || file.stext(si) != "fn" {
            continue;
        }
        let Some(scope) = file.item_ctx[si] else {
            continue;
        };
        if scope == Scope::TraitImpl {
            continue;
        }
        let Some((name, _, returns_report)) = fn_signature(file, si) else {
            continue;
        };
        if !returns_report {
            continue;
        }
        let trivia = file.leading_trivia(si);
        if !trivia.attr_idents.iter().any(|a| a == "must_use") {
            push(
                file,
                si,
                "BX005",
                format!("`{name}` returns an audit/I/O report but is not `#[must_use]`"),
                out,
            );
        }
    }
    // Call-site discards: `<chain>.name(…);` as a bare statement.
    for si in 0..file.slen() {
        if file.in_test[si] {
            continue;
        }
        let name = file.stext(si);
        if !must_use_fns.contains(name)
            || file.stok(si).map(|t| t.kind) != Some(TokenKind::Ident)
            || file.stext(si + 1) != "("
        {
            continue;
        }
        let Some(close) = file.close_of[si + 1] else {
            continue;
        };
        if file.stext(close + 1) != ";" {
            continue;
        }
        if is_discarded_statement(file, si) {
            push(
                file,
                si,
                "BX005",
                format!(
                    "result of `{name}()` is discarded — audit/I/O reports must be \
                         consumed"
                ),
                out,
            );
        }
    }
}

/// Walk left from the call ident at `si` to the start of its receiver chain
/// and report whether the whole expression is a bare statement.
fn is_discarded_statement(file: &SourceFile, si: usize) -> bool {
    match chain_start(file, si) {
        Some(0) => true,
        Some(start) => matches!(file.stext(start - 1), ";" | "{" | "}"),
        None => false, // malformed; be conservative
    }
}

/// BX006: every `pub` item in library code carries a doc comment
/// (token-aware replacement for the old regex sweep; `pub(crate)` and
/// re-exports are out of scope, as are trait-impl members).
fn bx006_public_docs(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for si in 0..file.slen() {
        if file.in_test[si] || file.stext(si) != "pub" {
            continue;
        }
        if !matches!(
            file.item_ctx[si],
            Some(Scope::Module) | Some(Scope::InherentImpl) | Some(Scope::DataBody)
        ) {
            continue;
        }
        // Restricted visibility (`pub(crate)`, `pub(in …)`) is not public API.
        if file.stext(si + 1) == "(" {
            continue;
        }
        // Re-exports inherit the target's docs.
        if file.stext(si + 1) == "use" {
            continue;
        }
        if file.leading_trivia(si).has_doc {
            continue;
        }
        // Name the item for the message: first ident after the item keyword.
        let mut j = si + 1;
        let mut keyword = "";
        let mut name = String::new();
        while j < file.slen() && j < si + 8 {
            let t = file.stext(j);
            if matches!(
                t,
                "fn" | "struct"
                    | "enum"
                    | "union"
                    | "trait"
                    | "mod"
                    | "const"
                    | "static"
                    | "type"
                    | "macro"
            ) {
                keyword = file.stext(j);
                name = file.stext(j + 1).to_string();
                break;
            }
            j += 1;
        }
        let what = if keyword.is_empty() {
            // A `pub` field inside a struct body.
            format!("field `{}`", file.stext(si + 1))
        } else {
            format!("{keyword} `{name}`")
        };
        push(
            file,
            si,
            "BX006",
            format!("public {what} has no doc comment"),
            out,
        );
    }
}

/// Clock types whose constructors introduce nondeterminism (BX007).
const CLOCK_TYPES: [&str; 2] = ["SystemTime", "Instant"];

/// BX007: scheme and library crates must be deterministic — crash-recovery
/// sweeps, the semantic lint, and every experiment replay the same seeded
/// workload and demand identical results, so wall-clock reads
/// (`std::time`, `SystemTime::…`, `Instant::…`) are banned outside the
/// timing harnesses (`crates/bench`, `xtask`, via `allow_paths`).
fn bx007_wall_clock(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for si in 0..file.slen() {
        if file.in_test[si] {
            continue;
        }
        if is_ident(file, si, "std")
            && file.stext(si + 1) == ":"
            && file.stext(si + 2) == ":"
            && is_ident(file, si + 3, "time")
        {
            push(
                file,
                si,
                "BX007",
                "`std::time` in library code — clocks are nondeterministic; take \
                 timings in the bench/xtask harnesses only"
                    .to_string(),
                out,
            );
            continue;
        }
        // Bare `SystemTime::…` / `Instant::…` after an earlier import.
        let name = file.stext(si);
        if CLOCK_TYPES.contains(&name)
            && file.stok(si).map(|t| t.kind) == Some(TokenKind::Ident)
            && !preceded_by_path_sep(file, si)
            && file.stext(si + 1) == ":"
            && file.stext(si + 2) == ":"
        {
            push(
                file,
                si,
                "BX007",
                format!(
                    "`{name}::…` in library code — wall-clock reads break seeded \
                     reproducibility; pass counters or ticks in instead"
                ),
                out,
            );
        }
    }
}

/// Fallible pager/WAL I/O entry points whose `Result` carries the fault
/// outcome (BX008). The list is name-based, like every rule here: these
/// names are unique to the storage stack's typed-error surface. BX012
/// (the call-graph generalization) skips these names to avoid double
/// findings on the same line.
pub(crate) const IO_RESULT_FNS: [&str; 9] = [
    "try_read",
    "try_write",
    "try_alloc",
    "try_free",
    "try_resume",
    "open_file",
    "write_torn",
    "recover",
    "catch",
];

/// BX008: the `Result` of a pager/WAL I/O call may not be silenced in
/// library code. `let _ = pager.try_write(…)`, a bare `pager.try_resume();`
/// statement, and a trailing `.ok();` all throw away the only signal that
/// the disk is failing or the store degraded — exactly the errors the
/// retry/repair machinery exists to surface. Branching on the value,
/// propagating with `?`, or chaining (`.ok().and_then(…)`) are uses.
fn bx008_io_result_discipline(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for si in 0..file.slen() {
        if file.in_test[si] {
            continue;
        }
        let name = file.stext(si);
        if !IO_RESULT_FNS.contains(&name)
            || file.stok(si).map(|t| t.kind) != Some(TokenKind::Ident)
            || file.stext(si + 1) != "("
        {
            continue;
        }
        let Some(close) = file.close_of[si + 1] else {
            continue;
        };
        // Follow one trailing `.ok()`: it converts the error to `None`
        // without consuming it, so `….ok();` is still a discard.
        let (end, how) = if file.stext(close + 1) == "."
            && file.stext(close + 2) == "ok"
            && file.stext(close + 3) == "("
        {
            match file.close_of[close + 3] {
                Some(ok_close) => (ok_close, "`.ok()`-silenced"),
                None => continue,
            }
        } else {
            (close, "discarded")
        };
        if file.stext(end + 1) != ";" {
            continue; // the value flows onward: `?`, match, chain, binding
        }
        let Some(start) = chain_start(file, si) else {
            continue;
        };
        let discarded = if start == 0 {
            true
        } else {
            let prev = start - 1;
            matches!(file.stext(prev), ";" | "{" | "}")
                || (file.stext(prev) == "="
                    && start >= 3
                    && file.stext(start - 2) == "_"
                    && file.stext(start - 3) == "let")
        };
        if discarded {
            push(
                file,
                si,
                "BX008",
                format!(
                    "result of I/O call `{name}()` is {how} — handle the error or \
                     propagate it; a swallowed disk fault degrades silently"
                ),
                out,
            );
        }
    }
}

/// BX009: a `boxes_trace::OpSpan` is an RAII guard — its I/O attribution
/// window is its lexical lifetime. A constructor result that is not bound
/// to a *named* local is a bug either way it can go wrong: a bare
/// `OpSpan::op(…);` statement or a `let _ = OpSpan::op(…)` binding drops
/// the span immediately (the operation's I/O lands in the parent span or
/// unattributed), while `mem::forget` leaks the frame and skews every
/// enclosing span until thread exit. `let _span = …` style bindings (a
/// named local, even underscore-prefixed) are the idiom and pass.
fn bx009_span_discipline(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for si in 0..file.slen() {
        if file.in_test[si] {
            continue;
        }
        let name = file.stext(si);
        if file.stok(si).map(|t| t.kind) != Some(TokenKind::Ident) || file.stext(si + 1) != "(" {
            continue;
        }
        // `mem::forget(…)` in library code: leaks any RAII guard; with a
        // span argument it silently corrupts the attribution stack.
        if name == "forget" && preceded_by_path_sep(file, si) && file.stext(si - 3) == "mem" {
            push(
                file,
                si,
                "BX009",
                "`mem::forget` in library code — leaking an RAII guard (e.g. a trace \
                 span) corrupts the attribution stack for the rest of the thread"
                    .to_string(),
                out,
            );
            continue;
        }
        // `OpSpan::op(…)` / `OpSpan::phase(…)` not bound to a named local.
        if !matches!(name, "op" | "phase")
            || !preceded_by_path_sep(file, si)
            || file.stext(si - 3) != "OpSpan"
        {
            continue;
        }
        let Some(close) = file.close_of[si + 1] else {
            continue;
        };
        if file.stext(close + 1) != ";" {
            continue; // the span flows onward: returned, stored, passed
        }
        let opspan = si - 3;
        let discarded = if opspan == 0 {
            true // file starts with the bare constructor statement
        } else {
            let prev = file.stext(opspan - 1);
            // Bare statement …; OpSpan::op(…);
            matches!(prev, ";" | "{" | "}")
                // `let _ = OpSpan::op(…);` — the wildcard drops immediately.
                || (prev == "="
                    && opspan >= 3
                    && file.stext(opspan - 2) == "_"
                    && file.stext(opspan - 3) == "let")
        };
        if discarded {
            push(
                file,
                si,
                "BX009",
                format!(
                    "`OpSpan::{name}(…)` is not bound to a named local — the span \
                     closes immediately and attributes nothing; use `let _span = …` \
                     so it covers the operation"
                ),
                out,
            );
        }
    }
}

/// Raw `File` write methods that bypass the accounted store layer (BX020).
/// `std::fs::write` itself is already caught by BX002's `std::fs` ban.
const RAW_WRITE_METHODS: [&str; 3] = ["write_all", "write_at", "write_all_at"];

/// Fsync spellings that make a just-written replacement file durable:
/// `File::sync_all`/`sync_data` and the `LogStore::sync` seam.
const SYNC_METHODS: [&str; 3] = ["sync_all", "sync_data", "sync"];

/// BX020: durable-file discipline, two halves of the same invariant.
///
/// *Raw writes*: `.write_all(…)` / `.write_at(…)` / `.write_all_at(…)` on a
/// file handle may only appear in the blessed store modules
/// (`FileStore`, `FileLogStore`, the fault-injection VFS — via
/// `allow_paths`). Anywhere else they are durable bytes the crash matrix
/// never tears and the fsync poisoning rules never see.
///
/// *Durable renames*: a `fs::rename` publish must be preceded by an fsync
/// (`sync_all`/`sync_data`/`sync`) somewhere earlier in the same function.
/// Renaming a file whose bytes were never synced can publish a torn or
/// empty file after power loss — the classic atomic-replace bug.
fn bx020_durable_file_discipline(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for si in 0..file.slen() {
        if file.in_test[si] {
            continue;
        }
        let name = file.stext(si);
        if file.stok(si).map(|t| t.kind) != Some(TokenKind::Ident) || file.stext(si + 1) != "(" {
            continue;
        }
        if RAW_WRITE_METHODS.contains(&name) && si >= 1 && file.stext(si - 1) == "." {
            push(
                file,
                si,
                "BX020",
                format!(
                    "raw file write `.{name}(…)` outside the blessed store modules — \
                     durable bytes must flow through `FileStore`/`LogStore` so the \
                     crash matrix and fsync semantics cover them"
                ),
                out,
            );
            continue;
        }
        if name == "rename"
            && preceded_by_path_sep(file, si)
            && si >= 3
            && is_ident(file, si - 3, "fs")
            && !rename_preceded_by_sync(file, si)
        {
            push(
                file,
                si,
                "BX020",
                "`fs::rename` with no fsync earlier in the same function — renaming \
                 an unsynced file can publish torn bytes after power loss; sync the \
                 replacement (then the directory) before the rename"
                    .to_string(),
                out,
            );
        }
    }
}

/// Scan from the enclosing `fn` keyword to the `fs::rename` call at `si`
/// for a sync call (one of [`SYNC_METHODS`] followed by `(`). No enclosing
/// `fn` (e.g. a rename in a const initializer) counts as unsynced.
fn rename_preceded_by_sync(file: &SourceFile, si: usize) -> bool {
    let Some(fn_si) = (0..si)
        .rev()
        .find(|&j| file.stext(j) == "fn" && file.item_ctx[j].is_some())
    else {
        return false;
    };
    (fn_si..si).any(|j| {
        SYNC_METHODS.contains(&file.stext(j))
            && file.stok(j).is_some_and(|t| t.kind == TokenKind::Ident)
            && file.stext(j + 1) == "("
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        let fns = collect_report_fns(&file);
        let mut out = Vec::new();
        run_all(&file, &fns, &mut out);
        out
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn bx001_fires_on_pager_receiver_only() {
        let diags = lint("fn f(p: &mut Pager) { p.pager.read(id); buf.read(x); }");
        assert_eq!(rules_of(&diags), vec!["BX001"]);
    }

    #[test]
    fn bx003_skips_unwrap_or_else() {
        let diags = lint("fn f() { x.unwrap_or_else(|| 0); y.unwrap(); }");
        assert_eq!(rules_of(&diags), vec!["BX003"]);
    }

    #[test]
    fn bx003_skips_propagated_expect_method() {
        // `self.expect("<")?` returns Result — a caller-defined method that
        // shares the name, not the panicking Option/Result combinator.
        let diags = lint("fn f() -> Result<(), E> { self.expect(\"<\")?; Ok(()) }");
        assert!(diags.is_empty(), "{diags:?}");
        let diags = lint("fn g() { self.expect(\"<\"); }");
        assert_eq!(rules_of(&diags), vec!["BX003"]);
    }

    #[test]
    fn bx004_ignores_non_integer_as() {
        let diags = lint("fn f(x: &dyn Any) { let y = x as &dyn Other; let z = n as u32; }");
        assert_eq!(rules_of(&diags), vec!["BX004"]);
    }

    #[test]
    fn bx005_discard_vs_use() {
        let src = "fn stats() -> IoStats { s }\n\
                   fn g() { h.stats(); let keep = h.stats(); keep.reads; }";
        let diags = lint(src);
        // One decl finding (stats not must_use) + one discard finding.
        let bx005: Vec<_> = diags.iter().filter(|d| d.rule == "BX005").collect();
        assert_eq!(bx005.len(), 2);
        assert!(bx005.iter().any(|d| d.message.contains("discarded")));
    }

    #[test]
    fn bx006_requires_docs_on_pub_only() {
        let src = "/// ok\npub fn documented() {}\npub fn bare() {}\nfn private() {}";
        let diags = lint(src);
        assert_eq!(rules_of(&diags), vec!["BX006"]);
        assert!(diags[0].message.contains("bare"));
    }

    #[test]
    fn bx007_fires_on_clock_reads_only() {
        let diags = lint(
            "use std::time::Instant;\n\
             fn f() { let t = Instant::now(); let d = Duration::from_secs(1); }",
        );
        // Once for the import path, once for the bare `Instant::now()`.
        assert_eq!(rules_of(&diags), vec!["BX007", "BX007"]);
        let clean = lint("fn g(ticks: u64) -> u64 { ticks + 1 }");
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn bx007_skips_non_clock_instant_mentions() {
        // A type *named* in a signature without `::` access is not a read.
        let diags = lint("fn h(deadline: Instant) {}");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn bx008_fires_on_silenced_io_results_only() {
        // Wildcard bind, bare statement, and `.ok();` are all discards.
        let diags = lint(
            "fn f(p: &SharedPager) {\n\
               let _ = p.try_write(id, &buf);\n\
               p.try_resume();\n\
               p.try_read(id).ok();\n\
             }",
        );
        assert_eq!(rules_of(&diags), vec!["BX008", "BX008", "BX008"]);
        assert!(diags[2].message.contains("`.ok()`-silenced"));
    }

    #[test]
    fn bx008_skips_consumed_io_results() {
        let diags = lint(
            "fn f(p: &SharedPager) -> Result<(), PagerError> {\n\
               p.try_write(id, &buf)?;\n\
               if p.try_resume().is_ok() { heal(); }\n\
               let kept = p.try_read(id).ok();\n\
               let folded = image_fold(log, bs).ok().and_then(|m| m.remove(&k));\n\
               match Pager::open_file(path, 64) { Ok(_) => {}, Err(_) => {} }\n\
               keep(kept, folded);\n\
               Ok(())\n\
             }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn bx008_fires_on_path_call_discards() {
        let diags = lint("fn f() { let _ = Pager::open_file(\"db\", 64); }");
        assert_eq!(rules_of(&diags), vec!["BX008"]);
    }

    #[test]
    fn bx009_fires_on_unbound_spans_and_forget() {
        let diags = lint(
            "fn f() {\n\
               OpSpan::op(\"W-BOX\", \"insert\");\n\
               let _ = OpSpan::phase(\"split\");\n\
               mem::forget(guard);\n\
             }",
        );
        assert_eq!(rules_of(&diags), vec!["BX009", "BX009", "BX009"]);
        assert!(diags[0].message.contains("closes immediately"));
        assert!(diags[2].message.contains("mem::forget"));
    }

    #[test]
    fn bx009_skips_bound_and_flowing_spans() {
        let diags = lint(
            "fn f() -> OpSpan {\n\
               let _span = OpSpan::op(\"W-BOX\", \"insert\");\n\
               let _p = OpSpan::phase(\"split\");\n\
               keep(OpSpan::phase(\"merge\"));\n\
               OpSpan::op(\"B-BOX\", \"lookup\")\n\
             }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn bx020_fires_on_raw_writes_and_unsynced_renames() {
        let diags = lint(
            "fn publish(f: &mut File) -> std::io::Result<()> {\n\
               f.write_all(&buf)?;\n\
               f.write_all_at(&buf, 0)?;\n\
               fs::rename(tmp, live)?;\n\
               Ok(())\n\
             }",
        );
        let bx020: Vec<_> = diags.iter().filter(|d| d.rule == "BX020").collect();
        assert_eq!(bx020.len(), 3, "{diags:?}");
        assert!(bx020[0].message.contains("write_all"));
        assert!(bx020[2].message.contains("fs::rename"));
    }

    #[test]
    fn bx020_skips_synced_renames_and_store_reads() {
        // The durable-replace idiom: sync the replacement, then rename.
        let diags = lint(
            "fn publish(tmp_file: &File) -> std::io::Result<()> {\n\
               tmp_file.sync_all()?;\n\
               fs::rename(tmp, live)?;\n\
               Ok(())\n\
             }\n\
             fn log_publish(store: &dyn LogStore) -> Result<(), StoreError> {\n\
               store.sync()?;\n\
               fs::rename(a, b)?;\n\
               Ok(())\n\
             }",
        );
        let bx020: Vec<_> = diags.iter().filter(|d| d.rule == "BX020").collect();
        assert!(bx020.is_empty(), "{bx020:?}");
        // A sync in a *previous* function does not bless this rename.
        let diags = lint(
            "fn a(f: &File) { f.sync_all(); }\n\
             fn b() { fs::rename(x, y); }",
        );
        assert!(
            diags.iter().any(|d| d.rule == "BX020"),
            "sync in another fn must not carry over: {diags:?}"
        );
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { x.unwrap(); let y = z as u8; }\n}";
        assert!(lint(src).is_empty());
    }
}
