//! The call-graph/dataflow rule family (BX010–BX014).
//!
//! These rules run once over the whole-workspace [`Analysis`] — call graph
//! plus per-function dataflow summaries — instead of file-by-file:
//!
//! * **BX010** — transitive pager-I/O discipline: no call path from
//!   non-pager code to the raw store surface (`FileStore`/`DiskImage`/
//!   `DiskBlock` methods) that bypasses the blessed `Pager` API. Uses
//!   reverse reachability over *all* edges, unknown edges included, so a
//!   helper chain cannot hide a leak (sound-by-default).
//! * **BX011** — concurrency-readiness inventory: every interior-mutability
//!   or shared-ownership site in library crates is a finding, carrying its
//!   containing type and the public APIs that reach it. The machine-readable
//!   burndown lives in `target/sync-readiness.json`
//!   ([`sync_readiness_json`]).
//! * **BX012** — transitive error swallowing: a `Result` carrying
//!   `PagerError`/`WalError` (directly or by `?`-propagation, per the
//!   summary fixpoint) must not be `let _ =`-dropped, bare-`;`-discarded,
//!   `.ok()`-silenced, or matched with an ignoring `Err(_)` arm. Only
//!   resolved edges fire — unknown edges would spam (caveat in DESIGN.md).
//! * **BX013** — latch-discipline scaffold: no `borrow_mut()` while another
//!   borrow of the same field is live in the same function.
//! * **BX014** — span balance: `OpSpan::op` must open before any `?`/
//!   `return` in its function body, or early-return paths run unattributed.

use std::collections::BTreeSet;

use super::{chain_start, push, stream};
use crate::callgraph::{EdgeKind, FnId};
use crate::dataflow;
use crate::parser::StateSite;
use crate::report::Diagnostic;
use crate::Analysis;

/// Raw disk-surface types whose methods are BX010 sinks.
pub(crate) const RAW_STORE_TYPES: [&str; 3] = ["FileStore", "DiskImage", "DiskBlock"];

/// The blessed I/O surface: reaching a sink *through* these types' methods
/// is the accounted path.
const BLESSED_TYPES: [&str; 1] = ["Pager"];

/// Individually blessed functions (by qualified name): entry points that
/// consume the raw disk surface *by design*. `boxes-wal::recover` rebuilds a
/// `DiskImage` during crash recovery, below the pager — no pager exists yet
/// on that path.
const BLESSED_FNS: [&str; 1] = ["boxes-wal::recover"];

/// Run every graph rule.
pub fn run_all(a: &Analysis, out: &mut Vec<Diagnostic>) {
    bx010(a, out);
    bx011(a, out);
    bx012(a, out);
    bx013(a, out);
    bx014(a, out);
}

fn is_blessed(a: &Analysis, n: FnId) -> bool {
    let f = &a.graph.fns[n];
    f.self_ty
        .as_deref()
        .is_some_and(|t| BLESSED_TYPES.contains(&t))
        || BLESSED_FNS.contains(&f.qual().as_str())
}

/// BX010: reverse-reachability from the raw store surface, blocked at the
/// blessed `Pager` methods. Anything left outside the pager crate reaches
/// disk blocks on an unaccounted path.
///
/// Unknown edges are followed only when *every* candidate of the call site
/// is a sink (the name+arity is unique to the raw store surface). An
/// ambiguous call that might be the blessed `Pager` API is attributed to
/// it — the caveat is documented in DESIGN.md: a raw call hidden behind a
/// name the workspace also uses elsewhere needs a typed receiver to fire.
fn bx010(a: &Analysis, out: &mut Vec<Diagnostic>) {
    let g = &a.graph;
    let sinks: BTreeSet<FnId> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.self_ty
                .as_deref()
                .is_some_and(|t| RAW_STORE_TYPES.contains(&t))
        })
        .map(|(id, _)| id)
        .collect();
    if sinks.is_empty() {
        return;
    }
    // Effective adjacency under the unknown-edge rule.
    let mut eff: Vec<Vec<FnId>> = vec![Vec::new(); g.fns.len()];
    for (from, edges) in g.edges.iter().enumerate() {
        for e in edges {
            let counts = match e.kind {
                EdgeKind::Static | EdgeKind::Method => true,
                EdgeKind::Unknown => edges
                    .iter()
                    .filter(|o| o.call_si == e.call_si)
                    .all(|o| sinks.contains(&o.to)),
            };
            if counts {
                eff[from].push(e.to);
            }
        }
    }
    // Reverse BFS from the sinks, never expanding backwards through a
    // blessed node (paths through `Pager` are the accounted ones).
    let mut reach: BTreeSet<FnId> = sinks.clone();
    let mut queue: Vec<FnId> = sinks.iter().copied().collect();
    while let Some(n) = queue.pop() {
        for (from, outs) in eff.iter().enumerate() {
            if !reach.contains(&from) && !is_blessed(a, from) && outs.contains(&n) {
                reach.insert(from);
                queue.push(from);
            }
        }
    }
    for (id, f) in g.fns.iter().enumerate() {
        if !reach.contains(&id)
            || sinks.contains(&id)
            || f.in_test
            || f.path.starts_with("crates/pager/src")
        {
            continue;
        }
        let chain = chain_to_sink(g, &eff, id, &sinks, |n| is_blessed(a, n));
        push(
            &a.files[f.file_idx],
            f.fn_si,
            "BX010",
            format!(
                "`{}` reaches the raw disk surface bypassing `Pager`: {} — block \
                 transfers on this path escape I/O accounting",
                f.qual(),
                chain.join(" -> ")
            ),
            out,
        );
    }
}

/// Shortest chain of quals from `from` to any sink over the effective
/// adjacency, never passing through blessed nodes.
fn chain_to_sink(
    g: &crate::callgraph::CallGraph,
    eff: &[Vec<FnId>],
    from: FnId,
    sinks: &BTreeSet<FnId>,
    blessed: impl Fn(FnId) -> bool,
) -> Vec<String> {
    use std::collections::{BTreeMap, VecDeque};
    let mut prev: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    let mut hit = None;
    'bfs: while let Some(n) = queue.pop_front() {
        if n != from && (blessed(n) || sinks.contains(&n)) {
            continue;
        }
        for &to in &eff[n] {
            if to == from || prev.contains_key(&to) || blessed(to) {
                continue;
            }
            prev.insert(to, n);
            if sinks.contains(&to) {
                hit = Some(to);
                break 'bfs;
            }
            queue.push_back(to);
        }
    }
    let Some(mut cur) = hit else {
        return vec![g.fns[from].qual()];
    };
    let mut path = vec![g.fns[cur].qual()];
    while let Some(&p) = prev.get(&cur) {
        path.push(g.fns[p].qual());
        cur = p;
        if cur == from {
            break;
        }
    }
    path.reverse();
    path
}

/// BX011: every shared-state site in library crates is a tracked finding.
fn bx011(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for p in &a.parsed {
        for site in &p.sites {
            if site.in_test || !site.path.starts_with("crates/") {
                continue;
            }
            let apis = reaching_public_apis(a, site);
            let reach = match apis.len() {
                0 => "no public API reaches it".to_string(),
                n => format!(
                    "reached by {} public API{}: {}{}",
                    n,
                    if n == 1 { "" } else { "s" },
                    apis.iter().take(3).cloned().collect::<Vec<_>>().join(", "),
                    if n > 3 { ", …" } else { "" }
                ),
            };
            out.push(Diagnostic {
                rule: "BX011",
                path: site.path.clone(),
                line: site.line,
                col: 1,
                message: format!(
                    "{} site `{}.{}` blocks Send/Sync readiness ({reach}) — \
                     inventoried in sync-readiness.json",
                    site.kind.label(),
                    site.container,
                    site.name
                ),
                snippet: site.type_text.clone(),
            });
        }
    }
}

/// Public, non-test functions that (transitively, over resolved edges)
/// call into a function whose body mentions the site's name.
fn reaching_public_apis(a: &Analysis, site: &StateSite) -> Vec<String> {
    let g = &a.graph;
    let touching: BTreeSet<FnId> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            if f.crate_name != site.crate_name || f.in_test {
                return false;
            }
            let Some((open, close)) = f.body else {
                return false;
            };
            let file = &a.files[f.file_idx];
            (open + 1..close).any(|si| file.stext(si) == site.name)
        })
        .map(|(id, _)| id)
        .collect();
    if touching.is_empty() {
        return Vec::new();
    }
    let up = g.reaching(&touching, |e| e.kind != EdgeKind::Unknown, |_| true);
    let mut apis: Vec<String> = up
        .iter()
        .filter(|&&id| g.fns[id].is_pub && !g.fns[id].in_test)
        .map(|&id| g.fns[id].qual())
        .collect();
    apis.sort();
    apis.dedup();
    apis
}

/// BX012: swallowed I/O-error `Result`s, transitively over the summary
/// fixpoint. Resolved edges only; the BX008 name list is skipped to avoid
/// double findings on the same call.
fn bx012(a: &Analysis, out: &mut Vec<Diagnostic>) {
    let g = &a.graph;
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (id, f) in g.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let file = &a.files[f.file_idx];
        for e in &g.edges[id] {
            if e.kind == EdgeKind::Unknown || !a.summaries[e.to].io_result {
                continue;
            }
            let callee = &g.fns[e.to];
            if stream::IO_RESULT_FNS.contains(&callee.name.as_str()) {
                continue;
            }
            if !seen.insert((f.file_idx, e.call_si)) {
                continue;
            }
            let c = dataflow::classify_consumption(file, e.call_si, chain_start);
            if c.is_swallowed() {
                push(
                    file,
                    e.call_si,
                    "BX012",
                    format!(
                        "I/O-error `Result` from `{}` is {} — a disk fault vanishes \
                         here; propagate with `?` or handle both arms",
                        callee.qual(),
                        c.label()
                    ),
                    out,
                );
            }
        }
    }
}

/// BX013: overlapping `RefCell` borrow windows inside one function.
fn bx013(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for f in &a.graph.fns {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        let file = &a.files[f.file_idx];
        for c in dataflow::borrow_conflicts(file, open, close) {
            push(
                file,
                c.si,
                "BX013",
                format!(
                    "`{}` is {} while the borrow taken at line {} is still live — \
                     overlapping windows panic today and cannot map onto a latch order",
                    c.key,
                    if c.second_mut {
                        "mutably re-borrowed"
                    } else {
                        "borrowed"
                    },
                    c.first_line
                ),
                out,
            );
        }
    }
}

/// BX014: `OpSpan::op` constructed after fallible work in the same body.
fn bx014(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for f in &a.graph.fns {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        let file = &a.files[f.file_idx];
        for s in dataflow::spans_after_early_return(file, open, close) {
            push(
                file,
                s.si,
                "BX014",
                format!(
                    "`OpSpan::op` opens after a `{}` at line {} — early-return paths \
                     (including fault-service retries) run with no attribution window",
                    s.reason, s.early_line
                ),
                out,
            );
        }
    }
}

/// Render the full concurrency-readiness inventory as pretty JSON:
/// every non-test shared-state site in the workspace (library crates and
/// tooling alike), with the public APIs that reach it and per-kind totals.
pub fn sync_readiness_json(a: &Analysis) -> String {
    let mut sites: Vec<(&StateSite, Vec<String>)> = Vec::new();
    for p in &a.parsed {
        for site in &p.sites {
            if site.in_test {
                continue;
            }
            sites.push((site, reaching_public_apis(a, site)));
        }
    }
    sites.sort_by(|(x, _), (y, _)| (&x.path, x.line).cmp(&(&y.path, y.line)));
    let mut by_kind: Vec<(&'static str, usize)> = Vec::new();
    for (s, _) in &sites {
        match by_kind.iter_mut().find(|(k, _)| *k == s.kind.label()) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((s.kind.label(), 1)),
        }
    }
    let js = crate::report::json_string;
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"total\": {},\n", sites.len()));
    out.push_str("  \"by_kind\": {");
    for (i, (k, n)) in by_kind.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", js(k), n));
    }
    out.push_str("},\n  \"sites\": [\n");
    for (i, (s, apis)) in sites.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"kind\": {}, ", js(s.kind.label())));
        out.push_str(&format!("\"container\": {}, ", js(&s.container)));
        out.push_str(&format!("\"name\": {}, ", js(&s.name)));
        out.push_str(&format!("\"crate\": {}, ", js(&s.crate_name)));
        out.push_str(&format!("\"path\": {}, ", js(&s.path)));
        out.push_str(&format!("\"line\": {}, ", s.line));
        out.push_str(&format!("\"public\": {}, ", s.is_pub));
        out.push_str(&format!("\"type\": {}, ", js(&s.type_text)));
        out.push_str("\"reaching_public_apis\": [");
        for (j, api) in apis.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&js(api));
        }
        out.push_str("]}");
        if i + 1 < sites.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn analyze(srcs: &[(&str, &str)]) -> Analysis {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::parse(*p, *s))
            .collect();
        Analysis::build(files)
    }

    fn rules_of(diags: &[Diagnostic], rule: &str) -> Vec<String> {
        diags
            .iter()
            .filter(|d| d.rule == rule)
            .map(|d| d.message.clone())
            .collect()
    }

    const STORE: &str = "pub struct FileStore;\n\
                         impl FileStore { pub fn read(&self) {} }\n\
                         pub struct Pager;\n\
                         impl Pager { pub fn read(&self, s: &FileStore) { s.read(); } }";

    #[test]
    fn bx010_flags_bypass_and_blesses_pager() {
        let a = analyze(&[
            ("crates/pager/src/lib.rs", STORE),
            (
                "crates/core/src/lib.rs",
                "fn helper(s: &FileStore) { s.read(); }\n\
                 pub fn entry(s: &FileStore) { helper(s); }\n\
                 pub fn fine(p: &Pager, s: &FileStore) { p.read(s); }",
            ),
        ]);
        let mut out = Vec::new();
        run_all(&a, &mut out);
        let b = rules_of(&out, "BX010");
        assert!(b.iter().any(|m| m.contains("boxes-core::helper")), "{b:?}");
        assert!(b.iter().any(|m| m.contains("boxes-core::entry")), "{b:?}");
        assert!(!b.iter().any(|m| m.contains("boxes-core::fine")), "{b:?}");
    }

    #[test]
    fn bx011_inventories_sites_with_reaching_apis() {
        let a = analyze(&[(
            "crates/core/src/lib.rs",
            "pub struct Durable { cache: RefCell<Vec<u8>> }\n\
             impl Durable { fn touch(&self) { self.cache.borrow(); } \
             pub fn api(&self) { self.touch(); } }",
        )]);
        let mut out = Vec::new();
        run_all(&a, &mut out);
        let b = rules_of(&out, "BX011");
        assert_eq!(b.len(), 1);
        assert!(b[0].contains("`Durable.cache`"), "{b:?}");
        assert!(b[0].contains("boxes-core::Durable::api"), "{b:?}");
        let json = sync_readiness_json(&a);
        assert!(json.contains("\"name\": \"cache\""));
        assert!(json.contains("boxes-core::Durable::api"));
    }

    #[test]
    fn bx012_transitive_swallow_fires_and_propagation_passes() {
        let a = analyze(&[(
            "crates/wal/src/lib.rs",
            "fn raw() -> Result<(), WalError> { Ok(()) }\n\
             fn wraps() -> Result<(), WalError> { raw()?; Ok(()) }\n\
             pub fn bad() { let _ = wraps(); }\n\
             pub fn good() -> Result<(), WalError> { wraps()?; Ok(()) }",
        )]);
        let mut out = Vec::new();
        run_all(&a, &mut out);
        let b = rules_of(&out, "BX012");
        assert_eq!(b.len(), 1, "{b:?}");
        assert!(b[0].contains("boxes-wal::wraps"));
        assert!(b[0].contains("`let _ =`-dropped"));
    }

    #[test]
    fn bx013_and_bx014_fire_on_their_shapes() {
        let a = analyze(&[(
            "crates/trace/src/lib.rs",
            "pub struct T { x: RefCell<u8> }\n\
             impl T { pub fn clash(&self) { let g = self.x.borrow_mut(); \
             self.x.borrow(); } \n\
             pub fn late(&self) -> Result<(), E> { self.gate()?; \
             let _s = OpSpan::op(\"w\", \"i\"); Ok(()) } \
             fn gate(&self) -> Result<(), E> { Ok(()) } }",
        )]);
        let mut out = Vec::new();
        run_all(&a, &mut out);
        assert_eq!(rules_of(&out, "BX013").len(), 1);
        assert_eq!(rules_of(&out, "BX014").len(), 1);
    }
}
