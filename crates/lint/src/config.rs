//! The `lint.toml` suppression baseline.
//!
//! The workspace cannot take a TOML dependency (the analyzer must stay
//! dependency-free), so this module parses the small subset we actually use:
//!
//! ```toml
//! # Per-rule policy: paths where the rule simply does not apply.
//! [rules.BX003]
//! allow_paths = ["xtask/src"]
//!
//! # Point suppressions: every entry must carry a justification and must
//! # still match at least one finding, or the gate errors (stale baseline).
//! [[allow]]
//! rule = "BX003"
//! path = "crates/pager/src/codec.rs"
//! contains = "block underrun"
//! justification = "contract panic pinned by a should_panic test"
//! ```
//!
//! `allow_paths` entries are prefix matches on workspace-relative paths and
//! are *policy* — they are not stale-checked. `[[allow]]` entries suppress a
//! single rule in a single file (optionally narrowed to lines whose text
//! contains `contains`) and *are* stale-checked.
//!
//! A `[limits]` table caps the baseline itself:
//!
//! ```toml
//! [limits]
//! max_baselined = 212   # gate fails if the suppressed total exceeds this
//! ```
//!
//! BX018 (the sync-readiness ratchet) has its own `[[ratchet]]` table —
//! like `[[allow]]` but with no `rule` key, no budget headroom, and the
//! same stale-checking:
//!
//! ```toml
//! [[ratchet]]
//! path = "crates/trace/src/lib.rs"
//! contains = "static STACK"
//! justification = "per-thread span stack is the design"
//! ```

use std::collections::BTreeMap;

/// One `[[allow]]` suppression entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule ID, e.g. `BX003`.
    pub rule: String,
    /// Workspace-relative file path the suppression applies to.
    pub path: String,
    /// Optional substring the offending source line must contain.
    pub contains: Option<String>,
    /// Why this finding is acceptable. Mandatory.
    pub justification: String,
    /// Line in `lint.toml` where the entry starts (for error reporting).
    pub line_no: usize,
}

/// One `[[ratchet]]` entry: a deliberate sync-readiness survivor (BX018).
#[derive(Clone, Debug)]
pub struct RatchetEntry {
    /// Workspace-relative file path of the surviving site.
    pub path: String,
    /// Optional substring the site's declaration must contain.
    pub contains: Option<String>,
    /// Why the site survives the Send/Sync burn-down. Mandatory.
    pub justification: String,
    /// Line in `lint.toml` where the entry starts (for error reporting).
    pub line_no: usize,
}

/// Parsed `lint.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// `[rules.BXnnn] allow_paths` — path prefixes where the rule is off.
    pub rule_allow_paths: BTreeMap<String, Vec<String>>,
    /// All `[[allow]]` point suppressions.
    pub allows: Vec<AllowEntry>,
    /// All `[[ratchet]]` sync-readiness survivors (BX018 only).
    pub ratchets: Vec<RatchetEntry>,
    /// `[limits] max_baselined` — hard ceiling on the suppressed-finding
    /// total. `None` means uncapped.
    pub max_baselined: Option<usize>,
}

/// A malformed `lint.toml`.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

enum Section {
    None,
    Rule(String),
    Allow(usize),
    Ratchet(usize),
    Limits,
}

impl Config {
    /// Parse the configuration text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = Section::None;
        for (line_no, line) in logical_lines(text) {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(inner) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                match inner.trim() {
                    "allow" => {
                        cfg.allows.push(AllowEntry {
                            rule: String::new(),
                            path: String::new(),
                            contains: None,
                            justification: String::new(),
                            line_no,
                        });
                        section = Section::Allow(cfg.allows.len() - 1);
                    }
                    "ratchet" => {
                        cfg.ratchets.push(RatchetEntry {
                            path: String::new(),
                            contains: None,
                            justification: String::new(),
                            line_no,
                        });
                        section = Section::Ratchet(cfg.ratchets.len() - 1);
                    }
                    other => {
                        return Err(ConfigError {
                            line: line_no,
                            message: format!("unknown array table [[{other}]]"),
                        });
                    }
                }
                continue;
            }
            if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let inner = inner.trim();
                if let Some(rule) = inner.strip_prefix("rules.") {
                    section = Section::Rule(rule.trim().to_string());
                } else if inner == "limits" {
                    section = Section::Limits;
                } else {
                    return Err(ConfigError {
                        line: line_no,
                        message: format!("unknown table [{inner}]"),
                    });
                }
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = line[..eq].trim();
            let value = line[eq + 1..].trim();
            match &section {
                Section::None => {
                    return Err(ConfigError {
                        line: line_no,
                        message: format!("key `{key}` outside any table"),
                    });
                }
                Section::Rule(rule) => {
                    if key != "allow_paths" {
                        return Err(ConfigError {
                            line: line_no,
                            message: format!("unknown key `{key}` in [rules.{rule}]"),
                        });
                    }
                    let paths = parse_string_array(value).ok_or_else(|| ConfigError {
                        line: line_no,
                        message: "allow_paths must be an array of strings".to_string(),
                    })?;
                    cfg.rule_allow_paths
                        .entry(rule.clone())
                        .or_default()
                        .extend(paths);
                }
                Section::Limits => {
                    if key != "max_baselined" {
                        return Err(ConfigError {
                            line: line_no,
                            message: format!("unknown key `{key}` in [limits]"),
                        });
                    }
                    let n: usize = value.parse().map_err(|_| ConfigError {
                        line: line_no,
                        message: "max_baselined must be an integer".to_string(),
                    })?;
                    cfg.max_baselined = Some(n);
                }
                Section::Allow(i) => {
                    let s = parse_string(value).ok_or_else(|| ConfigError {
                        line: line_no,
                        message: format!("`{key}` must be a quoted string"),
                    })?;
                    let Some(entry) = cfg.allows.get_mut(*i) else {
                        continue;
                    };
                    match key {
                        "rule" => entry.rule = s,
                        "path" => entry.path = s,
                        "contains" => entry.contains = Some(s),
                        "justification" => entry.justification = s,
                        _ => {
                            return Err(ConfigError {
                                line: line_no,
                                message: format!("unknown key `{key}` in [[allow]]"),
                            });
                        }
                    }
                }
                Section::Ratchet(i) => {
                    let s = parse_string(value).ok_or_else(|| ConfigError {
                        line: line_no,
                        message: format!("`{key}` must be a quoted string"),
                    })?;
                    let Some(entry) = cfg.ratchets.get_mut(*i) else {
                        continue;
                    };
                    match key {
                        "path" => entry.path = s,
                        "contains" => entry.contains = Some(s),
                        "justification" => entry.justification = s,
                        _ => {
                            return Err(ConfigError {
                                line: line_no,
                                message: format!("unknown key `{key}` in [[ratchet]]"),
                            });
                        }
                    }
                }
            }
        }
        for entry in &cfg.allows {
            if entry.rule.is_empty() || entry.path.is_empty() {
                return Err(ConfigError {
                    line: entry.line_no,
                    message: "[[allow]] entry needs both `rule` and `path`".to_string(),
                });
            }
            if entry.justification.trim().is_empty() {
                return Err(ConfigError {
                    line: entry.line_no,
                    message: format!(
                        "[[allow]] for {} in {} has no justification — every \
                         suppression must say why",
                        entry.rule, entry.path
                    ),
                });
            }
        }
        for entry in &cfg.ratchets {
            if entry.path.is_empty() {
                return Err(ConfigError {
                    line: entry.line_no,
                    message: "[[ratchet]] entry needs a `path`".to_string(),
                });
            }
            if entry.justification.trim().is_empty() {
                return Err(ConfigError {
                    line: entry.line_no,
                    message: format!(
                        "[[ratchet]] for {} has no justification — every surviving \
                         sync-readiness site must say why it stays",
                        entry.path
                    ),
                });
            }
        }
        Ok(cfg)
    }

    /// Is `path` covered by a rule's `allow_paths` policy?
    pub fn rule_allows_path(&self, rule: &str, path: &str) -> bool {
        self.rule_allow_paths
            .get(rule)
            .is_some_and(|prefixes| prefixes.iter().any(|p| path.starts_with(p.as_str())))
    }
}

/// Join physical lines into logical ones: a line whose `[` arrays are still
/// open continues onto the next line, so multi-line `allow_paths` arrays
/// parse naturally. Returns `(first_line_no, joined_text)` pairs.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String, i32)> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let stripped = strip_comment(raw_line);
        let delta = bracket_delta(stripped);
        match pending.take() {
            Some((start, mut acc, depth)) => {
                acc.push(' ');
                acc.push_str(stripped.trim());
                if depth + delta > 0 {
                    pending = Some((start, acc, depth + delta));
                } else {
                    out.push((start, acc));
                }
            }
            None => {
                if delta > 0 {
                    pending = Some((idx + 1, stripped.trim().to_string(), delta));
                } else {
                    out.push((idx + 1, stripped.to_string()));
                }
            }
        }
    }
    if let Some((start, acc, _)) = pending {
        out.push((start, acc)); // unbalanced; let the parser report it
    }
    out
}

/// Net `[`-minus-`]` count outside of quoted strings. Table headers like
/// `[rules.BX001]` are balanced and contribute zero.
fn bracket_delta(line: &str) -> i32 {
    let mut depth = 0i32;
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    depth
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside of quotes starts a comment.
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_and_allows() {
        let text = r#"
# policy
[rules.BX003]
allow_paths = ["xtask/src", "crates/bench/src"]

[[allow]]
rule = "BX003"
path = "crates/pager/src/codec.rs"
contains = "block underrun"
justification = "contract panic pinned by should_panic test"
"#;
        let cfg = Config::parse(text).expect("valid config");
        assert!(cfg.rule_allows_path("BX003", "xtask/src/main.rs"));
        assert!(!cfg.rule_allows_path("BX003", "crates/pager/src/lib.rs"));
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].contains.as_deref(), Some("block underrun"));
    }

    #[test]
    fn missing_justification_is_an_error() {
        let text = "[[allow]]\nrule = \"BX001\"\npath = \"crates/x/src/lib.rs\"\n";
        let err = Config::parse(text).expect_err("must reject");
        assert!(err.message.contains("justification"));
    }

    #[test]
    fn unknown_tables_are_errors() {
        assert!(Config::parse("[surprise]\n").is_err());
        assert!(Config::parse("[[deny]]\n").is_err());
    }

    #[test]
    fn multi_line_arrays() {
        let text = "[rules.BX001]\nallow_paths = [\n  \"crates/pager/src\", # io\n  \"crates/lidf/src\",\n]\n";
        let cfg = Config::parse(text).expect("valid");
        assert_eq!(cfg.rule_allow_paths["BX001"].len(), 2);
    }

    #[test]
    fn limits_table_parses() {
        let cfg = Config::parse("[limits]\nmax_baselined = 212\n").expect("valid");
        assert_eq!(cfg.max_baselined, Some(212));
        assert!(Config::parse("[limits]\nmax_baselined = \"lots\"\n").is_err());
        assert!(Config::parse("[limits]\nother = 1\n").is_err());
    }

    #[test]
    fn ratchet_entries_parse_and_validate() {
        let text = "[[ratchet]]\npath = \"crates/trace/src/lib.rs\"\n\
                    contains = \"static STACK\"\n\
                    justification = \"per-thread span stack is the design\"\n";
        let cfg = Config::parse(text).expect("valid");
        assert_eq!(cfg.ratchets.len(), 1);
        assert_eq!(cfg.ratchets[0].contains.as_deref(), Some("static STACK"));
        let missing = "[[ratchet]]\npath = \"crates/x/src/lib.rs\"\n";
        let err = Config::parse(missing).expect_err("must reject");
        assert!(err.message.contains("justification"));
        let no_path = "[[ratchet]]\njustification = \"why\"\n";
        let err = Config::parse(no_path).expect_err("must reject");
        assert!(err.message.contains("path"));
        let bad_key = "[[ratchet]]\npath = \"a\"\nrule = \"BX018\"\njustification = \"x\"\n";
        let err = Config::parse(bad_key).expect_err("must reject");
        assert!(err.message.contains("unknown key"));
    }

    #[test]
    fn comments_and_escapes() {
        let text = "[rules.BX002] # io\nallow_paths = [\"a#b\"] # trailing\n";
        let cfg = Config::parse(text).expect("valid");
        assert_eq!(cfg.rule_allow_paths["BX002"], vec!["a#b".to_string()]);
    }
}
