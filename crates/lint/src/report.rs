//! Diagnostics and the human/JSON renderers.

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule ID (`BX001`…`BX006`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What the rule objects to.
    pub message: String,
    /// The trimmed source line, for baseline `contains` matching and display.
    pub snippet: String,
}

impl Diagnostic {
    /// Render as `path:line:col: [RULE] message`.
    pub fn human(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.col, self.rule, self.message, self.snippet
        )
    }
}

/// Outcome of linting the workspace and applying the baseline.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Findings not covered by any suppression — these fail the gate.
    pub unsuppressed: Vec<Diagnostic>,
    /// Findings matched by an `[[allow]]` entry.
    pub suppressed: Vec<Diagnostic>,
    /// BX018 findings matched by a `[[ratchet]]` entry — deliberate
    /// sync-readiness survivors, outside the `max_baselined` budget.
    pub ratcheted: Vec<Diagnostic>,
    /// `lint.toml` lines of `[[allow]]` entries that matched nothing.
    pub stale_allows: Vec<String>,
    /// `lint.toml` lines of `[[ratchet]]` entries that matched nothing —
    /// the site was retired, so the entry must go too.
    pub stale_ratchets: Vec<String>,
    /// Baseline-budget violations: the suppressed total exceeded
    /// `[limits] max_baselined` — the baseline may only shrink.
    pub budget_violations: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Wall-clock milliseconds the lint pass took (set by the driver;
    /// zero when unmeasured).
    pub lint_pass_ms: u128,
    /// Wall-clock milliseconds the lock-set analysis and lock-order export
    /// took (set by the driver; zero when unmeasured).
    pub lock_analysis_ms: u128,
}

impl Outcome {
    /// Did the gate pass?
    pub fn is_clean(&self) -> bool {
        self.unsuppressed.is_empty()
            && self.stale_allows.is_empty()
            && self.stale_ratchets.is_empty()
            && self.budget_violations.is_empty()
    }

    /// The JSON report (pretty-printed, stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        push_kv_num(&mut out, 1, "files_scanned", self.files_scanned, true);
        out.push_str(&format!("  \"lint_pass_ms\": {},\n", self.lint_pass_ms));
        out.push_str(&format!(
            "  \"lock_analysis_ms\": {},\n",
            self.lock_analysis_ms
        ));
        push_kv_num(
            &mut out,
            1,
            "unsuppressed_count",
            self.unsuppressed.len(),
            true,
        );
        push_kv_num(&mut out, 1, "suppressed_count", self.suppressed.len(), true);
        push_kv_num(&mut out, 1, "ratcheted_count", self.ratcheted.len(), true);
        out.push_str("  \"budget_violations\": [");
        for (i, s) in self.budget_violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(s));
        }
        out.push_str("],\n");
        out.push_str("  \"stale_allows\": [");
        for (i, s) in self.stale_allows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(s));
        }
        out.push_str("],\n");
        out.push_str("  \"stale_ratchets\": [");
        for (i, s) in self.stale_ratchets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(s));
        }
        out.push_str("],\n");
        push_diag_array(&mut out, "unsuppressed", &self.unsuppressed, true);
        push_diag_array(&mut out, "suppressed", &self.suppressed, true);
        push_diag_array(&mut out, "ratcheted", &self.ratcheted, false);
        out.push_str("}\n");
        out
    }
}

fn push_kv_num(out: &mut String, indent: usize, key: &str, value: usize, comma: bool) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str(&format!(
        "\"{}\": {}{}\n",
        key,
        value,
        if comma { "," } else { "" }
    ));
}

fn push_diag_array(out: &mut String, key: &str, diags: &[Diagnostic], comma: bool) {
    out.push_str(&format!("  \"{key}\": [\n"));
    for (i, d) in diags.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"rule\": {}, ", json_string(d.rule)));
        out.push_str(&format!("\"path\": {}, ", json_string(&d.path)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"col\": {}, ", d.col));
        out.push_str(&format!("\"message\": {}, ", json_string(&d.message)));
        out.push_str(&format!("\"snippet\": {}", json_string(&d.snippet)));
        out.push('}');
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!("  ]{}\n", if comma { "," } else { "" }));
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_structure() {
        let outcome = Outcome {
            unsuppressed: vec![Diagnostic {
                rule: "BX003",
                path: "crates/x/src/lib.rs".to_string(),
                line: 3,
                col: 7,
                message: "panic in \"library\" code".to_string(),
                snippet: "x.unwrap();".to_string(),
            }],
            suppressed: Vec::new(),
            stale_allows: vec!["lint.toml:12".to_string()],
            files_scanned: 42,
            ..Outcome::default()
        };
        let json = outcome.to_json();
        assert!(json.contains("\"files_scanned\": 42"));
        assert!(json.contains("\\\"library\\\""));
        assert!(json.contains("lint.toml:12"));
        assert!(!outcome.is_clean());
    }
}
