//! Seeded logical-tick scheduler for deterministic interleaving tests.
//!
//! The latch-per-frame pager (ROADMAP item 1) is proven by *replaying*
//! concurrency instead of hoping for it: a [`Scheduler`] owns a seeded
//! script — a shuffled multiset of actor ids, one entry per operation each
//! actor will perform — and grants turns strictly in script order. Every
//! actor thread brackets each logical operation with
//! [`Scheduler::wait_turn`] / [`Scheduler::step_done`], so the schedule
//! *is* the serialization order: the interleaving rig can assert the
//! sharded pager's results against a serial model replayed in the same
//! order, for hundreds of seeds, bit-for-bit reproducibly (no wall clock,
//! no OS-scheduler dependence — rule BX007 holds).
//!
//! An actor that finishes early (fewer ops than scripted, or an aborted
//! leg) calls [`Scheduler::retire`]; its remaining scripted turns are
//! skipped so the other actors never deadlock waiting on it.
//!
//! The scheduler's own mutex (`boxes-core::Scheduler.state`) is a leaf in
//! the BX015 lock-order graph: actors call into it only *between* pager
//! operations, never while holding a pager, shard, or frame lock.

use boxes_pager::{codec, lock_unpoisoned, splitmix64};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Script progress guarded by the scheduler mutex.
struct SchedState {
    /// Actor id per scripted step, in grant order.
    script: Vec<usize>,
    /// Next script position to grant.
    pos: usize,
    /// Actors whose remaining turns are skipped.
    retired: Vec<bool>,
}

/// Turn-based scheduler: one actor runs at a time, in seeded script order.
pub struct Scheduler {
    state: Mutex<SchedState>,
    turns: Condvar,
}

impl Scheduler {
    /// Build a scheduler for `ops_per_actor.len()` actors, where actor `i`
    /// is granted exactly `ops_per_actor[i]` turns, in an order shuffled
    /// deterministically from `seed` (Fisher–Yates over a splitmix64
    /// stream).
    #[must_use]
    pub fn seeded(seed: u64, ops_per_actor: &[usize]) -> Arc<Scheduler> {
        let mut script = Vec::new();
        for (actor, &ops) in ops_per_actor.iter().enumerate() {
            for _ in 0..ops {
                script.push(actor);
            }
        }
        let mut stream = seed;
        for i in (1..script.len()).rev() {
            stream = splitmix64(stream);
            let j = codec::u64_to_index(stream % codec::usize_to_u64(i + 1));
            script.swap(i, j);
        }
        Arc::new(Scheduler {
            state: Mutex::new(SchedState {
                script,
                pos: 0,
                retired: vec![false; ops_per_actor.len()],
            }),
            turns: Condvar::new(),
        })
    }

    /// Total scripted steps (all actors).
    #[must_use]
    pub fn script_len(&self) -> usize {
        let state = self.state_guard();
        state.script.len()
    }

    /// Block until it is `actor`'s turn. Returns `false` when the script
    /// is exhausted (no more turns will ever be granted to anyone) — the
    /// actor should finish without performing further scheduled work.
    pub fn wait_turn(&self, actor: usize) -> bool {
        let mut state = self.state_guard();
        loop {
            while state.pos < state.script.len() {
                let head = state.script[state.pos];
                if state.retired.get(head).copied().unwrap_or(false) {
                    state.pos += 1;
                } else {
                    break;
                }
            }
            if state.pos >= state.script.len() {
                self.turns.notify_all();
                return false;
            }
            if state.script[state.pos] == actor {
                return true;
            }
            state = match self.turns.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Mark `actor`'s current turn complete and wake the next scripted
    /// actor. A call out of turn (defensive) changes nothing but still
    /// wakes waiters.
    pub fn step_done(&self, actor: usize) {
        let mut state = self.state_guard();
        if state.pos < state.script.len() && state.script[state.pos] == actor {
            state.pos += 1;
        }
        self.turns.notify_all();
    }

    /// Retire `actor`: skip all of its remaining scripted turns so other
    /// actors never wait on a finished thread.
    pub fn retire(&self, actor: usize) {
        let mut state = self.state_guard();
        if let Some(slot) = state.retired.get_mut(actor) {
            *slot = true;
        }
        self.turns.notify_all();
    }

    /// Acquire the scheduler mutex (poison-recovering: an actor that
    /// panics mid-turn — e.g. an injected crash — must not wedge the
    /// remaining actors).
    fn state_guard(&self) -> MutexGuard<'_, SchedState> {
        lock_unpoisoned(&self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_is_a_seeded_permutation_of_the_op_multiset() {
        let s1 = Scheduler::seeded(42, &[3, 2, 4]);
        let s2 = Scheduler::seeded(42, &[3, 2, 4]);
        let s3 = Scheduler::seeded(43, &[3, 2, 4]);
        assert_eq!(s1.script_len(), 9);
        let snap = |s: &Scheduler| {
            let st = s.state_guard();
            st.script.clone()
        };
        assert_eq!(snap(&s1), snap(&s2), "same seed, same schedule");
        assert_ne!(snap(&s1), snap(&s3), "different seed, different shuffle");
        let mut counts = [0usize; 3];
        for actor in snap(&s1) {
            counts[actor] += 1;
        }
        assert_eq!(counts, [3, 2, 4], "every op of every actor is scheduled");
    }

    #[test]
    fn turns_serialize_actors_in_script_order() {
        let sched = Scheduler::seeded(7, &[5, 5, 5]);
        let order: Vec<usize> = {
            let st = sched.state_guard();
            st.script.clone()
        };
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for actor in 0..3usize {
            let sched = Arc::clone(&sched);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                while sched.wait_turn(actor) {
                    lock_unpoisoned(&log).push(actor);
                    sched.step_done(actor);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock_unpoisoned(&log), order, "log replays the script");
    }

    #[test]
    fn retired_actors_are_skipped() {
        let sched = Scheduler::seeded(9, &[4, 4]);
        sched.retire(1);
        let mut granted = 0;
        while sched.wait_turn(0) {
            granted += 1;
            sched.step_done(0);
        }
        assert_eq!(granted, 4, "actor 0 runs all its turns, none of actor 1's");
        assert!(
            !sched.wait_turn(1),
            "script exhausted for the retired actor"
        );
    }
}
