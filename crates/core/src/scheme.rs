//! One interface over all dynamic labeling schemes.

use boxes_bbox::{BBox, BBoxConfig, PathLabel};
use boxes_lidf::Lid;
use boxes_naive::{BigLabel, NaiveConfig, NaiveLabeling};
use boxes_pager::{Health, Pager, PagerConfig, PagerError, SharedPager};
use boxes_wbox::{WBox, WBoxConfig};

/// Run `op`, converting a [`PagerError`] panic payload (a disk fault that
/// survived retry and repair, or a degraded-mode rejection) into a typed
/// error. Any other panic — including [`boxes_pager::CrashSignal`] —
/// resumes unwinding untouched.
fn catch_pager_error<T>(op: impl FnOnce() -> T) -> Result<T, PagerError> {
    PagerError::catch(op)
}

/// A dynamic order-based labeling scheme (§3's supported operations plus
/// the bulk operations of §4/§5).
///
/// Implementations own their LIDF and index storage on a shared pager, so
/// all I/O is visible through [`LabelingScheme::pager`].
pub trait LabelingScheme {
    /// The label value type (`u64` for W-BOX/naive, [`PathLabel`] for
    /// B-BOX). Ordering agrees with document order.
    type Label: Ord + Clone + std::fmt::Debug;

    /// Short scheme name for reports (e.g. `"W-BOX"`).
    fn name(&self) -> String;

    /// Current label of `lid`.
    fn lookup(&self, lid: Lid) -> Self::Label;

    /// Insert one new label immediately before the label of `lid`.
    fn insert_before(&mut self, lid: Lid) -> Lid;

    /// Insert a new element (start and end labels) before the tag labeled
    /// `lid` (§3: end first, then start before it).
    fn insert_element_before(&mut self, lid: Lid) -> (Lid, Lid);

    /// Delete the label of `lid`, reclaiming its LIDF record.
    fn delete(&mut self, lid: Lid);

    /// Bulk load a fresh document of tags in document order.
    /// `partner_of[i]` is the index of tag i's partner (its element's other
    /// tag) — used by pair-optimized schemes, ignored by the rest.
    fn bulk_load_document(&mut self, partner_of: &[usize]) -> Vec<Lid>;

    /// Bulk-insert a subtree of tags before the tag labeled `lid`;
    /// `partner_of` is relative to the new batch.
    fn insert_subtree_before(&mut self, lid: Lid, partner_of: &[usize]) -> Vec<Lid>;

    /// Bulk-delete the contiguous label range between the two tags of a
    /// subtree root (inclusive).
    fn delete_subtree(&mut self, start: Lid, end: Lid);

    /// Number of live labels.
    fn len(&self) -> u64;

    /// Whether no labels are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bits required per label right now (the paper's label-length metric).
    fn label_bits(&self) -> u32;

    /// The shared pager, for I/O accounting and space metrics.
    fn pager(&self) -> &SharedPager;

    /// Service state of the scheme's storage: [`Health::Ok`], or
    /// [`Health::Degraded`] (read-only) after an unrecoverable disk fault.
    /// Lookups keep working while degraded; the `try_*` mutators fail fast
    /// with [`PagerError::Degraded`].
    fn health(&self) -> Health {
        self.pager().health()
    }

    /// Fallible [`LabelingScheme::lookup`]: a disk fault that survives
    /// retry and read-repair comes back as a typed error, never a wrong
    /// label.
    fn try_lookup(&self, lid: Lid) -> Result<Self::Label, PagerError> {
        catch_pager_error(|| self.lookup(lid))
    }

    /// Fallible [`LabelingScheme::insert_before`]. While degraded the
    /// mutation is rejected up front — before any structure state changes —
    /// so the scheme stays consistent and keeps answering lookups. An error
    /// *during* the operation (the fault that first degrades the pager)
    /// means in-memory state may have run ahead of disk: recover from the
    /// WAL and reopen before mutating again.
    fn try_insert_before(&mut self, lid: Lid) -> Result<Lid, PagerError> {
        if let Health::Degraded(reason) = self.health() {
            return Err(PagerError::Degraded(reason));
        }
        catch_pager_error(|| self.insert_before(lid))
    }

    /// Fallible [`LabelingScheme::insert_element_before`]; degraded-mode
    /// semantics as [`LabelingScheme::try_insert_before`].
    fn try_insert_element_before(&mut self, lid: Lid) -> Result<(Lid, Lid), PagerError> {
        if let Health::Degraded(reason) = self.health() {
            return Err(PagerError::Degraded(reason));
        }
        catch_pager_error(|| self.insert_element_before(lid))
    }

    /// Fallible [`LabelingScheme::delete`]; degraded-mode semantics as
    /// [`LabelingScheme::try_insert_before`].
    fn try_delete(&mut self, lid: Lid) -> Result<(), PagerError> {
        if let Health::Degraded(reason) = self.health() {
            return Err(PagerError::Degraded(reason));
        }
        catch_pager_error(|| self.delete(lid))
    }

    /// Fallible [`LabelingScheme::insert_subtree_before`]; degraded-mode
    /// semantics as [`LabelingScheme::try_insert_before`].
    fn try_insert_subtree_before(
        &mut self,
        lid: Lid,
        partner_of: &[usize],
    ) -> Result<Vec<Lid>, PagerError> {
        if let Health::Degraded(reason) = self.health() {
            return Err(PagerError::Degraded(reason));
        }
        catch_pager_error(|| self.insert_subtree_before(lid, partner_of))
    }

    /// Fallible [`LabelingScheme::delete_subtree`]; degraded-mode semantics
    /// as [`LabelingScheme::try_insert_before`].
    fn try_delete_subtree(&mut self, start: Lid, end: Lid) -> Result<(), PagerError> {
        if let Health::Degraded(reason) = self.health() {
            return Err(PagerError::Degraded(reason));
        }
        catch_pager_error(|| self.delete_subtree(start, end))
    }
}

/// Schemes that can also produce ordinal labels (§3).
pub trait OrdinalScheme: LabelingScheme {
    /// The exact ordinal position of the tag in the document (0-based).
    fn ordinal_of(&self, lid: Lid) -> u64;

    /// Whether `lid` currently names a live label (audit support: lets the
    /// §6 replay check skip deleted anchors without panicking).
    fn is_live(&self, lid: Lid) -> bool;
}

// ---------------------------------------------------------------------------
// W-BOX
// ---------------------------------------------------------------------------

/// [`WBox`] behind the unified interface.
pub struct WBoxScheme {
    inner: WBox,
}

impl WBoxScheme {
    /// W-BOX with parameters derived from `block_size`, caching off.
    pub fn with_block_size(block_size: usize) -> Self {
        let pager = Pager::new(PagerConfig::with_block_size(block_size));
        Self::new(pager, WBoxConfig::from_block_size(block_size))
    }

    /// W-BOX on an existing pager with explicit parameters.
    pub fn new(pager: SharedPager, config: WBoxConfig) -> Self {
        WBoxScheme {
            inner: WBox::new(pager, config),
        }
    }

    /// Reattach to the on-disk image of a previously committed W-BOX:
    /// `state`/`lidf_state` are the `"wbox"`/`"lidf"` meta blobs recovered
    /// from the WAL (see `boxes_wal::recover`).
    pub fn reopen(pager: SharedPager, config: WBoxConfig, state: &[u8], lidf_state: &[u8]) -> Self {
        WBoxScheme {
            inner: WBox::reopen(pager, config, state, lidf_state),
        }
    }

    /// The underlying structure.
    pub fn inner(&self) -> &WBox {
        &self.inner
    }

    /// The underlying structure, mutably.
    pub fn inner_mut(&mut self) -> &mut WBox {
        &mut self.inner
    }

    /// Consume the wrapper.
    pub fn into_inner(self) -> WBox {
        self.inner
    }
}

impl LabelingScheme for WBoxScheme {
    type Label = u64;

    fn name(&self) -> String {
        let c = self.inner.config();
        match (c.pair, c.ordinal) {
            (true, _) => "W-BOX-O".into(),
            (false, true) => "W-BOX (ordinal)".into(),
            (false, false) => "W-BOX".into(),
        }
    }

    fn lookup(&self, lid: Lid) -> u64 {
        self.inner.lookup(lid)
    }

    fn insert_before(&mut self, lid: Lid) -> Lid {
        self.inner.insert_before(lid)
    }

    fn insert_element_before(&mut self, lid: Lid) -> (Lid, Lid) {
        self.inner.insert_element_before(lid)
    }

    fn delete(&mut self, lid: Lid) {
        self.inner.delete(lid)
    }

    fn bulk_load_document(&mut self, partner_of: &[usize]) -> Vec<Lid> {
        if self.inner.config().pair {
            self.inner.bulk_load_pairs(partner_of)
        } else {
            self.inner.bulk_load(partner_of.len())
        }
    }

    fn insert_subtree_before(&mut self, lid: Lid, partner_of: &[usize]) -> Vec<Lid> {
        if self.inner.config().pair {
            self.inner.insert_subtree_before_pairs(lid, partner_of)
        } else {
            self.inner.insert_subtree_before(lid, partner_of.len())
        }
    }

    fn delete_subtree(&mut self, start: Lid, end: Lid) {
        self.inner.delete_subtree(start, end)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn label_bits(&self) -> u32 {
        self.inner.label_bits()
    }

    fn pager(&self) -> &SharedPager {
        self.inner.pager()
    }
}

impl OrdinalScheme for WBoxScheme {
    fn ordinal_of(&self, lid: Lid) -> u64 {
        self.inner.ordinal_of(lid)
    }

    fn is_live(&self, lid: Lid) -> bool {
        self.inner.is_live(lid)
    }
}

impl boxes_audit::Auditable for WBoxScheme {
    fn audit(&self) -> boxes_audit::AuditReport {
        boxes_audit::Auditable::audit(&self.inner)
    }
}

// ---------------------------------------------------------------------------
// B-BOX
// ---------------------------------------------------------------------------

/// [`BBox`] behind the unified interface.
pub struct BBoxScheme {
    inner: BBox,
}

impl BBoxScheme {
    /// B-BOX with parameters derived from `block_size`, caching off.
    pub fn with_block_size(block_size: usize) -> Self {
        let pager = Pager::new(PagerConfig::with_block_size(block_size));
        Self::new(pager, BBoxConfig::from_block_size(block_size))
    }

    /// B-BOX on an existing pager with explicit parameters.
    pub fn new(pager: SharedPager, config: BBoxConfig) -> Self {
        BBoxScheme {
            inner: BBox::new(pager, config),
        }
    }

    /// Reattach to the on-disk image of a previously committed B-BOX:
    /// `state`/`lidf_state` are the `"bbox"`/`"lidf"` meta blobs recovered
    /// from the WAL (see `boxes_wal::recover`).
    pub fn reopen(pager: SharedPager, config: BBoxConfig, state: &[u8], lidf_state: &[u8]) -> Self {
        BBoxScheme {
            inner: BBox::reopen(pager, config, state, lidf_state),
        }
    }

    /// The underlying structure.
    pub fn inner(&self) -> &BBox {
        &self.inner
    }

    /// The underlying structure, mutably.
    pub fn inner_mut(&mut self) -> &mut BBox {
        &mut self.inner
    }

    /// Consume the wrapper.
    pub fn into_inner(self) -> BBox {
        self.inner
    }
}

impl LabelingScheme for BBoxScheme {
    type Label = PathLabel;

    fn name(&self) -> String {
        if self.inner.config().ordinal {
            "B-BOX-O".into()
        } else {
            "B-BOX".into()
        }
    }

    fn lookup(&self, lid: Lid) -> PathLabel {
        self.inner.lookup(lid)
    }

    fn insert_before(&mut self, lid: Lid) -> Lid {
        self.inner.insert_before(lid)
    }

    fn insert_element_before(&mut self, lid: Lid) -> (Lid, Lid) {
        self.inner.insert_element_before(lid)
    }

    fn delete(&mut self, lid: Lid) {
        self.inner.delete(lid)
    }

    fn bulk_load_document(&mut self, partner_of: &[usize]) -> Vec<Lid> {
        self.inner.bulk_load(partner_of.len())
    }

    fn insert_subtree_before(&mut self, lid: Lid, partner_of: &[usize]) -> Vec<Lid> {
        self.inner.insert_subtree_before(lid, partner_of.len())
    }

    fn delete_subtree(&mut self, start: Lid, end: Lid) {
        self.inner.delete_subtree(start, end)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn label_bits(&self) -> u32 {
        self.inner.label_bits()
    }

    fn pager(&self) -> &SharedPager {
        self.inner.pager()
    }
}

impl OrdinalScheme for BBoxScheme {
    fn ordinal_of(&self, lid: Lid) -> u64 {
        self.inner.ordinal_of(lid)
    }

    fn is_live(&self, lid: Lid) -> bool {
        self.inner.is_live(lid)
    }
}

impl boxes_audit::Auditable for BBoxScheme {
    fn audit(&self) -> boxes_audit::AuditReport {
        boxes_audit::Auditable::audit(&self.inner)
    }
}

// ---------------------------------------------------------------------------
// naive-k
// ---------------------------------------------------------------------------

/// [`NaiveLabeling`] behind the unified interface.
pub struct NaiveScheme {
    inner: NaiveLabeling,
    extra_bits: u32,
}

impl NaiveScheme {
    /// naive-k with the given extra bits, caching off.
    pub fn with_block_size(block_size: usize, extra_bits: u32) -> Self {
        let pager = Pager::new(PagerConfig::with_block_size(block_size));
        Self::new(pager, NaiveConfig { extra_bits })
    }

    /// naive-k on an existing pager with explicit parameters.
    pub fn new(pager: SharedPager, config: NaiveConfig) -> Self {
        NaiveScheme {
            extra_bits: config.extra_bits,
            inner: NaiveLabeling::new(pager, config),
        }
    }

    /// Reattach to the on-disk image of a previously committed naive-k
    /// structure: `state` is the `"naive"` meta blob recovered from the WAL
    /// (see `boxes_wal::recover`).
    pub fn reopen(pager: SharedPager, config: NaiveConfig, state: &[u8]) -> Self {
        NaiveScheme {
            extra_bits: config.extra_bits,
            inner: NaiveLabeling::reopen(pager, config, state),
        }
    }

    /// The underlying structure.
    pub fn inner(&self) -> &NaiveLabeling {
        &self.inner
    }

    /// The underlying structure, mutably.
    pub fn inner_mut(&mut self) -> &mut NaiveLabeling {
        &mut self.inner
    }
}

impl LabelingScheme for NaiveScheme {
    type Label = BigLabel;

    fn name(&self) -> String {
        format!("naive-{}", self.extra_bits)
    }

    fn lookup(&self, lid: Lid) -> BigLabel {
        self.inner.lookup(lid)
    }

    fn insert_before(&mut self, lid: Lid) -> Lid {
        self.inner.insert_before(lid)
    }

    fn insert_element_before(&mut self, lid: Lid) -> (Lid, Lid) {
        self.inner.insert_element_before(lid)
    }

    fn delete(&mut self, lid: Lid) {
        self.inner.delete(lid)
    }

    fn bulk_load_document(&mut self, partner_of: &[usize]) -> Vec<Lid> {
        self.inner.bulk_load(partner_of.len())
    }

    fn insert_subtree_before(&mut self, lid: Lid, partner_of: &[usize]) -> Vec<Lid> {
        self.inner.insert_subtree_before(lid, partner_of.len())
    }

    fn delete_subtree(&mut self, start: Lid, end: Lid) {
        self.inner.delete_subtree(start, end)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn label_bits(&self) -> u32 {
        self.inner.label_bits()
    }

    fn pager(&self) -> &SharedPager {
        self.inner.pager()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: LabelingScheme>(mut s: S) {
        // A 3-element document: <a><b/><c/></a> → 6 tags, pairs (0,5),
        // (1,2), (3,4).
        let lids = s.bulk_load_document(&[5, 2, 1, 4, 3, 0]);
        assert_eq!(s.len(), 6);
        // New element before <c>'s start tag.
        let (ns, ne) = s.insert_element_before(lids[3]);
        assert!(s.lookup(lids[2]) < s.lookup(ns));
        assert!(s.lookup(ns) < s.lookup(ne));
        assert!(s.lookup(ne) < s.lookup(lids[3]));
        s.delete(ns);
        s.delete(ne);
        assert_eq!(s.len(), 6);
        assert!(s.label_bits() > 0);
        assert!(!s.name().is_empty());
    }

    #[test]
    fn all_schemes_satisfy_the_interface() {
        exercise(WBoxScheme::with_block_size(1024));
        exercise(BBoxScheme::with_block_size(256));
        exercise(NaiveScheme::with_block_size(256, 8));
        let pager = Pager::new(PagerConfig::with_block_size(1024));
        exercise(WBoxScheme::new(
            pager,
            WBoxConfig::from_block_size_paired(1024),
        ));
    }

    #[test]
    fn scheme_names() {
        assert_eq!(WBoxScheme::with_block_size(1024).name(), "W-BOX");
        assert_eq!(BBoxScheme::with_block_size(256).name(), "B-BOX");
        assert_eq!(NaiveScheme::with_block_size(256, 16).name(), "naive-16");
        let pager = Pager::new(PagerConfig::with_block_size(256));
        let bo = BBoxScheme::new(pager, BBoxConfig::from_block_size(256).with_ordinal());
        assert_eq!(bo.name(), "B-BOX-O");
    }

    #[test]
    fn degraded_schemes_answer_lookups_and_reject_mutations() {
        use boxes_pager::{FaultPlan, FaultPlanConfig};
        use boxes_wal::{Wal, WalConfig};

        fn drill<S: LabelingScheme>(mut s: S, plan: std::sync::Arc<FaultPlan>) {
            let name = s.name();
            let lids = s.bulk_load_document(&[5, 2, 1, 4, 3, 0]);
            // The disk's write path dies. The next mutation commits to the
            // WAL but cannot apply: the pager parks the frames and degrades
            // instead of corrupting or panicking.
            plan.fail_all_writes_after(0);
            let first = s.try_insert_before(lids[3]);
            assert!(
                first.is_ok(),
                "{name}: the degrading op itself is committed (WAL + overlay)"
            );
            assert!(!s.health().is_ok(), "{name}: degraded after write death");
            // Lookups keep answering, and document order is intact.
            let labels: Vec<S::Label> = lids
                .iter()
                .map(|&lid| s.try_lookup(lid).expect("lookups survive degradation"))
                .collect();
            assert!(
                labels.windows(2).all(|w| w[0] < w[1]),
                "{name}: document order preserved while degraded"
            );
            let inserted = first.expect("checked above");
            let new_label = s.try_lookup(inserted).expect("new label readable");
            assert!(labels[2] < new_label && new_label < labels[3]);
            // Every mutation entry point fails fast with the typed error.
            assert!(matches!(
                s.try_insert_before(lids[0]),
                Err(boxes_pager::PagerError::Degraded(_))
            ));
            assert!(matches!(
                s.try_insert_element_before(lids[0]),
                Err(boxes_pager::PagerError::Degraded(_))
            ));
            assert!(matches!(
                s.try_delete(inserted),
                Err(boxes_pager::PagerError::Degraded(_))
            ));
            assert!(matches!(
                s.try_insert_subtree_before(lids[0], &[1, 0]),
                Err(boxes_pager::PagerError::Degraded(_))
            ));
            assert!(matches!(
                s.try_delete_subtree(lids[1], lids[2]),
                Err(boxes_pager::PagerError::Degraded(_))
            ));
            assert_eq!(s.len(), 7, "{name}: committed op counted, rejects not");
            // Disk replaced: resume drains the parked frames and service
            // returns.
            plan.heal();
            s.pager().try_resume().expect("resume after heal");
            assert!(s.health().is_ok(), "{name}: healthy after resume");
            let again = s.try_insert_before(lids[3]).expect("mutations resume");
            assert!(s.lookup(inserted) < s.lookup(again));
            assert!(s.lookup(again) < s.lookup(lids[3]));
        }

        fn env(block_size: usize) -> (SharedPager, std::sync::Arc<FaultPlan>) {
            let pager = Pager::new(PagerConfig::with_block_size(block_size));
            pager.attach_journal(Wal::new(block_size, WalConfig::default()));
            let plan = FaultPlan::new(FaultPlanConfig::quiet(3, block_size));
            pager.attach_fault_injector(plan.clone());
            (pager, plan)
        }

        let (pager, plan) = env(1024);
        drill(
            WBoxScheme::new(pager, WBoxConfig::from_block_size(1024)),
            plan,
        );
        let (pager, plan) = env(1024);
        drill(
            WBoxScheme::new(pager, WBoxConfig::from_block_size_paired(1024)),
            plan,
        );
        let (pager, plan) = env(512);
        drill(
            BBoxScheme::new(pager, BBoxConfig::from_block_size(512)),
            plan,
        );
        let (pager, plan) = env(512);
        drill(NaiveScheme::new(pager, NaiveConfig { extra_bits: 8 }), plan);
    }

    #[test]
    fn ordinal_schemes_expose_positions() {
        let pager = Pager::new(PagerConfig::with_block_size(1024));
        let mut w = WBoxScheme::new(pager, WBoxConfig::from_block_size(1024).with_ordinal());
        let lids = w.bulk_load_document(&(0..100).map(|i| i ^ 1).collect::<Vec<_>>());
        for (i, &lid) in lids.iter().enumerate().step_by(13) {
            assert_eq!(w.ordinal_of(lid), i as u64);
        }
    }
}
