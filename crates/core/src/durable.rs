//! Crash-consistent environments: a WAL-journaled pager with deterministic
//! crash injection, plus post-recovery scheme reopening.
//!
//! This is the glue between [`boxes_wal`] and the labeling schemes:
//!
//! 1. [`DurableEnv::new`] builds a pager whose every logical operation is
//!    journaled through a [`Wal`], with a shared [`CrashClock`] ticking at
//!    every WAL append, sync barrier, checkpoint rotation and applied block
//!    write (where a hit may also *tear* the in-flight block).
//! 2. The harness runs a workload once disarmed to count crash points, then
//!    re-runs it with the clock armed at each tick; [`DurableEnv::run_to_crash`]
//!    catches the injected [`CrashSignal`] (and only that — real panics
//!    propagate).
//! 3. [`DurableEnv::recover`] replays the durable log over the surviving
//!    disk image, and the `reopen_*` helpers reattach each scheme to its
//!    recovered structure-state meta blob.
//!
//! Operations the schemes journal themselves (their mutators open a
//! [`TxnScope`](boxes_pager::TxnScope) internally). A harness that needs its
//! own committed-operation bookkeeping wraps each call in an *outer* scope
//! and attaches a meta blob; nested scopes fold into the same atomic WAL
//! record:
//!
//! ```ignore
//! let txn = env.pager().txn();
//! scheme.insert_element_before(anchor);
//! env.pager().txn_meta("harness", || encode_progress(i));
//! txn.commit();
//! ```
//!
//! The same pattern aligns the §6 cache layer with recovery: persist the
//! [`ModLog`](boxes_cache::ModLog) clock alongside each committed operation,
//! and resume with [`ModLog::with_clock`](boxes_cache::ModLog::with_clock)
//! after recovery — surviving cached references stamped at the recovered
//! clock still hit, while anything staler correctly falls back to a full
//! lookup (the effect entries died with the process).

use std::sync::Arc;

use boxes_bbox::BBoxConfig;
use boxes_lidf::{Lidf, Record};
use boxes_naive::NaiveConfig;
use boxes_pager::{CrashSignal, Pager, PagerConfig, SharedPager};
use boxes_wal::crashpoint::{ClockFault, CrashClock};
use boxes_wal::{Recovered, Wal, WalConfig, WalError};
use boxes_wbox::WBoxConfig;

use crate::scheme::{BBoxScheme, NaiveScheme, WBoxScheme};

/// A pager + WAL + crash clock bundle: everything a crash-injection harness
/// needs to run one (attempted) workload and recover from its remains.
pub struct DurableEnv {
    pager: SharedPager,
    wal: Arc<Wal>,
    clock: Arc<CrashClock>,
}

impl DurableEnv {
    /// Fresh journaled pager with `block_size` blocks, WAL tuning `config`,
    /// and a crash clock seeded with `seed` (disarmed: counting only).
    pub fn new(block_size: usize, config: WalConfig, seed: u64) -> Self {
        let pager = Pager::new(PagerConfig::with_block_size(block_size));
        let clock = CrashClock::new(seed);
        let wal = Wal::with_crash_clock(block_size, config, clock.clone());
        pager.attach_journal(wal.clone());
        pager.attach_fault_injector(ClockFault::new(clock.clone(), block_size));
        DurableEnv { pager, wal, clock }
    }

    /// The journaled pager; build schemes on it via their `new(pager, …)`
    /// constructors.
    pub fn pager(&self) -> &SharedPager {
        &self.pager
    }

    /// The write-ahead log (stats, durable bytes).
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// The crash clock: run disarmed to count crash points, then `arm` one.
    pub fn clock(&self) -> &Arc<CrashClock> {
        &self.clock
    }

    /// Run `workload`, catching an injected crash. `Some(out)` when it ran
    /// to completion, `None` when the armed crash point fired. Panics that
    /// are *not* the crash signal propagate unchanged — a crash sweep must
    /// never swallow a real bug.
    pub fn run_to_crash<T>(&self, workload: impl FnOnce() -> T) -> Option<T> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(workload)) {
            Ok(out) => Some(out),
            Err(payload) if payload.is::<CrashSignal>() => None,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Recover the committed state from what survives right now: the
    /// durable log bytes plus the crash-consistent disk image.
    pub fn recover(&self) -> Result<Recovered, WalError> {
        boxes_wal::recover(&self.wal.durable_bytes(), self.pager.disk_image())
    }
}

/// Reattach a W-BOX to its recovered state. `None` when the log held no
/// committed W-BOX (nothing durable: start fresh instead).
pub fn reopen_wbox(rec: &Recovered, config: WBoxConfig) -> Option<WBoxScheme> {
    Some(WBoxScheme::reopen(
        rec.pager.clone(),
        config,
        rec.meta("wbox")?,
        rec.meta("lidf")?,
    ))
}

/// Reattach a B-BOX to its recovered state. `None` when the log held no
/// committed B-BOX.
pub fn reopen_bbox(rec: &Recovered, config: BBoxConfig) -> Option<BBoxScheme> {
    Some(BBoxScheme::reopen(
        rec.pager.clone(),
        config,
        rec.meta("bbox")?,
        rec.meta("lidf")?,
    ))
}

/// Reattach a naive-k structure to its recovered state. `None` when the log
/// held no committed naive structure.
pub fn reopen_naive(rec: &Recovered, config: NaiveConfig) -> Option<NaiveScheme> {
    Some(NaiveScheme::reopen(
        rec.pager.clone(),
        config,
        rec.meta("naive")?,
    ))
}

/// Reattach a standalone LIDF to its recovered state. `None` when the log
/// held no committed LIDF.
pub fn reopen_lidf<R: Record>(rec: &Recovered) -> Option<Lidf<R>> {
    Some(Lidf::reopen(rec.pager.clone(), rec.meta("lidf")?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::LabelingScheme;
    use boxes_audit::Auditable;
    use boxes_cache::{CachedRef, Lookup, ModLog};
    use boxes_lidf::Lid;
    use boxes_pager::codec;

    const BS: usize = 256;
    /// W-BOX needs a branching parameter ≥ 6, hence bigger blocks.
    const WBS: usize = 1024;
    const SEED: u64 = 0xB0C5;

    /// Deterministic element-tag document: 2·n tags, partner pairs nested
    /// two levels deep like the scheme tests.
    fn flat_pairs(n: usize) -> Vec<usize> {
        (0..2 * n).map(|i| i ^ 1).collect()
    }

    /// One harness-journaled operation: an outer scope folding the scheme's
    /// nested transaction plus the harness progress meta into one record.
    fn journaled_op<T>(
        pager: &SharedPager,
        op_index: u64,
        modlog_ts: u64,
        op: impl FnOnce() -> T,
    ) -> T {
        let txn = pager.txn();
        let out = op();
        pager.txn_meta("harness", || {
            let mut w = boxes_pager::VecWriter::new();
            w.u64(op_index + 1); // committed op count
            w.u64(modlog_ts);
            w.into_bytes()
        });
        txn.commit();
        out
    }

    fn decode_harness(meta: &[u8]) -> (u64, u64) {
        let mut r = boxes_pager::Reader::new(meta);
        (r.u64(), r.u64())
    }

    /// The committed-prefix oracle: replay the first `ops` operations of the
    /// same deterministic workload on a fresh unjournaled scheme.
    fn wbox_oracle(ops: u64, base: usize) -> (WBoxScheme, Vec<Lid>) {
        let mut s = WBoxScheme::with_block_size(WBS);
        let mut lids = s.bulk_load_document(&flat_pairs(base));
        for i in 0..codec::u64_to_index(ops) {
            let anchor = lids[(i * 7) % lids.len()];
            let (st, en) = s.insert_element_before(anchor);
            lids.push(st);
            lids.push(en);
        }
        (s, lids)
    }

    #[test]
    fn crash_sweep_recovers_committed_prefix_with_label_agreement() {
        const BASE: usize = 12;
        const OPS: u64 = 6;
        let workload = |env: &DurableEnv| {
            let pager = env.pager().clone();
            let mut s = WBoxScheme::new(pager.clone(), WBoxConfig::from_block_size(WBS));
            let mut lids = journaled_op(&pager, 0, 0, || s.bulk_load_document(&flat_pairs(BASE)));
            for i in 1..=OPS {
                let anchor = lids[(codec::u64_to_index(i - 1) * 7) % lids.len()];
                let (st, en) = journaled_op(&pager, i, i, || s.insert_element_before(anchor));
                lids.push(st);
                lids.push(en);
            }
        };
        // Pass 1: count crash points.
        let total_ticks = {
            let env = DurableEnv::new(WBS, WalConfig::default(), SEED);
            workload(&env);
            env.clock().ticks()
        };
        assert!(
            total_ticks > 20,
            "workload too small for a meaningful sweep"
        );
        // Pass 2: crash at a spread of ticks (full sweeps live in xtask).
        for target in (1..=total_ticks).step_by(5) {
            let env = DurableEnv::new(WBS, WalConfig::default(), SEED);
            env.clock().arm(target);
            let outcome = env.run_to_crash(|| workload(&env));
            assert!(outcome.is_none(), "tick {target} must crash");
            let rec = env
                .recover()
                .unwrap_or_else(|e| panic!("tick {target}: {e}"));
            let Some((committed, _)) = rec.meta("harness").map(decode_harness) else {
                assert_eq!(
                    rec.records, 0,
                    "tick {target}: metas only vanish with the log"
                );
                continue; // crashed before the bulk load committed
            };
            let s = reopen_wbox(&rec, WBoxConfig::from_block_size(WBS))
                .unwrap_or_else(|| panic!("tick {target}: wbox meta missing"));
            let report = s.inner().audit();
            assert!(report.is_clean(), "tick {target}: {report}");
            // Label-for-label agreement with the committed-prefix oracle.
            let (oracle, lids) = wbox_oracle(committed - 1, BASE);
            assert_eq!(s.len(), oracle.len(), "tick {target}");
            for &lid in &lids {
                assert_eq!(
                    s.lookup(lid),
                    oracle.lookup(lid),
                    "tick {target}: label of {lid:?} diverges after recovery"
                );
            }
        }
    }

    #[test]
    fn recovered_modlog_clock_alignment() {
        // §6 caches after a crash: the persisted clock lets stale references
        // fall back to full lookups while the freshest one still hits.
        let env = DurableEnv::new(WBS, WalConfig::default(), SEED);
        let pager = env.pager().clone();
        let mut cached = crate::cached::CachedWBox::new(
            boxes_wbox::WBox::new(pager.clone(), WBoxConfig::from_block_size(WBS)),
            8,
        );
        let lids = journaled_op(&pager, 0, 0, || cached.wbox.bulk_load(40));
        let mut stale_ref = CachedRef::new();
        let stale_label = cached.lookup(lids[30], &mut stale_ref);
        for i in 1..=4u64 {
            let anchor = lids[codec::u64_to_index(i) * 3];
            let ts_after = cached.log.last_modified() + 1;
            journaled_op(&pager, i, ts_after, || cached.insert_before(anchor));
            assert_eq!(cached.log.last_modified(), ts_after);
        }
        let mut fresh_ref = CachedRef::new();
        let fresh_label = cached.lookup(lids[30], &mut fresh_ref);
        assert!(fresh_label > stale_label, "inserts shifted the label");

        // "Crash" (no arming needed — just abandon the in-memory state) and
        // recover; resume the mod-log at the committed clock.
        let rec = env.recover().expect("recover");
        let (committed, modlog_ts) = decode_harness(rec.meta("harness").expect("harness meta"));
        assert_eq!(committed, 5);
        let s = reopen_wbox(&rec, WBoxConfig::from_block_size(WBS)).expect("wbox meta");
        let mut resumed = crate::cached::CachedWBox::new(s.into_inner(), 8);
        resumed.log = ModLog::with_clock(8, modlog_ts);

        // The stale reference (stamped before the last committed op) must
        // not trust its cache: the effect entries died with the process.
        let wbox = &resumed.wbox;
        let got = stale_ref.resolve(&resumed.log, || wbox.lookup(lids[30]));
        assert_eq!(got, Lookup::Full(fresh_label));
        // The freshest reference is stamped exactly at the recovered clock:
        // its cached value is committed state and may be served directly.
        assert_eq!(
            fresh_ref.resolve(&resumed.log, || unreachable!()),
            Lookup::Hit(fresh_label)
        );
        let report = resumed.audit();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn all_schemes_reopen_from_recovery() {
        // B-BOX, naive and standalone LIDF through the same door.
        let env = DurableEnv::new(BS, WalConfig::default(), SEED ^ 1);
        let pager = env.pager().clone();
        let mut b = BBoxScheme::new(pager.clone(), BBoxConfig::from_block_size(BS));
        let mut n = NaiveScheme::new(pager.clone(), NaiveConfig { extra_bits: 8 });
        let b_lids = b.bulk_load_document(&flat_pairs(10));
        let n_lids = n.bulk_load_document(&flat_pairs(10));
        b.insert_element_before(b_lids[7]);
        n.insert_element_before(n_lids[7]);
        let rec = env.recover().expect("recover");
        let rb = reopen_bbox(&rec, BBoxConfig::from_block_size(BS)).expect("bbox meta");
        let rn = reopen_naive(&rec, NaiveConfig { extra_bits: 8 }).expect("naive meta");
        let rl: Lidf<boxes_lidf::BlockPtrRecord> = reopen_lidf(&rec).expect("lidf meta");
        assert_eq!(rb.len(), 22);
        assert_eq!(rn.len(), 22);
        assert!(rb.inner().audit().is_clean());
        assert!(rl.audit().is_clean());
        for &lid in &b_lids {
            assert_eq!(rb.lookup(lid), b.lookup(lid));
        }
        for &lid in &n_lids {
            assert_eq!(rn.lookup(lid), n.lookup(lid));
        }
    }

    #[test]
    fn real_panics_propagate_through_run_to_crash() {
        let env = DurableEnv::new(BS, WalConfig::default(), SEED);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            env.run_to_crash(|| panic!("actual bug"))
        }));
        assert!(outcome.is_err(), "non-crash panics must not be swallowed");
    }
}
