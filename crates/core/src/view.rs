//! Read-only view over a labeling scheme — the query surface a
//! `boxes-session` snapshot exposes.
//!
//! [`LabelView`] is the `&self` subset of [`LabelingScheme`]: lookups, order
//! tests, and containment tests, but no mutation. Every scheme implements it
//! for free through the blanket impl, so a W-BOX/B-BOX/naive structure
//! reopened over a snapshot pager can be handed to query code that is
//! type-incapable of mutating it — the session layer's compile-time
//! analog of the pager's runtime "snapshot views are read-only" guard.

use crate::scheme::LabelingScheme;
use boxes_lidf::Lid;
use boxes_pager::PagerError;
use std::cmp::Ordering;

/// Read-only order-based label queries (§2's query model: document order
/// and ancestor/containment tests via two label comparisons).
pub trait LabelView {
    /// The label value type; ordering agrees with document order.
    type Label: Ord + Clone + std::fmt::Debug;

    /// Short scheme name for reports (e.g. `"W-BOX"`).
    fn name(&self) -> String;

    /// Current label of `lid`.
    fn lookup(&self, lid: Lid) -> Self::Label;

    /// Fallible [`LabelView::lookup`]: a disk fault that survives retry and
    /// read-repair comes back as a typed error, never a wrong label.
    fn try_lookup(&self, lid: Lid) -> Result<Self::Label, PagerError> {
        PagerError::catch(|| self.lookup(lid))
    }

    /// Document order of the tags labeled `a` and `b`.
    fn order(&self, a: Lid, b: Lid) -> Ordering {
        self.lookup(a).cmp(&self.lookup(b))
    }

    /// Whether the tag labeled `x` falls strictly between the tags labeled
    /// `start` and `end` — the containment test behind ancestor queries.
    fn contains(&self, start: Lid, end: Lid, x: Lid) -> bool {
        let xl = self.lookup(x);
        self.lookup(start) < xl && xl < self.lookup(end)
    }

    /// Number of live labels.
    fn len(&self) -> u64;

    /// Whether no labels are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bits required per label right now (the paper's label-length metric).
    fn label_bits(&self) -> u32;
}

impl<S: LabelingScheme> LabelView for S {
    type Label = S::Label;

    fn name(&self) -> String {
        LabelingScheme::name(self)
    }

    fn lookup(&self, lid: Lid) -> Self::Label {
        LabelingScheme::lookup(self, lid)
    }

    fn try_lookup(&self, lid: Lid) -> Result<Self::Label, PagerError> {
        LabelingScheme::try_lookup(self, lid)
    }

    fn len(&self) -> u64 {
        LabelingScheme::len(self)
    }

    fn is_empty(&self) -> bool {
        LabelingScheme::is_empty(self)
    }

    fn label_bits(&self) -> u32 {
        LabelingScheme::label_bits(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::WBoxScheme;

    fn view_only(v: &dyn LabelView<Label = u64>, lids: &[Lid]) -> Vec<u64> {
        lids.iter().map(|&l| v.lookup(l)).collect()
    }

    #[test]
    fn blanket_impl_answers_order_and_containment() {
        let mut scheme = WBoxScheme::with_block_size(512);
        let lids = scheme.bulk_load_document(&[2, 3, 1, 0]); // two elements
        let labels = view_only(&scheme, &lids);
        assert!(labels.windows(2).all(|w| w[0] < w[1]), "document order");
        assert_eq!(LabelView::order(&scheme, lids[0], lids[3]), Ordering::Less);
        assert!(
            LabelView::contains(&scheme, lids[0], lids[3], lids[1]),
            "inner tag sits between the outer element's tags"
        );
        assert!(!LabelView::contains(&scheme, lids[1], lids[2], lids[0]));
        assert_eq!(LabelView::len(&scheme), 4);
        assert!(!LabelView::is_empty(&scheme));
        assert!(LabelView::label_bits(&scheme) > 0);
    }
}
