#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # BOXes — order-based labeling for dynamic XML data
//!
//! A production-quality Rust reproduction of
//! *Silberstein, He, Yi, Yang: "BOXes: Efficient Maintenance of Order-Based
//! Labeling for Dynamic XML Data" (ICDE 2005)*.
//!
//! Order-based labels let XML query processors decide ancestor/descendant
//! relationships with two integer comparisons. Keeping those labels valid
//! under arbitrary insertions and deletions is the hard part; this workspace
//! provides the paper's two I/O-efficient structures plus everything around
//! them:
//!
//! | Structure | Lookup | Update (amortized) | Crate |
//! |-----------|--------|--------------------|-------|
//! | W-BOX (weight-balanced B-tree) | O(1) | O(log_B N) | [`boxes_wbox`] |
//! | B-BOX (back-linked keyless B-tree) | O(log_B N) | O(1) | [`boxes_bbox`] |
//! | naive-k gap labeling (baseline) | O(1) | Θ(N/B) adversarial | [`boxes_naive`] |
//!
//! plus the immutable-label-ID file ([`boxes_lidf`]), the simulated block
//! device with I/O accounting ([`boxes_pager`]), the §6 caching/logging
//! layer ([`boxes_cache`]), and XML documents/workloads ([`boxes_xml`]).
//!
//! This crate ties them together:
//!
//! * [`LabelingScheme`] — one interface over all three schemes;
//! * [`DocumentDriver`] — replays [`boxes_xml::workload::UpdateStream`]s
//!   against any scheme, recording per-operation I/O;
//! * [`ElementLabeler`] — element-centric API (labels, ancestor tests,
//!   containment joins) over a live XML tree;
//! * [`cached`] — §6 wiring: cached references with modification logs for
//!   each scheme.
//!
//! ## Quickstart
//!
//! ```
//! use boxes_core::{DocumentDriver, LabelingScheme, WBoxScheme};
//! use boxes_xml::generate::two_level;
//! use boxes_xml::workload::scattered;
//!
//! let stream = scattered(1_000, 100);
//! let scheme = WBoxScheme::with_block_size(1024);
//! let mut driver = DocumentDriver::load(scheme, &stream.base);
//! let costs = driver.replay(&stream.ops);
//! assert_eq!(costs.len(), 100);
//! driver.verify_document_order(); // labels sorted = document order
//! let _ = two_level(4);
//! ```

/// §6 cached label wrappers (mod-log replay over checkpointed anchors).
pub mod cached;
/// Document driver: replays update streams against a labeling scheme.
pub mod driver;
/// WAL-journaled environments, crash injection, and scheme reopening.
pub mod durable;
/// Reusable corruption primitives (byte flips, torn slots, dangling LIDF
/// pointers) for robustness tests and the chaos sweep.
pub mod faultlib;
mod faults;
/// End-to-end labeler facade combining a scheme with a document tree.
pub mod labeler;
/// Seeded logical-tick scheduler for deterministic interleaving tests
/// (the latch-interleave rig's replay engine).
pub mod sched;
/// The `LabelingScheme`/`OrdinalScheme` trait surface and adapters.
pub mod scheme;
/// Read-only label-query views (`LabelView`) over any scheme.
pub mod view;

pub use cached::{CachedBBox, CachedOrdinal, CachedWBox};
pub use driver::DocumentDriver;
pub use durable::{reopen_bbox, reopen_lidf, reopen_naive, reopen_wbox, DurableEnv};
pub use labeler::ElementLabeler;
pub use scheme::{BBoxScheme, LabelingScheme, NaiveScheme, OrdinalScheme, WBoxScheme};
pub use view::LabelView;

// Re-export the whole workspace under one roof.
pub use boxes_bbox as bbox;
pub use boxes_cache as cache;
pub use boxes_lidf as lidf;
pub use boxes_naive as naive;
pub use boxes_pager as pager;
pub use boxes_wal as wal;
pub use boxes_wbox as wbox;
pub use boxes_xml as xml;
