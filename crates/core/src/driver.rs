//! Replaying XML update streams against a labeling scheme.

use crate::scheme::LabelingScheme;
use boxes_lidf::Lid;
use boxes_pager::IoStats;
use boxes_xml::tags::{tag_sequence, TagKind};
use boxes_xml::tree::XmlTree;
use boxes_xml::workload::{Anchor, ElemRef, Op};

/// Map a document's tag sequence to the `partner_of` form the schemes
/// consume: `partner_of[i]` is the index of tag i's element's other tag.
pub fn partner_map(tree: &XmlTree) -> Vec<usize> {
    let seq = tag_sequence(tree);
    let mut start_at = std::collections::HashMap::new();
    let mut partner = vec![0usize; seq.len()];
    for (i, tag) in seq.iter().enumerate() {
        match tag.kind {
            TagKind::Start => {
                start_at.insert(tag.element, i);
            }
            TagKind::End => {
                let s = start_at[&tag.element];
                partner[s] = i;
                partner[i] = s;
            }
        }
    }
    partner
}

/// Per-element LID table for a replayed stream: element `ElemRef(i)` maps
/// to its (start, end) LIDs; deleted elements become `None`.
type ElemTable = Vec<Option<(Lid, Lid)>>;

/// Drives an [`boxes_xml::workload::UpdateStream`] against any scheme,
/// recording per-operation I/O — the measurement loop behind every figure
/// in §7.
pub struct DocumentDriver<S: LabelingScheme> {
    /// The scheme under test.
    pub scheme: S,
    elems: ElemTable,
}

impl<S: LabelingScheme> DocumentDriver<S> {
    /// Bulk-load `base` into a fresh scheme.
    pub fn load(mut scheme: S, base: &XmlTree) -> Self {
        let partner = partner_map(base);
        let lids = scheme.bulk_load_document(&partner);
        let seq = tag_sequence(base);
        // Elements are numbered in document order of start tags.
        let order = base.document_order();
        let index_of: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        let mut elems: ElemTable = vec![None; order.len()];
        let mut starts = vec![Lid::INVALID; order.len()];
        for (i, tag) in seq.iter().enumerate() {
            let e = index_of[&tag.element];
            match tag.kind {
                TagKind::Start => starts[e] = lids[i],
                TagKind::End => elems[e] = Some((starts[e], lids[i])),
            }
        }
        DocumentDriver { scheme, elems }
    }

    /// LIDs of an element.
    pub fn element(&self, r: ElemRef) -> (Lid, Lid) {
        self.elems[r.0].expect("element was deleted")
    }

    /// Number of known (live or deleted) element slots.
    pub fn element_count(&self) -> usize {
        self.elems.len()
    }

    fn anchor_lid(&self, anchor: Anchor) -> Lid {
        match anchor {
            Anchor::BeforeStart(r) => self.element(r).0,
            Anchor::BeforeEnd(r) => self.element(r).1,
        }
    }

    /// Apply one operation.
    pub fn apply(&mut self, op: &Op) {
        match op {
            Op::InsertElement { anchor } => {
                let lid = self.anchor_lid(*anchor);
                let pair = self.scheme.insert_element_before(lid);
                self.elems.push(Some(pair));
            }
            Op::DeleteElement { elem } => {
                let (s, e) = self.element(*elem);
                self.scheme.delete(s);
                self.scheme.delete(e);
                self.elems[elem.0] = None;
            }
            Op::InsertSubtree { anchor, tree } => {
                let lid = self.anchor_lid(*anchor);
                let partner = partner_map(tree);
                let lids = self.scheme.insert_subtree_before(lid, &partner);
                // Register the new elements in document order of the
                // subtree's start tags.
                let seq = tag_sequence(tree);
                let order = tree.document_order();
                let index_of: std::collections::HashMap<_, _> =
                    order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
                let base = self.elems.len();
                self.elems.extend(std::iter::repeat_n(None, order.len()));
                let mut starts = vec![Lid::INVALID; order.len()];
                for (i, tag) in seq.iter().enumerate() {
                    let e = index_of[&tag.element];
                    match tag.kind {
                        TagKind::Start => starts[e] = lids[i],
                        TagKind::End => self.elems[base + e] = Some((starts[e], lids[i])),
                    }
                }
            }
            Op::DeleteSubtree { elem, removed } => {
                let (s, e) = self.element(*elem);
                self.scheme.delete_subtree(s, e);
                for r in removed {
                    self.elems[r.0] = None;
                }
                self.elems[elem.0] = None;
            }
        }
    }

    /// Apply a sequence of ops, returning each op's I/O cost.
    pub fn replay(&mut self, ops: &[Op]) -> Vec<u64> {
        let pager = self.scheme.pager().clone();
        ops.iter()
            .map(|op| {
                let before = pager.stats();
                self.apply(op);
                pager.stats().since(&before).total()
            })
            .collect()
    }

    /// Apply a sequence of ops, returning only the aggregate I/O.
    #[must_use]
    pub fn replay_total(&mut self, ops: &[Op]) -> IoStats {
        let pager = self.scheme.pager().clone();
        let before = pager.stats();
        for op in ops {
            self.apply(op);
        }
        pager.stats().since(&before)
    }

    /// Assert that label order equals document order for every live
    /// element (the oracle used by the integration tests).
    pub fn verify_document_order(&self) {
        let mut labels: Vec<(S::Label, Lid)> = Vec::new();
        for pair in self.elems.iter().flatten() {
            labels.push((self.scheme.lookup(pair.0), pair.0));
            labels.push((self.scheme.lookup(pair.1), pair.1));
        }
        let mut sorted = labels.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        // Labels must be unique...
        for w in sorted.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate labels: {:?}", w[0].0);
        }
        // ...and nesting must be proper: start < end for each element, and
        // element intervals either nest or are disjoint.
        for pair in self.elems.iter().flatten() {
            let s = self.scheme.lookup(pair.0);
            let e = self.scheme.lookup(pair.1);
            assert!(s < e, "start/end inverted for {pair:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{BBoxScheme, NaiveScheme, WBoxScheme};
    use boxes_xml::generate::xmark;
    use boxes_xml::workload::{
        concentrated, concentrated_bulk, insert_delete_churn_with_prefill, scattered,
    };

    #[test]
    fn partner_map_is_involution() {
        let doc = xmark(300, 5);
        let p = partner_map(&doc);
        assert_eq!(p.len(), 2 * doc.len());
        for (i, &j) in p.iter().enumerate() {
            assert_eq!(p[j], i);
            assert_ne!(i, j);
        }
    }

    fn drive<S: LabelingScheme>(scheme: S) {
        let stream = concentrated(200, 60);
        let mut driver = DocumentDriver::load(scheme, &stream.base);
        let costs = driver.replay(&stream.ops);
        assert_eq!(costs.len(), 60);
        assert!(costs.iter().all(|&c| c > 0), "every op costs I/O");
        driver.verify_document_order();
    }

    #[test]
    fn concentrated_stream_on_all_schemes() {
        drive(WBoxScheme::with_block_size(1024));
        drive(BBoxScheme::with_block_size(256));
        drive(NaiveScheme::with_block_size(256, 6));
    }

    #[test]
    fn scattered_stream_keeps_order() {
        let stream = scattered(500, 80);
        let mut driver = DocumentDriver::load(BBoxScheme::with_block_size(256), &stream.base);
        driver.replay(&stream.ops);
        driver.verify_document_order();
    }

    #[test]
    fn churn_stream_with_deletes() {
        let stream = insert_delete_churn_with_prefill(100, 50, 40);
        let mut driver = DocumentDriver::load(WBoxScheme::with_block_size(1024), &stream.base);
        driver.replay(&stream.ops);
        assert_eq!(driver.scheme.len(), 2 * (101 + 40));
        driver.verify_document_order();
    }

    #[test]
    fn bulk_subtree_stream() {
        let stream = concentrated_bulk(400, 150);
        let mut driver = DocumentDriver::load(BBoxScheme::with_block_size(256), &stream.base);
        let total = driver.replay_total(&stream.ops);
        assert!(total.total() > 0);
        assert_eq!(driver.scheme.len(), 2 * (401 + 150));
        driver.verify_document_order();
    }

    #[test]
    fn bulk_insert_beats_element_at_a_time() {
        let single = concentrated(400, 150);
        let mut d1 = DocumentDriver::load(WBoxScheme::with_block_size(1024), &single.base);
        let cost_single: u64 = d1.replay(&single.ops).iter().sum();

        let bulk = concentrated_bulk(400, 150);
        let mut d2 = DocumentDriver::load(WBoxScheme::with_block_size(1024), &bulk.base);
        let cost_bulk = d2.replay_total(&bulk.ops).total();
        assert!(
            cost_bulk * 2 < cost_single,
            "bulk {cost_bulk} vs single {cost_single}"
        );
        assert_eq!(d1.scheme.len(), d2.scheme.len());
    }

    #[test]
    fn xmark_document_order_stream() {
        let doc = xmark(2_000, 9);
        let stream = boxes_xml::workload::document_order(&doc, 500);
        let mut driver = DocumentDriver::load(WBoxScheme::with_block_size(1024), &stream.base);
        let costs = driver.replay(&stream.ops);
        assert_eq!(costs.len(), doc.len() - 1);
        driver.verify_document_order();
        assert_eq!(driver.scheme.len(), 2 * doc.len() as u64);
    }
}
