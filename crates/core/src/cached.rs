//! §6 wiring: cached references with modification logs for each scheme.
//!
//! Each wrapper owns the structure plus a [`ModLog`] of the last k
//! modifications, phrased in the §6 effect algebra for that structure's
//! labels. Query sites hold [`CachedRef`]s; resolving one through the
//! wrapper either hits the cache, replays the missed effects (no I/O), or
//! falls back to the structure's full lookup.
//!
//! The k-entry log gives "roughly a k-fold boost in the effectiveness of
//! caching"; `invalidated` entries (multi-leaf reorganizations) are rare —
//! "on average only one in Θ(B) updates affects more than one leaf".

use boxes_audit::{AuditReport, Auditable, Violation, ViolationKind};
use boxes_bbox::{BBox, BBoxChange};
use boxes_cache::{
    CacheStats, CachedRef, Effect, FlatEffect, ModLog, OrdinalEffect, PathEffect, Timestamp,
};
use boxes_lidf::Lid;
use boxes_wbox::WBox;

use crate::scheme::OrdinalScheme;

/// A replay anchor set: labels snapshotted at a log timestamp, against which
/// [`Auditable::audit`] later checks that log replay reproduces the eager
/// structure's answers (§6 equivalence).
type Checkpoint<L> = Option<(Timestamp, Vec<(Lid, L)>)>;

/// Log-structure audit shared by all three wrappers: entry timestamps must
/// be strictly increasing (FIFO order) and never run ahead of the clock.
fn audit_log_order<E>(log: &ModLog<E>, path: &str, report: &mut AuditReport) {
    let mut prev: Option<Timestamp> = None;
    for ts in log.timestamps() {
        if let Some(p) = prev {
            if ts <= p {
                report.push(
                    Violation::new(ViolationKind::LogOrder, path)
                        .expected(format!("timestamp > {p} (strictly increasing FIFO)"))
                        .actual(ts),
                );
            }
        }
        if ts > log.last_modified() {
            report.push(
                Violation::new(ViolationKind::LogOrder, path)
                    .expected(format!("timestamp ≤ clock {}", log.last_modified()))
                    .actual(ts),
            );
        }
        prev = Some(ts);
    }
}

/// §6 replay-equivalence audit: replay every checkpointed label through the
/// effects logged since the snapshot; wherever the replay produces a value
/// (no invalidation hit it), that value must equal the eager lookup. Dead
/// anchors and snapshots older than the log's horizon are skipped.
fn audit_replay<L, E>(
    checkpoint: &Checkpoint<L>,
    log: &ModLog<E>,
    is_live: impl Fn(Lid) -> bool,
    eager: impl Fn(Lid) -> L,
    path: &str,
    report: &mut AuditReport,
) where
    L: Clone + PartialEq + std::fmt::Debug,
    E: Effect<L>,
{
    let Some((stamp, anchors)) = checkpoint else {
        return;
    };
    if !log.covers(*stamp) {
        return;
    }
    for (lid, old) in anchors {
        if !is_live(*lid) {
            continue;
        }
        let mut current = Some(old.clone());
        for effect in log.since(*stamp) {
            current = current.and_then(|v| effect.apply(&v));
            if current.is_none() {
                break;
            }
        }
        let Some(replayed) = current else {
            continue; // invalidated: the cache would fall back to a lookup
        };
        let truth = eager(*lid);
        if replayed != truth {
            report.push(
                Violation::new(ViolationKind::ReplayDivergence, format!("{path}/{lid:?}"))
                    .expected(format!("{truth:?} (eager lookup)"))
                    .actual(format!("{replayed:?} (log replay)")),
            );
        }
    }
}

/// W-BOX (non-ordinal labels) with a §6 modification log.
pub struct CachedWBox {
    /// The underlying W-BOX.
    pub wbox: WBox,
    /// FIFO log of the last k effects.
    pub log: ModLog<FlatEffect>,
    /// Hit/replay/full counters.
    pub stats: CacheStats,
    checkpoint: Checkpoint<u64>,
}

impl CachedWBox {
    /// Wrap a W-BOX with a k-entry log. The W-BOX must use non-ordinal
    /// labels with the (default) leaf-ordinal rule — which is what §6's
    /// `[l, l_max]: ±1` entries describe.
    pub fn new(wbox: WBox, k: usize) -> Self {
        CachedWBox {
            wbox,
            log: ModLog::new(k),
            stats: CacheStats::default(),
            checkpoint: None,
        }
    }

    /// Snapshot the current labels of `lids` together with the log clock.
    /// A later [`Auditable::audit`] replays each snapshot through the
    /// effects logged since and checks the result against the eager lookup.
    pub fn checkpoint(&mut self, lids: &[Lid]) {
        let stamp = self.log.last_modified();
        let anchors = lids.iter().map(|&l| (l, self.wbox.lookup(l))).collect();
        self.checkpoint = Some((stamp, anchors));
    }

    /// Resolve a label through a cached reference.
    pub fn lookup(&mut self, lid: Lid, cache: &mut CachedRef<u64>) -> u64 {
        let wbox = &self.wbox;
        let result = cache.resolve(&self.log, || wbox.lookup(lid));
        self.stats.note(&result);
        result.value()
    }

    /// Insert a new label before `lid`, logging its effect.
    pub fn insert_before(&mut self, lid: Lid) -> Lid {
        let (l, l_max) = self.wbox.leaf_extent(lid);
        let _ = self.wbox.take_relabel_range(); // clear stale state
        let new = self.wbox.insert_before(lid);
        match self.wbox.take_relabel_range() {
            None => {
                // Single-leaf update: `[l, l_max]: +1`.
                self.log.record(FlatEffect::Shift {
                    lo: l,
                    hi: l_max,
                    delta: 1,
                });
            }
            Some((lo, hi)) => {
                // Multi-leaf reorganization: the affected range (including
                // the anchor leaf's pre-update labels) is invalidated.
                self.log.record(FlatEffect::Invalidate {
                    lo: lo.min(l),
                    hi: hi.max(l_max),
                });
            }
        }
        new
    }

    /// Insert an element (two labels) before `lid`, logging both effects.
    pub fn insert_element_before(&mut self, lid: Lid) -> (Lid, Lid) {
        let end = self.insert_before(lid);
        let start = self.insert_before(end);
        (start, end)
    }

    /// Delete the label of `lid`, logging `[l, l_max]: −1`.
    pub fn delete(&mut self, lid: Lid) {
        if let Some((_, anchors)) = &mut self.checkpoint {
            anchors.retain(|(l, _)| *l != lid);
        }
        let (l, l_max) = self.wbox.leaf_extent(lid);
        let _ = self.wbox.take_relabel_range();
        self.wbox.delete(lid);
        match self.wbox.take_relabel_range() {
            None => {
                self.log.record(FlatEffect::Shift {
                    lo: l,
                    hi: l_max,
                    delta: -1,
                });
            }
            Some((lo, hi)) => {
                self.log.record(FlatEffect::Invalidate {
                    lo: lo.min(l),
                    hi: hi.max(l_max),
                });
            }
        }
    }
}

impl Auditable for CachedWBox {
    /// Audit the wrapped W-BOX plus the §6 layer: log FIFO order and
    /// replay-equivalence against the last [`CachedWBox::checkpoint`].
    fn audit(&self) -> AuditReport {
        let mut report = self.wbox.audit();
        audit_log_order(&self.log, "cached-wbox/log", &mut report);
        audit_replay(
            &self.checkpoint,
            &self.log,
            |l| self.wbox.is_live(l),
            |l| self.wbox.lookup(l),
            "cached-wbox/replay",
            &mut report,
        );
        report
    }
}

/// B-BOX (non-ordinal, multi-component labels) with a §6 modification log.
pub struct CachedBBox {
    /// The underlying B-BOX.
    pub bbox: BBox,
    /// FIFO log of the last k effects.
    pub log: ModLog<PathEffect>,
    /// Hit/replay/full counters.
    pub stats: CacheStats,
    checkpoint: Checkpoint<Vec<u32>>,
}

impl CachedBBox {
    /// Wrap a B-BOX with a k-entry log.
    pub fn new(bbox: BBox, k: usize) -> Self {
        CachedBBox {
            bbox,
            log: ModLog::new(k),
            stats: CacheStats::default(),
            checkpoint: None,
        }
    }

    /// Snapshot the current labels of `lids` together with the log clock
    /// (see [`CachedWBox::checkpoint`]).
    pub fn checkpoint(&mut self, lids: &[Lid]) {
        let stamp = self.log.last_modified();
        let anchors = lids.iter().map(|&l| (l, self.bbox.lookup(l).0)).collect();
        self.checkpoint = Some((stamp, anchors));
    }

    /// Resolve a label (as its component vector) through a cached
    /// reference.
    pub fn lookup(&mut self, lid: Lid, cache: &mut CachedRef<Vec<u32>>) -> Vec<u32> {
        let bbox = &self.bbox;
        let result = cache.resolve(&self.log, || bbox.lookup(lid).0);
        self.stats.note(&result);
        result.value()
    }

    fn log_changes(&mut self, changes: Vec<BBoxChange>) {
        for change in changes {
            let effect = match change {
                BBoxChange::ChildrenFrom { prefix, j } => PathEffect::InvalidateFrom { prefix, j },
                BBoxChange::Boundary { prefix, j } => PathEffect::InvalidateBoundary { prefix, j },
            };
            self.log.record(effect);
        }
    }

    /// Insert a new label before `lid`, logging its effect.
    pub fn insert_before(&mut self, lid: Lid) -> Lid {
        let (label, count) = self.bbox.leaf_extent(lid);
        let mut prefix = label.0;
        let pos = prefix.pop().expect("labels have at least one component");
        let _ = self.bbox.take_changes();
        let new = self.bbox.insert_before(lid);
        let changes = self.bbox.take_changes();
        if changes.is_empty() {
            // Single-leaf update: shift the last component of the leaf's
            // suffix.
            self.log.record(PathEffect::ShiftLast {
                prefix,
                from_last: pos,
                hi_last: count - 1,
                delta: 1,
            });
        } else {
            self.log_changes(changes);
        }
        new
    }

    /// Insert an element (two labels) before `lid`, logging both effects.
    pub fn insert_element_before(&mut self, lid: Lid) -> (Lid, Lid) {
        let end = self.insert_before(lid);
        let start = self.insert_before(end);
        (start, end)
    }

    /// Delete the label of `lid`, logging its effect.
    pub fn delete(&mut self, lid: Lid) {
        if let Some((_, anchors)) = &mut self.checkpoint {
            anchors.retain(|(l, _)| *l != lid);
        }
        let (label, count) = self.bbox.leaf_extent(lid);
        let mut prefix = label.0;
        let pos = prefix.pop().expect("labels have at least one component");
        let _ = self.bbox.take_changes();
        self.bbox.delete(lid);
        let changes = self.bbox.take_changes();
        if changes.is_empty() {
            self.log.record(PathEffect::ShiftLast {
                prefix,
                from_last: pos,
                hi_last: count - 1,
                delta: -1,
            });
        } else {
            self.log_changes(changes);
        }
    }
}

impl Auditable for CachedBBox {
    /// Audit the wrapped B-BOX plus the §6 layer: log FIFO order and
    /// replay-equivalence against the last [`CachedBBox::checkpoint`].
    fn audit(&self) -> AuditReport {
        let mut report = self.bbox.audit();
        audit_log_order(&self.log, "cached-bbox/log", &mut report);
        audit_replay(
            &self.checkpoint,
            &self.log,
            |l| self.bbox.is_live(l),
            |l| self.bbox.lookup(l).0,
            "cached-bbox/replay",
            &mut report,
        );
        report
    }
}

/// Any ordinal-capable scheme with a §6 modification log over **ordinal**
/// labels — the simplest effect algebra: `[l, ∞): ±1`, never invalidated.
pub struct CachedOrdinal<S: OrdinalScheme> {
    /// The underlying scheme (must be configured with ordinal support).
    pub scheme: S,
    /// FIFO log of the last k effects.
    pub log: ModLog<OrdinalEffect>,
    /// Hit/replay/full counters.
    pub stats: CacheStats,
    checkpoint: Checkpoint<u64>,
}

impl<S: OrdinalScheme> CachedOrdinal<S> {
    /// Wrap an ordinal-capable scheme with a k-entry log.
    pub fn new(scheme: S, k: usize) -> Self {
        CachedOrdinal {
            scheme,
            log: ModLog::new(k),
            stats: CacheStats::default(),
            checkpoint: None,
        }
    }

    /// Snapshot the current ordinals of `lids` together with the log clock
    /// (see [`CachedWBox::checkpoint`]).
    pub fn checkpoint(&mut self, lids: &[Lid]) {
        let stamp = self.log.last_modified();
        let anchors = lids
            .iter()
            .map(|&l| (l, self.scheme.ordinal_of(l)))
            .collect();
        self.checkpoint = Some((stamp, anchors));
    }

    /// Resolve an ordinal label through a cached reference.
    pub fn ordinal_of(&mut self, lid: Lid, cache: &mut CachedRef<u64>) -> u64 {
        let scheme = &self.scheme;
        let result = cache.resolve(&self.log, || scheme.ordinal_of(lid));
        self.stats.note(&result);
        result.value()
    }

    /// Insert a new label before `lid`, logging `[l, ∞): +1`.
    pub fn insert_before(&mut self, lid: Lid) -> Lid {
        let l = self.scheme.ordinal_of(lid);
        let new = self.scheme.insert_before(lid);
        self.log.record(OrdinalEffect::shift(l, 1));
        new
    }

    /// Insert an element before `lid`, logging `[l, ∞): +2` as two steps.
    pub fn insert_element_before(&mut self, lid: Lid) -> (Lid, Lid) {
        let end = self.insert_before(lid);
        let start = self.insert_before(end);
        (start, end)
    }

    /// Delete the label of `lid`, logging `[l, ∞): −1`.
    pub fn delete(&mut self, lid: Lid) {
        if let Some((_, anchors)) = &mut self.checkpoint {
            anchors.retain(|(l, _)| *l != lid);
        }
        let l = self.scheme.ordinal_of(lid);
        self.scheme.delete(lid);
        self.log.record(OrdinalEffect::shift(l, -1));
    }

    /// Lookup I/O-avoidance rate so far.
    pub fn avoidance_rate(&self) -> f64 {
        self.stats.avoidance_rate()
    }
}

impl<S: OrdinalScheme + Auditable> Auditable for CachedOrdinal<S> {
    /// Audit the wrapped scheme plus the §6 layer: log FIFO order and
    /// replay-equivalence against the last [`CachedOrdinal::checkpoint`].
    fn audit(&self) -> AuditReport {
        let mut report = self.scheme.audit();
        audit_log_order(&self.log, "cached-ordinal/log", &mut report);
        audit_replay(
            &self.checkpoint,
            &self.log,
            |l| self.scheme.is_live(l),
            |l| self.scheme.ordinal_of(l),
            "cached-ordinal/replay",
            &mut report,
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{LabelingScheme, WBoxScheme};
    use boxes_bbox::BBoxConfig;
    use boxes_pager::{Pager, PagerConfig};
    use boxes_wbox::WBoxConfig;

    fn wbox() -> WBox {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        WBox::new(pager, WBoxConfig::small_for_tests())
    }

    fn bbox() -> BBox {
        let pager = Pager::new(PagerConfig::with_block_size(256));
        BBox::new(pager, BBoxConfig::from_block_size(256))
    }

    #[test]
    fn wbox_cached_lookup_replays_single_leaf_inserts() {
        let mut w = wbox();
        let lids = w.bulk_load(1_000);
        let mut cached = CachedWBox::new(w, 16);
        let probe = lids[500];
        // Bulk-loaded leaves are full, so the very first insert splits;
        // do it before warming the cache.
        cached.insert_before(probe);
        let mut r = CachedRef::new();
        let first = cached.lookup(probe, &mut r);
        // Insert right before the probe: the cached label must replay.
        cached.insert_before(probe);
        let pager = cached.wbox.pager().clone();
        let before = pager.stats();
        let second = cached.lookup(probe, &mut r);
        assert_eq!(pager.stats().since(&before).total(), 0, "no I/O");
        assert_eq!(second, first + 1, "replayed the +1 shift");
        assert_eq!(second, cached.wbox.lookup(probe), "agrees with truth");
        assert_eq!(cached.stats.replays, 1);
    }

    #[test]
    fn wbox_cached_lookup_survives_splits_via_invalidation() {
        let mut w = wbox();
        let lids = w.bulk_load(1_000);
        let mut cached = CachedWBox::new(w, 64);
        let probe = lids[500];
        let mut r = CachedRef::new();
        cached.lookup(probe, &mut r);
        // Hammer the probe's neighborhood until splits occur.
        for _ in 0..40 {
            cached.insert_before(probe);
        }
        let value = cached.lookup(probe, &mut r);
        assert_eq!(value, cached.wbox.lookup(probe));
        assert!(cached.stats.full >= 1, "splits forced full lookups");
        cached.wbox.validate();
    }

    #[test]
    fn wbox_distant_references_replay_through_updates() {
        let mut w = wbox();
        let lids = w.bulk_load(2_000);
        let mut cached = CachedWBox::new(w, 32);
        let far = lids[1_900];
        let mut r = CachedRef::new();
        let v0 = cached.lookup(far, &mut r);
        for _ in 0..20 {
            cached.insert_before(lids[100]);
        }
        let pager = cached.wbox.pager().clone();
        let before = pager.stats();
        let v1 = cached.lookup(far, &mut r);
        assert_eq!(v1, v0, "distant label unaffected");
        // Replays and hits are free; a far-away reference should rarely pay.
        assert!(pager.stats().since(&before).total() <= 2);
    }

    #[test]
    fn bbox_cached_lookup_replays_and_invalidates() {
        let mut b = bbox();
        let lids = b.bulk_load(500);
        let mut cached = CachedBBox::new(b, 32);
        let probe = lids[250];
        cached.insert_before(probe); // full bulk leaf: splits once
        let mut r = CachedRef::new();
        let v0 = cached.lookup(probe, &mut r);
        cached.insert_before(probe);
        let v1 = cached.lookup(probe, &mut r);
        assert_eq!(v1, cached.bbox.lookup(probe).0);
        assert_ne!(v0, v1);
        assert!(cached.stats.replays >= 1);
        // Force splits; correctness must hold through invalidations.
        for _ in 0..60 {
            cached.insert_before(probe);
        }
        let v2 = cached.lookup(probe, &mut r);
        assert_eq!(v2, cached.bbox.lookup(probe).0);
        cached.bbox.validate();
    }

    #[test]
    fn bbox_deletes_replay_too() {
        let mut b = bbox();
        let lids = b.bulk_load(300);
        let mut cached = CachedBBox::new(b, 16);
        let probe = lids[120];
        let mut r = CachedRef::new();
        cached.lookup(probe, &mut r);
        // Delete a label earlier in the same leaf.
        cached.delete(lids[118]);
        let v = cached.lookup(probe, &mut r);
        assert_eq!(v, cached.bbox.lookup(probe).0);
        cached.bbox.validate();
    }

    #[test]
    fn ordinal_cached_layer_over_wbox() {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut scheme = WBoxScheme::new(pager, WBoxConfig::small_for_tests().with_ordinal());
        let lids = scheme.bulk_load_document(&(0..400).map(|i| i ^ 1).collect::<Vec<_>>());
        let mut cached = CachedOrdinal::new(scheme, 8);
        let probe = lids[200];
        let mut r = CachedRef::new();
        assert_eq!(cached.ordinal_of(probe, &mut r), 200);
        // Paper's example shape: insert before an element, all ordinals
        // ≥ l shift by 2; the cache replays it.
        cached.insert_element_before(lids[100]);
        let pager = cached.scheme.pager().clone();
        let before = pager.stats();
        assert_eq!(cached.ordinal_of(probe, &mut r), 202);
        assert_eq!(pager.stats().since(&before).total(), 0);
        // Updates beyond the log capacity force a full lookup.
        for _ in 0..9 {
            cached.insert_before(lids[50]);
        }
        assert_eq!(cached.ordinal_of(probe, &mut r), 211);
        assert!(cached.stats.full >= 1);
        assert!(cached.avoidance_rate() > 0.0);
    }

    #[test]
    fn read_heavy_workload_mostly_avoids_io() {
        let mut w = wbox();
        let lids = w.bulk_load(3_000);
        let mut cached = CachedWBox::new(w, 16);
        // Open up the update neighborhood first (full leaves split once).
        for round in 0..20 {
            cached.insert_before(lids[round * 7 + 1]);
        }
        let mut refs: Vec<CachedRef<u64>> = (0..50).map(|_| CachedRef::new()).collect();
        let probes: Vec<_> = (0..50).map(|i| lids[i * 60]).collect();
        // Warm every reference, then measure only steady state.
        for (r, &lid) in refs.iter_mut().zip(&probes) {
            cached.lookup(lid, r);
        }
        cached.stats = CacheStats::default();
        // 10 reads per update, k = 16.
        for round in 0..20 {
            cached.insert_before(lids[round * 7 + 1]);
            for (r, &lid) in refs.iter_mut().zip(&probes).take(10) {
                let got = cached.lookup(lid, r);
                assert_eq!(got, cached.wbox.lookup(lid));
            }
        }
        assert!(
            cached.stats.avoidance_rate() > 0.8,
            "read-heavy workload should mostly avoid I/O: {:?}",
            cached.stats
        );
    }
}
