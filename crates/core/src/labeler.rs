//! Element-centric labeling API: the layer an XML query processor talks to.

use crate::driver::partner_map;
use crate::scheme::{LabelingScheme, OrdinalScheme};
use boxes_lidf::Lid;
use boxes_xml::tags::{tag_sequence, TagKind};
use boxes_xml::tree::{ElementId, XmlTree};
use std::collections::HashMap;

/// Maintains the element ↔ label mapping for a live [`XmlTree`] on top of
/// any [`LabelingScheme`], and answers the structural predicates order-based
/// labels exist for (§1/§3).
pub struct ElementLabeler<S: LabelingScheme> {
    /// The scheme holding the labels.
    pub scheme: S,
    lids: HashMap<ElementId, (Lid, Lid)>,
}

impl<S: LabelingScheme> ElementLabeler<S> {
    /// Bulk-load the document into a fresh scheme.
    pub fn load(mut scheme: S, tree: &XmlTree) -> Self {
        let partner = partner_map(tree);
        let lids = scheme.bulk_load_document(&partner);
        let seq = tag_sequence(tree);
        let mut map: HashMap<ElementId, (Lid, Lid)> = HashMap::with_capacity(tree.len());
        let mut starts: HashMap<ElementId, Lid> = HashMap::new();
        for (i, tag) in seq.iter().enumerate() {
            match tag.kind {
                TagKind::Start => {
                    starts.insert(tag.element, lids[i]);
                }
                TagKind::End => {
                    map.insert(tag.element, (starts[&tag.element], lids[i]));
                }
            }
        }
        ElementLabeler { scheme, lids: map }
    }

    /// The LIDs of an element's start and end labels.
    pub fn lids(&self, e: ElementId) -> (Lid, Lid) {
        *self.lids.get(&e).expect("element not labeled")
    }

    /// The element's current (start, end) labels.
    pub fn labels(&self, e: ElementId) -> (S::Label, S::Label) {
        let (s, x) = self.lids(e);
        (self.scheme.lookup(s), self.scheme.lookup(x))
    }

    /// Register an element inserted into the tree as a previous sibling of
    /// `sibling` (mirror of [`XmlTree::insert_before`]).
    pub fn on_insert_before(&mut self, new: ElementId, sibling: ElementId) {
        let anchor = self.lids(sibling).0;
        let pair = self.scheme.insert_element_before(anchor);
        self.lids.insert(new, pair);
    }

    /// Register an element appended as the last child of `parent`.
    pub fn on_add_child(&mut self, new: ElementId, parent: ElementId) {
        let anchor = self.lids(parent).1;
        let pair = self.scheme.insert_element_before(anchor);
        self.lids.insert(new, pair);
    }

    /// Register the deletion of a single element (children were promoted).
    pub fn on_remove_element(&mut self, e: ElementId) {
        let (s, x) = self.lids.remove(&e).expect("element not labeled");
        self.scheme.delete(s);
        self.scheme.delete(x);
    }

    /// Register a bulk subtree insertion: `subtree`'s root becomes the
    /// previous sibling of `sibling`. Returns nothing; all subtree elements
    /// are labeled. `ids` must list the subtree elements in document order
    /// (as produced by [`XmlTree::document_order`] on the subtree).
    pub fn on_insert_subtree_before(
        &mut self,
        subtree: &XmlTree,
        ids: &[ElementId],
        sibling: ElementId,
    ) {
        let anchor = self.lids(sibling).0;
        let partner = partner_map(subtree);
        let lids = self.scheme.insert_subtree_before(anchor, &partner);
        let seq = tag_sequence(subtree);
        let order = subtree.document_order();
        let index_of: HashMap<_, _> = order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        let mut starts = vec![Lid::INVALID; order.len()];
        for (i, tag) in seq.iter().enumerate() {
            let e = index_of[&tag.element];
            match tag.kind {
                TagKind::Start => starts[e] = lids[i],
                TagKind::End => {
                    self.lids.insert(ids[e], (starts[e], lids[i]));
                }
            }
        }
    }

    /// Register a bulk subtree deletion rooted at `root`; `descendants`
    /// lists every removed element (including `root`).
    pub fn on_remove_subtree(&mut self, root: ElementId, descendants: &[ElementId]) {
        let (s, x) = self.lids(root);
        self.scheme.delete_subtree(s, x);
        for e in descendants {
            self.lids.remove(e);
        }
    }

    /// §3's running example: is `desc` a descendant of `anc`? Two lookups
    /// and two comparisons — no tree traversal.
    pub fn is_descendant(&self, desc: ElementId, anc: ElementId) -> bool {
        let (as_, ae) = self.labels(anc);
        let (ds, _) = self.labels(desc);
        as_ < ds && ds < ae
    }

    /// Containment join: all (ancestor, descendant) pairs between the two
    /// element sets, computed with a sort + stack sweep over labels — the
    /// stack-tree join of [20] in the paper's reference list.
    pub fn containment_join(
        &self,
        ancestors: &[ElementId],
        descendants: &[ElementId],
    ) -> Vec<(ElementId, ElementId)> {
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        enum Kind {
            // Variant order makes an ancestor's start sort before a
            // coinciding descendant event (labels are unique, so this is
            // only cosmetic).
            AncStart,
            DescStart,
            AncEnd,
        }
        let mut events: Vec<(S::Label, Kind, ElementId)> = Vec::new();
        for &a in ancestors {
            let (s, e) = self.labels(a);
            events.push((s, Kind::AncStart, a));
            events.push((e, Kind::AncEnd, a));
        }
        for &d in descendants {
            let (s, _) = self.labels(d);
            events.push((s, Kind::DescStart, d));
        }
        events.sort_by(|x, y| x.0.cmp(&y.0).then_with(|| x.1.cmp(&y.1)));
        let mut stack: Vec<ElementId> = Vec::new();
        let mut out = Vec::new();
        for (_, kind, id) in events {
            match kind {
                Kind::AncStart => stack.push(id),
                Kind::AncEnd => {
                    let top = stack.pop();
                    debug_assert_eq!(top, Some(id), "properly nested intervals");
                }
                Kind::DescStart => {
                    for &a in &stack {
                        if a != id {
                            out.push((a, id));
                        }
                    }
                }
            }
        }
        out
    }
}

impl<S: OrdinalScheme> ElementLabeler<S> {
    /// §3's ordinal-label query: is `e1` the last child of `e2`? True iff
    /// ordinal(l>(e1)) + 1 == ordinal(l>(e2)).
    pub fn is_last_child(&self, e1: ElementId, e2: ElementId) -> bool {
        let (_, e1_end) = self.lids(e1);
        let (_, e2_end) = self.lids(e2);
        self.scheme.ordinal_of(e1_end) + 1 == self.scheme.ordinal_of(e2_end)
    }

    /// The exact tag position of the element's start tag in the document.
    pub fn ordinal_start(&self, e: ElementId) -> u64 {
        self.scheme.ordinal_of(self.lids(e).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{BBoxScheme, WBoxScheme};
    use boxes_bbox::BBoxConfig;
    use boxes_pager::{Pager, PagerConfig};
    use boxes_xml::generate::xmark;

    fn sample_tree() -> XmlTree {
        // <a><b><d/><e/></b><c/></a>
        let mut t = XmlTree::new("a");
        let b = t.add_child(t.root(), "b");
        t.add_child(b, "d");
        t.add_child(b, "e");
        t.add_child(t.root(), "c");
        t
    }

    #[test]
    fn descendant_checks_match_tree_ground_truth() {
        let tree = xmark(400, 3);
        let labeler = ElementLabeler::load(WBoxScheme::with_block_size(1024), &tree);
        let order = tree.document_order();
        for (i, &a) in order.iter().enumerate().step_by(17) {
            for &d in order.iter().skip(i % 7).step_by(23) {
                assert_eq!(
                    labeler.is_descendant(d, a),
                    tree.is_ancestor(a, d),
                    "a={a:?} d={d:?}"
                );
            }
        }
    }

    #[test]
    fn mutations_keep_predicates_correct() {
        let mut tree = sample_tree();
        let mut labeler = ElementLabeler::load(BBoxScheme::with_block_size(256), &tree);
        let order = tree.document_order();
        let (b, c) = (order[1], order[4]);
        // Insert <x> before <c>, then a child <y> under <b>.
        let x = tree.insert_before(c, "x");
        labeler.on_insert_before(x, c);
        let y = tree.add_child(b, "y");
        labeler.on_add_child(y, b);
        assert!(labeler.is_descendant(y, b));
        assert!(!labeler.is_descendant(x, b));
        assert!(labeler.is_descendant(x, tree.root()));
        // Delete <b> (children promoted to root).
        let d = tree.children(b)[0];
        tree.remove_element(b);
        labeler.on_remove_element(b);
        assert!(labeler.is_descendant(d, tree.root()));
    }

    #[test]
    fn containment_join_finds_all_pairs() {
        let tree = xmark(600, 8);
        let labeler = ElementLabeler::load(WBoxScheme::with_block_size(1024), &tree);
        let order = tree.document_order();
        // Join all "item" elements against all "keyword" descendants.
        let items: Vec<ElementId> = order
            .iter()
            .copied()
            .filter(|&e| tree.tag(e) == "item")
            .collect();
        let keywords: Vec<ElementId> = order
            .iter()
            .copied()
            .filter(|&e| tree.tag(e) == "keyword")
            .collect();
        let pairs = labeler.containment_join(&items, &keywords);
        let mut expected: Vec<(ElementId, ElementId)> = Vec::new();
        for &a in &items {
            for &d in &keywords {
                if tree.is_ancestor(a, d) {
                    expected.push((a, d));
                }
            }
        }
        let mut got = pairs.clone();
        got.sort();
        let mut want = expected;
        want.sort();
        assert_eq!(got, want);
        assert!(!got.is_empty(), "workload should produce matches");
    }

    #[test]
    fn subtree_operations_update_the_mapping() {
        let mut tree = sample_tree();
        let mut labeler = ElementLabeler::load(WBoxScheme::with_block_size(1024), &tree);
        let order = tree.document_order();
        let c = order[4];

        // Paste a small subtree before <c>.
        let mut sub = XmlTree::new("p");
        sub.add_child(sub.root(), "q");
        let sub_order = sub.document_order();
        // Materialize the same shape in the main tree.
        let p = tree.insert_before(c, "p");
        let q = tree.add_child(p, "q");
        labeler.on_insert_subtree_before(&sub, &[p, q], c);
        assert!(labeler.is_descendant(q, p));
        assert!(!labeler.is_descendant(q, c));
        let _ = sub_order;

        // Cut it back out.
        let removed = tree.remove_subtree(p);
        labeler.on_remove_subtree(p, &removed);
        assert!(labeler.is_descendant(c, tree.root()));
        assert_eq!(labeler.scheme.len(), 2 * tree.len() as u64);
    }

    #[test]
    fn last_child_via_ordinals() {
        let tree = sample_tree();
        let pager = Pager::new(PagerConfig::with_block_size(256));
        let labeler = ElementLabeler::load(
            BBoxScheme::new(pager, BBoxConfig::from_block_size(256).with_ordinal()),
            &tree,
        );
        let order = tree.document_order();
        let (a, b, d, e, c) = (order[0], order[1], order[2], order[3], order[4]);
        assert!(labeler.is_last_child(c, a), "<c> is <a>'s last child");
        assert!(labeler.is_last_child(e, b));
        assert!(!labeler.is_last_child(d, b));
        assert!(!labeler.is_last_child(b, a));
        assert_eq!(labeler.ordinal_start(a), 0);
    }
}
