//! Failure-injection tests: the structures must *detect* corruption and
//! misuse loudly rather than silently returning wrong labels. (Module is
//! test-only; it exists so the checks live close to the public API.)

#[cfg(test)]
mod tests {
    use crate::bbox::{BBox, BBoxConfig};
    use crate::pager::{Pager, PagerConfig};
    use crate::wbox::{WBox, WBoxConfig};
    use boxes_audit::{Auditable, ViolationKind};

    #[test]
    fn bbox_detects_corrupted_node_kind() {
        let pager = Pager::new(PagerConfig::with_block_size(128));
        let mut b = BBox::new(pager.clone(), BBoxConfig::from_block_size(128));
        let _lids = b.bulk_load(50);
        // Stamp a bogus node-kind byte onto a structure block behind the
        // tree's back; the audit must *report* the damage as a typed
        // violation — it must not panic, and not come back clean.
        crate::faultlib::stamp_byte(&pager, crate::pager::BlockId(0), 0, 0xEE);
        let report = b.audit();
        assert!(
            report.has(ViolationKind::CorruptNode),
            "expected a CorruptNode violation, got:\n{report}"
        );
    }

    #[test]
    fn wbox_detects_dangling_lidf_pointer() {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut w = WBox::new(pager.clone(), WBoxConfig::small_for_tests());
        let lids = w.bulk_load(50);
        // Simulate a torn LIDF update: point lids[0]'s record at lids[45]'s
        // leaf by copying the raw LIDF slot bytes. Allocation order: block 0
        // is the pre-bulk root (freed), blocks 1–8 the eight leaves of 50
        // records at capacity 7, block 9 the first LIDF block.
        assert_ne!(
            w.lookup(lids[0]) / 7,
            w.lookup(lids[45]) / 7,
            "test premise: the two lids live in different leaves"
        );
        // slot size = 9 (tag + 8B payload); copy slot 45's payload into
        // slot 0's payload.
        crate::faultlib::redirect_lidf_slot(&pager, crate::pager::BlockId(9), 9, 45, 0);
        // The audit reports the mismatch as a typed violation (the leaf
        // holding lids[0] no longer agrees with the LIDF), without panicking.
        let report = w.audit();
        assert!(
            report.has(ViolationKind::LidfMismatch),
            "expected a LidfMismatch violation, got:\n{report}"
        );
    }

    #[test]
    #[should_panic]
    fn deleted_label_cannot_be_looked_up() {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut w = WBox::new(pager, WBoxConfig::small_for_tests());
        let lids = w.bulk_load(10);
        w.delete(lids[3]);
        let _ = w.lookup(lids[3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_lid_is_rejected() {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut w = WBox::new(pager, WBoxConfig::small_for_tests());
        w.bulk_load(10);
        let _ = w.lookup(crate::lidf::Lid(99_999));
    }

    #[test]
    #[should_panic(expected = "endpoints out of order")]
    fn inverted_subtree_range_is_rejected() {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut w = WBox::new(pager, WBoxConfig::small_for_tests());
        let lids = w.bulk_load(20);
        w.delete_subtree(lids[10], lids[2]);
    }
}
