//! Failure-injection tests: the structures must *detect* corruption and
//! misuse loudly rather than silently returning wrong labels. (Module is
//! test-only; it exists so the checks live close to the public API.)

#[cfg(test)]
mod tests {
    use crate::bbox::{BBox, BBoxConfig};
    use crate::pager::{Pager, PagerConfig};
    use crate::wbox::{WBox, WBoxConfig};

    #[test]
    #[should_panic(expected = "corrupt")]
    fn bbox_detects_corrupted_node_kind() {
        let pager = Pager::new(PagerConfig::with_block_size(128));
        let mut b = BBox::new(pager.clone(), BBoxConfig::from_block_size(128));
        let lids = b.bulk_load(50);
        // Flip the node-kind byte of some block the next lookup will read.
        let block = {
            // The LIDF points at the leaf; smash the leaf.
            let victim = pager.read(crate::pager::BlockId(0));
            let mut buf = victim.clone();
            buf[0] = 0xEE;
            pager.write(crate::pager::BlockId(0), &buf);
            lids[0]
        };
        // Some structure block is now garbage; a full-tree walk must hit it.
        let _ = b.iter_lids();
        let _ = b.lookup(block);
    }

    #[test]
    #[should_panic(expected = "not in this W-BOX leaf")]
    fn wbox_detects_dangling_lidf_pointer() {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut w = WBox::new(pager.clone(), WBoxConfig::small_for_tests());
        let lids = w.bulk_load(50);
        // Simulate a torn LIDF update: point a record at the wrong leaf.
        // (Reach in through a second W-BOX handle sharing the pager.)
        let other_leaf = {
            // Label 0 and label 45 live in different leaves (cap 7).
            w.lookup(lids[45]); // ensure it exists
            let via = w.leaf_extent(lids[45]);
            let _ = via;
            // Overwrite lids[0]'s LIDF record with lids[45]'s block by
            // copying the raw LIDF slot bytes. Allocation order: block 0 is
            // the pre-bulk root (freed), blocks 1–8 the eight leaves of 50
            // records at capacity 7, block 9 the first LIDF block.
            let lidf_block = crate::pager::BlockId(9);
            let buf = pager.read(lidf_block);
            let mut buf2 = buf.clone();
            // slot size = 9 (tag + 8B payload); copy slot 45's payload into
            // slot 0's payload.
            let (a, b) = (45usize, 0usize);
            for i in 0..8 {
                buf2[b * 9 + 1 + i] = buf[a * 9 + 1 + i];
            }
            pager.write(lidf_block, &buf2);
            lids[0]
        };
        let _ = w.lookup(other_leaf);
    }

    #[test]
    #[should_panic]
    fn deleted_label_cannot_be_looked_up() {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut w = WBox::new(pager, WBoxConfig::small_for_tests());
        let lids = w.bulk_load(10);
        w.delete(lids[3]);
        let _ = w.lookup(lids[3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_lid_is_rejected() {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut w = WBox::new(pager, WBoxConfig::small_for_tests());
        w.bulk_load(10);
        let _ = w.lookup(crate::lidf::Lid(99_999));
    }

    #[test]
    #[should_panic(expected = "endpoints out of order")]
    fn inverted_subtree_range_is_rejected() {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut w = WBox::new(pager, WBoxConfig::small_for_tests());
        let lids = w.bulk_load(20);
        w.delete_subtree(lids[10], lids[2]);
    }
}
