//! Reusable corruption primitives for robustness tests and the chaos sweep.
//!
//! Three corruption shapes, at three detection depths:
//!
//! | Helper | Checksum-valid? | Who catches it |
//! |--------|-----------------|----------------|
//! | [`flip_byte`] | no (media flip under the CRC) | pager read path: repair or degrade |
//! | [`stamp_byte`], [`tear_slot`] | yes (written through the pager) | structural audits |
//! | [`redirect_lidf_slot`] | yes | cross-structure audits (`LidfMismatch`) |
//!
//! The split matters: checksums catch *media* damage, but a logically wrong
//! block written through the normal path is indistinguishable from valid
//! data at the pager layer — only the scheme-level invariant audits can see
//! it. Chaos harnesses use [`flip_byte`] to exercise read-repair and the
//! others as negative controls proving the audits are not vacuous.

use boxes_pager::{BlockId, SharedPager};

/// Flip one media byte *under* the block checksum: the next read of `block`
/// sees a CRC mismatch and must read-repair from the WAL or degrade.
pub fn flip_byte(pager: &SharedPager, block: BlockId, offset: usize, mask: u8) {
    pager.corrupt_block(block, offset, mask);
}

/// Overwrite one byte *through* the pager (checksum-valid): simulates
/// logically wrong but well-formed data that only a structural audit can
/// catch — e.g. stamping a bogus node-kind tag onto a tree block.
pub fn stamp_byte(pager: &SharedPager, block: BlockId, offset: usize, value: u8) {
    let mut buf = pager.read(block);
    buf[offset] = value;
    pager.write(block, &buf);
}

/// Zero the tail of a fixed-size slot (checksum-valid): models a torn
/// in-slot update where only a prefix of the new record landed. `keep`
/// bytes of the slot survive; the rest are zeroed.
pub fn tear_slot(
    pager: &SharedPager,
    block: BlockId,
    slot_offset: usize,
    slot_size: usize,
    keep: usize,
) {
    assert!(keep <= slot_size, "torn prefix exceeds the slot");
    let mut buf = pager.read(block);
    for b in &mut buf[slot_offset + keep..slot_offset + slot_size] {
        *b = 0;
    }
    pager.write(block, &buf);
}

/// Copy LIDF slot `src`'s payload over slot `dst`'s (checksum-valid): a
/// dangling-pointer corruption where `dst`'s record now points at a leaf
/// that does not hold it. Slots are `slot_size` bytes (liveness tag + payload);
/// the tag byte is preserved so both slots still read as live.
pub fn redirect_lidf_slot(
    pager: &SharedPager,
    lidf_block: BlockId,
    slot_size: usize,
    src: usize,
    dst: usize,
) {
    let buf = pager.read(lidf_block);
    let mut out = buf.clone();
    out[dst * slot_size + 1..(dst + 1) * slot_size]
        .copy_from_slice(&buf[src * slot_size + 1..(src + 1) * slot_size]);
    pager.write(lidf_block, &out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use boxes_pager::{Pager, PagerConfig, PagerError};

    #[test]
    fn flip_byte_is_caught_by_the_checksum() {
        let pager = Pager::new(PagerConfig::with_block_size(64));
        let id = pager.alloc();
        pager.write(id, &[7u8; 64]);
        flip_byte(&pager, id, 3, 0x40);
        // No journal to repair from: the read must fail typed, not return
        // the rotted byte.
        match pager.try_read(id) {
            Err(PagerError::Corrupt { block }) => assert_eq!(block, id),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn stamp_and_tear_are_checksum_valid() {
        let pager = Pager::new(PagerConfig::with_block_size(64));
        let id = pager.alloc();
        pager.write(id, &[7u8; 64]);
        stamp_byte(&pager, id, 0, 0xEE);
        tear_slot(&pager, id, 8, 8, 3);
        let buf = pager.read(id); // no checksum complaint
        assert_eq!(buf[0], 0xEE);
        assert_eq!(&buf[8..16], &[7, 7, 7, 0, 0, 0, 0, 0]);
    }
}
