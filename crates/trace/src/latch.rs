//! Per-shard latch contention side channel.
//!
//! The sharded pager (`boxes_pager::table`) tallies every shard-mutex
//! acquisition and every contended acquisition (one where the uncontended
//! `try_lock` fast path missed) into this process-wide table, keyed by
//! shard index. It is a *side channel*, deliberately outside the
//! deterministic [`crate::TraceReport`]: contention depends on the OS
//! scheduler, so these tallies feed human-facing artifacts
//! (`latch-report.json`, stress legs) and are never byte-diffed.
//!
//! Storage is a fixed array of SeqCst atomics — no locks, so recording from
//! inside a latch acquisition path can never deadlock or reorder against
//! the latches it observes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of shard slots tracked. Larger shard indices fold in modulo this,
/// so the table never misses an event (the pager's shard count is far
/// below it).
pub const LATCH_SLOTS: usize = 64;

static ACQUIRED: [AtomicU64; LATCH_SLOTS] = [const { AtomicU64::new(0) }; LATCH_SLOTS];
static CONTENDED: [AtomicU64; LATCH_SLOTS] = [const { AtomicU64::new(0) }; LATCH_SLOTS];

/// Record one shard-latch acquisition for `slot`, optionally contended.
pub fn record_latch(slot: usize, contended: bool) {
    let slot = slot % LATCH_SLOTS;
    ACQUIRED[slot].fetch_add(1, Ordering::SeqCst);
    if contended {
        CONTENDED[slot].fetch_add(1, Ordering::SeqCst);
    }
}

/// Process-wide totals: `(acquisitions, contended)` summed over all slots.
#[must_use]
pub fn latch_totals() -> (u64, u64) {
    let mut acquired = 0u64;
    let mut contended = 0u64;
    for slot in 0..LATCH_SLOTS {
        acquired += ACQUIRED[slot].load(Ordering::SeqCst);
        contended += CONTENDED[slot].load(Ordering::SeqCst);
    }
    (acquired, contended)
}

/// Per-slot `(acquisitions, contended)` tallies for the first `n` slots.
#[must_use]
pub fn latch_slots(n: usize) -> Vec<(u64, u64)> {
    (0..n.min(LATCH_SLOTS))
        .map(|slot| {
            (
                ACQUIRED[slot].load(Ordering::SeqCst),
                CONTENDED[slot].load(Ordering::SeqCst),
            )
        })
        .collect()
}

/// Zero every slot (called by [`crate::reset`] between deterministic legs).
pub fn reset_latches() {
    for slot in 0..LATCH_SLOTS {
        ACQUIRED[slot].store(0, Ordering::SeqCst);
        CONTENDED[slot].store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fold() {
        reset_latches();
        record_latch(3, false);
        record_latch(3, true);
        record_latch(3 + LATCH_SLOTS, false); // folds into slot 3
        let slots = latch_slots(8);
        assert_eq!(slots[3], (3, 1));
        let (a, c) = latch_totals();
        assert!(a >= 3 && c >= 1);
        reset_latches();
        assert_eq!(latch_slots(4), vec![(0, 0); 4]);
    }
}
