//! Deterministic per-operation observability for the BOXes stack.
//!
//! The paper's claims are I/O *cost bounds* — W-BOX O(1) lookup and
//! O(log_B N) amortized insert, B-BOX O(log_B N) lookup and O(1) amortized
//! update — so the unit of observation here is the logical operation, not
//! wall-clock time. This crate provides:
//!
//! * [`OpSpan`]: an RAII span carrying a scheme tag ("W-BOX", "B-BOX", …)
//!   and an op or phase label ("insert", "split", "lidf", …). Spans nest;
//!   the innermost open span owns every counter event recorded while it is
//!   open, and folds its totals into its parent when it closes.
//! * [`Counter`]: the event vocabulary — block reads/writes/allocs/frees,
//!   retries/repairs/backoff ticks, buffer-pool cache hits, WAL
//!   appends/syncs/checkpoints and log-image replays.
//! * A bounded ring buffer of [`SpanEvent`]s (closed spans) plus
//!   per-(scheme, op) aggregates with log2 I/O histograms.
//! * [`TraceReport`]: a snapshot with human ([`TraceReport::render_text`])
//!   and JSON ([`TraceReport::to_json`]) export. The JSON string is what
//!   `cargo xtask analyze --profile-only` writes to
//!   `target/trace-report.json`.
//!
//! # Determinism
//!
//! There is no wall clock anywhere (lint rule BX007): time is a logical
//! tick counter advanced once per recorded event and span transition, so
//! two runs of the same seeded workload produce byte-identical reports.
//! Span stacks are *per-thread by key, not thread-local by storage*: the
//! mutex-guarded registry keys each stack by `ThreadId`, so a span opened
//! on one thread attributes only events recorded on that thread, while
//! every tally, aggregate, and the event ring live in the same global —
//! a report taken on the main thread accounts for reader threads too and
//! the identity below holds across threads. Single-threaded runs see the
//! exact same tick sequence as the old thread-local tracer. On top of the
//! stacks sits *session attribution*: a [`TraceSession`] handle binds a
//! thread to a session id, root spans opened on a bound thread inherit
//! it, and every recorded event is tallied per session — this is what
//! lets `boxes-session` prove each snapshot's logical I/O separately
//! while the global identity still closes. This crate deliberately has
//! zero dependencies so the pager can sit above it.
//!
//! # Accounting identity
//!
//! Instrumented call sites mirror every `IoStats` increment with a
//! [`record`] call, so for any interval:
//!
//! ```text
//! attributed() + unattributed() == IoStats::since(before) delta
//! ```
//!
//! holds counter-by-counter, and `unattributed()` stays zero as long as
//! every pager touch happens under an open span. The `--profile-only`
//! analyze pass fails if scheme hot paths leak unattributed I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-shard latch contention tallies (side channel, not in the
/// deterministic [`TraceReport`]).
pub mod latch;

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::thread::ThreadId;

/// Number of distinct [`Counter`] kinds.
pub const COUNTER_KINDS: usize = 12;

/// One kind of recorded event. The first seven mirror
/// `boxes_pager::IoStats` field-for-field (that pairing is what the
/// accounting identity is checked against); the rest cover the buffer
/// pool and the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// A charged pager block read (`IoStats::reads`).
    BlockRead,
    /// A charged pager block write (`IoStats::writes`).
    BlockWrite,
    /// A pager block allocation (`IoStats::allocs`).
    Alloc,
    /// A pager block free (`IoStats::frees`).
    Free,
    /// A retried backend I/O attempt (`IoStats::retries`).
    Retry,
    /// A journal read-repair of a corrupt block (`IoStats::repairs`).
    Repair,
    /// Deterministic backoff/latency ticks (`IoStats::backoff_ticks`).
    BackoffTicks,
    /// A read served by the buffer pool without a charged I/O.
    CacheHit,
    /// A WAL commit record appended to the log.
    WalAppend,
    /// A WAL sync barrier (group-commit flush).
    WalSync,
    /// A WAL checkpoint (log rotation onto a fold record).
    WalCheckpoint,
    /// A block image reconstructed by replaying the WAL (read-repair
    /// source, i.e. a log replay).
    WalReplay,
}

impl Counter {
    /// Stable snake_case name used in JSON keys and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::BlockRead => "reads",
            Counter::BlockWrite => "writes",
            Counter::Alloc => "allocs",
            Counter::Free => "frees",
            Counter::Retry => "retries",
            Counter::Repair => "repairs",
            Counter::BackoffTicks => "backoff_ticks",
            Counter::CacheHit => "cache_hits",
            Counter::WalAppend => "wal_appends",
            Counter::WalSync => "wal_syncs",
            Counter::WalCheckpoint => "wal_checkpoints",
            Counter::WalReplay => "wal_replays",
        }
    }

    /// All counter kinds in report order.
    #[must_use]
    pub fn all() -> [Counter; COUNTER_KINDS] {
        [
            Counter::BlockRead,
            Counter::BlockWrite,
            Counter::Alloc,
            Counter::Free,
            Counter::Retry,
            Counter::Repair,
            Counter::BackoffTicks,
            Counter::CacheHit,
            Counter::WalAppend,
            Counter::WalSync,
            Counter::WalCheckpoint,
            Counter::WalReplay,
        ]
    }
}

/// A bundle of per-kind event totals. Field order mirrors [`Counter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Charged pager block reads.
    pub reads: u64,
    /// Charged pager block writes.
    pub writes: u64,
    /// Pager block allocations.
    pub allocs: u64,
    /// Pager block frees.
    pub frees: u64,
    /// Retried backend I/O attempts.
    pub retries: u64,
    /// Journal read-repairs.
    pub repairs: u64,
    /// Deterministic backoff/latency ticks.
    pub backoff_ticks: u64,
    /// Buffer-pool hits (reads served without a charged I/O).
    pub cache_hits: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL sync barriers.
    pub wal_syncs: u64,
    /// WAL checkpoints.
    pub wal_checkpoints: u64,
    /// WAL log-image replays (read-repair reconstructions).
    pub wal_replays: u64,
}

impl TraceCounters {
    /// Value of one counter kind.
    #[must_use]
    pub fn get(&self, kind: Counter) -> u64 {
        match kind {
            Counter::BlockRead => self.reads,
            Counter::BlockWrite => self.writes,
            Counter::Alloc => self.allocs,
            Counter::Free => self.frees,
            Counter::Retry => self.retries,
            Counter::Repair => self.repairs,
            Counter::BackoffTicks => self.backoff_ticks,
            Counter::CacheHit => self.cache_hits,
            Counter::WalAppend => self.wal_appends,
            Counter::WalSync => self.wal_syncs,
            Counter::WalCheckpoint => self.wal_checkpoints,
            Counter::WalReplay => self.wal_replays,
        }
    }

    fn bump(&mut self, kind: Counter, n: u64) {
        let slot = match kind {
            Counter::BlockRead => &mut self.reads,
            Counter::BlockWrite => &mut self.writes,
            Counter::Alloc => &mut self.allocs,
            Counter::Free => &mut self.frees,
            Counter::Retry => &mut self.retries,
            Counter::Repair => &mut self.repairs,
            Counter::BackoffTicks => &mut self.backoff_ticks,
            Counter::CacheHit => &mut self.cache_hits,
            Counter::WalAppend => &mut self.wal_appends,
            Counter::WalSync => &mut self.wal_syncs,
            Counter::WalCheckpoint => &mut self.wal_checkpoints,
            Counter::WalReplay => &mut self.wal_replays,
        };
        *slot = slot.saturating_add(n);
    }

    /// Fold another bundle into this one (saturating).
    pub fn merge(&mut self, other: &TraceCounters) {
        for kind in Counter::all() {
            self.bump(kind, other.get(kind));
        }
    }

    /// Charged block I/O total: reads + writes. This is the quantity the
    /// paper's theorems bound and the one the histograms bucket.
    #[must_use]
    pub fn io_total(&self) -> u64 {
        self.reads.saturating_add(self.writes)
    }

    /// Counter-wise difference against an earlier snapshot (saturating, so
    /// a reset between snapshots yields zeros rather than wrapping).
    #[must_use]
    pub fn since(&self, earlier: &TraceCounters) -> TraceCounters {
        let mut out = TraceCounters::default();
        for kind in Counter::all() {
            out.bump(kind, self.get(kind).saturating_sub(earlier.get(kind)));
        }
        out
    }

    /// True when every counter is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == TraceCounters::default()
    }

    fn json_into(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        for kind in Counter::all() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(kind.name());
            out.push_str("\":");
            out.push_str(&self.get(kind).to_string());
        }
        out.push('}');
    }
}

/// Number of log2 buckets in a per-op I/O histogram: bucket `i` counts ops
/// whose charged I/O total `t` satisfies `floor(log2(max(t,1))) == i`,
/// with the last bucket absorbing everything larger.
pub const HIST_BUCKETS: usize = 16;

/// Aggregate over every closed span sharing a (scheme, label) pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpAgg {
    /// Closed spans folded in.
    pub count: u64,
    /// Counter totals across those spans (children included).
    pub totals: TraceCounters,
    /// Largest single-span charged I/O total.
    pub max_io: u64,
    /// log2 histogram of per-span charged I/O totals.
    pub hist: [u64; HIST_BUCKETS],
}

impl OpAgg {
    fn absorb(&mut self, c: &TraceCounters) {
        self.count = self.count.saturating_add(1);
        self.totals.merge(c);
        let io = c.io_total();
        self.max_io = self.max_io.max(io);
        let bucket = log2_bucket(io).min(HIST_BUCKETS - 1);
        self.hist[bucket] = self.hist[bucket].saturating_add(1);
    }
}

fn log2_bucket(v: u64) -> usize {
    let mut b = 0usize;
    let mut x = v;
    while x > 1 {
        x >>= 1;
        b += 1;
    }
    b
}

/// A closed span, as captured in the bounded event ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Unique id (1-based, allocation order).
    pub id: u64,
    /// Id of the enclosing span at open time, or 0 for a root span.
    pub parent: u64,
    /// Nesting depth at open time (0 = root).
    pub depth: u64,
    /// Scheme tag ("W-BOX", "B-BOX", "LIDF", …); phases inherit the
    /// enclosing span's tag.
    pub scheme: &'static str,
    /// Op or phase label ("insert", "split", "lidf", …).
    pub label: &'static str,
    /// Whether this was a phase sub-span rather than a top-level op.
    pub phase: bool,
    /// Logical tick at open.
    pub start_tick: u64,
    /// Logical tick at close.
    pub end_tick: u64,
    /// Counter totals attributed to this span (children folded in).
    pub counters: TraceCounters,
}

struct Frame {
    id: u64,
    parent: u64,
    depth: u64,
    scheme: &'static str,
    label: &'static str,
    phase: bool,
    start_tick: u64,
    /// Owning session id (0 = unbound). Root frames take the opening
    /// thread's binding; child frames inherit their parent's.
    session: u64,
    counters: TraceCounters,
}

/// Per-session tally: label, totals, and whether the RAII handle is
/// still alive.
#[derive(Debug, Clone)]
struct SessionStat {
    label: &'static str,
    open: bool,
    counters: TraceCounters,
}

/// Default bound on the ring buffer of closed-span events.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// The shared registry, span stacks included: stacks are keyed by
/// `ThreadId` inside the one mutex-guarded global rather than living in
/// `thread_local!` storage, so the whole tracer is a single `Sync` value
/// (sync-readiness rule BX018) and session tallies can be bumped in the
/// same critical section that attributes an event to a frame.
#[derive(Default)]
struct Tracer {
    next_id: u64,
    ticks: u64,
    open_spans: u64,
    attributed: TraceCounters,
    unattributed: TraceCounters,
    events: VecDeque<SpanEvent>,
    event_capacity: usize,
    dropped_events: u64,
    ops: BTreeMap<(&'static str, &'static str), OpAgg>,
    phases: BTreeMap<(&'static str, &'static str), OpAgg>,
    out_of_order_closes: u64,
    /// Per-thread span stacks; an entry is removed when its stack drains.
    stacks: HashMap<ThreadId, Vec<Frame>>,
    /// Thread → session binding installed by [`TraceSession`].
    bindings: HashMap<ThreadId, u64>,
    /// Per-session tallies, keyed by session id (ids are 1-based).
    sessions: BTreeMap<u64, SessionStat>,
    next_session: u64,
}

impl Tracer {
    fn tick(&mut self) -> u64 {
        self.ticks = self.ticks.saturating_add(1);
        self.ticks
    }
}

static TRACER: OnceLock<Mutex<Tracer>> = OnceLock::new();

fn with_tracer<R>(f: impl FnOnce(&mut Tracer) -> R) -> R {
    let tracer = TRACER.get_or_init(|| {
        Mutex::new(Tracer {
            event_capacity: DEFAULT_EVENT_CAPACITY,
            ..Tracer::default()
        })
    });
    // Recover from poisoning: crash injection panics mid-workload by
    // design, and the registry's counters stay internally consistent (every
    // mutation completes before the panic sites in pager/wal code run).
    let mut guard = match tracer.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut guard)
}

fn open_span(scheme: &'static str, label: &'static str, phase: bool) -> u64 {
    with_tracer(|t| {
        let tid = std::thread::current().id();
        let (parent, depth, scheme, session) = match t.stacks.get(&tid).and_then(|s| s.last()) {
            Some(top) => {
                // Phase sub-spans inherit the scheme tag they run under;
                // every child inherits its parent's session.
                let s = if phase && scheme.is_empty() {
                    top.scheme
                } else {
                    scheme
                };
                (top.id, top.depth.saturating_add(1), s, top.session)
            }
            // Root spans take the opening thread's session binding.
            None => (0, 0, scheme, t.bindings.get(&tid).copied().unwrap_or(0)),
        };
        let start_tick = t.tick();
        t.next_id = t.next_id.saturating_add(1);
        t.open_spans = t.open_spans.saturating_add(1);
        let id = t.next_id;
        t.stacks.entry(tid).or_default().push(Frame {
            id,
            parent,
            depth,
            scheme,
            label,
            phase,
            start_tick,
            session,
            counters: TraceCounters::default(),
        });
        id
    })
}

fn close_span(id: u64) {
    // Spans close LIFO in correct code; tolerate (and count) an
    // out-of-order close rather than corrupting the stack. A close for a
    // frame this thread does not own (never possible through the RAII
    // handle) is ignored.
    with_tracer(|t| {
        let tid = std::thread::current().id();
        let Some(stack) = t.stacks.get_mut(&tid) else {
            return;
        };
        let Some(pos) = stack.iter().rposition(|f| f.id == id) else {
            return;
        };
        let out_of_order = pos != stack.len() - 1;
        let frame = stack.remove(pos);
        if let Some(parent) = stack.last_mut() {
            parent.counters.merge(&frame.counters);
        }
        let drained = stack.is_empty();
        if drained {
            t.stacks.remove(&tid);
        }
        let end_tick = t.tick();
        t.open_spans = t.open_spans.saturating_sub(1);
        if out_of_order {
            t.out_of_order_closes = t.out_of_order_closes.saturating_add(1);
        }
        let map = if frame.phase {
            &mut t.phases
        } else {
            &mut t.ops
        };
        map.entry((frame.scheme, frame.label))
            .or_default()
            .absorb(&frame.counters);
        if t.event_capacity > 0 {
            if t.events.len() >= t.event_capacity {
                t.events.pop_front();
                t.dropped_events = t.dropped_events.saturating_add(1);
            }
            t.events.push_back(SpanEvent {
                id: frame.id,
                parent: frame.parent,
                depth: frame.depth,
                scheme: frame.scheme,
                label: frame.label,
                phase: frame.phase,
                start_tick: frame.start_tick,
                end_tick,
                counters: frame.counters,
            });
        }
    });
}

/// RAII span: open at construction, closed (and folded into its parent)
/// on drop. Bind it to a named local — `let _span = OpSpan::op(...)` —
/// so it lives for the scope; binding to `_` or leaking it defeats
/// attribution (lint rule BX009).
#[derive(Debug)]
#[must_use = "an unbound span closes immediately and attributes nothing"]
pub struct OpSpan {
    id: u64,
}

impl OpSpan {
    /// Open a top-level operation span: `scheme` tags which labeling
    /// scheme runs the primitive, `op` names it ("lookup", "insert",
    /// "delete", "bulk_load", …).
    pub fn op(scheme: &'static str, op: &'static str) -> OpSpan {
        OpSpan {
            id: open_span(scheme, op, false),
        }
    }

    /// Open a phase sub-span ("split", "merge", "respace", "relabel",
    /// "rebuild", "lidf", …). The scheme tag is inherited from the
    /// enclosing span.
    pub fn phase(name: &'static str) -> OpSpan {
        OpSpan {
            id: open_span("", name, true),
        }
    }
}

impl Drop for OpSpan {
    fn drop(&mut self) {
        close_span(self.id);
    }
}

/// Record `n` events of `kind` against the innermost span open *on this
/// thread* (or the global unattributed tally when none is). Called by the
/// pager and the WAL at the same sites that bump their own stats. The
/// owning session — the frame's inherited session, or the bare thread
/// binding when no span is open — is tallied in the same critical
/// section.
pub fn record(kind: Counter, n: u64) {
    if n == 0 {
        return;
    }
    with_tracer(|t| {
        t.tick();
        let tid = std::thread::current().id();
        let session = match t.stacks.get_mut(&tid).and_then(|s| s.last_mut()) {
            Some(top) => {
                top.counters.bump(kind, n);
                t.attributed.bump(kind, n);
                top.session
            }
            None => {
                t.unattributed.bump(kind, n);
                t.bindings.get(&tid).copied().unwrap_or(0)
            }
        };
        if session != 0 {
            if let Some(s) = t.sessions.get_mut(&session) {
                s.counters.bump(kind, n);
            }
        }
    });
}

/// Reset the global registry to empty (counters, aggregates, events,
/// ticks). Open spans survive but their already-recorded counts are gone;
/// reset between spans — on a single thread, with no reader threads mid-op
/// — not inside one.
pub fn reset() {
    latch::reset_latches();
    with_tracer(|t| {
        let capacity = t.event_capacity;
        let next_id = t.next_id;
        let open = t.open_spans;
        let next_session = t.next_session;
        // Keep live frames so RAII drops of pre-reset spans stay sound,
        // but zero their partial counts. Bindings and still-open sessions
        // survive (zeroed) so live TraceSession handles stay meaningful;
        // closed sessions are dropped with the rest of the tallies.
        let mut stacks = std::mem::take(&mut t.stacks);
        for stack in stacks.values_mut() {
            for f in stack.iter_mut() {
                f.counters = TraceCounters::default();
                f.start_tick = 0;
            }
        }
        let bindings = std::mem::take(&mut t.bindings);
        let mut sessions = std::mem::take(&mut t.sessions);
        sessions.retain(|_, s| s.open);
        for s in sessions.values_mut() {
            s.counters = TraceCounters::default();
        }
        *t = Tracer {
            event_capacity: capacity,
            next_id,
            open_spans: open,
            next_session,
            stacks,
            bindings,
            sessions,
            ..Tracer::default()
        };
    });
}

/// Totals recorded while some span was open.
#[must_use]
pub fn attributed() -> TraceCounters {
    with_tracer(|t| t.attributed)
}

/// Totals recorded with no span open.
#[must_use]
pub fn unattributed() -> TraceCounters {
    with_tracer(|t| t.unattributed)
}

/// Everything recorded: attributed + unattributed. For any interval this
/// equals the pager's `IoStats::since` delta on the seven shared fields.
#[must_use]
pub fn observed() -> TraceCounters {
    with_tracer(|t| {
        let mut all = t.attributed;
        all.merge(&t.unattributed);
        all
    })
}

/// Current logical tick.
#[must_use]
pub fn ticks() -> u64 {
    with_tracer(|t| t.ticks)
}

/// Number of currently open spans, across all threads.
#[must_use]
pub fn open_spans() -> usize {
    with_tracer(|t| usize::try_from(t.open_spans).unwrap_or(usize::MAX))
}

/// Replace the bound on the closed-span event ring (0 disables event
/// capture; aggregates still accumulate).
pub fn set_event_capacity(capacity: usize) {
    with_tracer(|t| {
        t.event_capacity = capacity;
        while t.events.len() > capacity {
            t.events.pop_front();
            t.dropped_events = t.dropped_events.saturating_add(1);
        }
    });
}

/// RAII per-session attribution handle.
///
/// `begin` allocates a fresh session id, starts a tally for it, and binds
/// the *current thread* to it: root spans opened on a bound thread (and
/// every event they attribute) are tallied against the session, as are
/// span-less events recorded on the thread. A session follows work across
/// threads via [`TraceSession::bind_current_thread`]. Dropping the handle
/// marks the session closed and removes its thread bindings; the tally
/// itself survives in [`report`]s until the next [`reset`].
///
/// One session per thread at a time: binding a thread overwrites any
/// previous binding, so interleave sessions across threads, not within
/// one.
#[derive(Debug)]
#[must_use = "dropping a session immediately unbinds its threads"]
pub struct TraceSession {
    id: u64,
}

impl TraceSession {
    /// Start a session and bind the current thread to it.
    pub fn begin(label: &'static str) -> TraceSession {
        with_tracer(|t| {
            t.next_session = t.next_session.saturating_add(1);
            let id = t.next_session;
            t.sessions.insert(
                id,
                SessionStat {
                    label,
                    open: true,
                    counters: TraceCounters::default(),
                },
            );
            t.bindings.insert(std::thread::current().id(), id);
            TraceSession { id }
        })
    }

    /// The session id (1-based, allocation order; 0 means "no session").
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Bind the calling thread to this session (for work handed across
    /// threads). Replaces the thread's previous binding, if any.
    pub fn bind_current_thread(&self) {
        let id = self.id;
        with_tracer(|t| {
            t.bindings.insert(std::thread::current().id(), id);
        });
    }

    /// This session's tally so far.
    #[must_use]
    pub fn counters(&self) -> TraceCounters {
        session_counters(self.id).unwrap_or_default()
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        let id = self.id;
        with_tracer(|t| {
            if let Some(s) = t.sessions.get_mut(&id) {
                s.open = false;
            }
            t.bindings.retain(|_, bound| *bound != id);
        });
    }
}

/// Tally of one session by id, if it exists (i.e. began after the last
/// [`reset`], or was still open across it).
#[must_use]
pub fn session_counters(id: u64) -> Option<TraceCounters> {
    with_tracer(|t| t.sessions.get(&id).map(|s| s.counters))
}

/// One session's row in a [`TraceReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTally {
    /// Session id (1-based, allocation order).
    pub id: u64,
    /// Label given to [`TraceSession::begin`].
    pub label: String,
    /// Whether the RAII handle was still alive at snapshot time.
    pub open: bool,
    /// Counter totals attributed to the session.
    pub counters: TraceCounters,
}

/// Immutable snapshot of the tracer: aggregates, global tallies, and the
/// ring of recent closed spans.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Logical tick at snapshot time.
    pub ticks: u64,
    /// Spans still open when the snapshot was taken.
    pub open_spans: u64,
    /// Spans that closed out of LIFO order (should stay 0).
    pub out_of_order_closes: u64,
    /// Ring events discarded because the buffer was full.
    pub dropped_events: u64,
    /// Totals recorded under some span.
    pub attributed: TraceCounters,
    /// Totals recorded with no span open.
    pub unattributed: TraceCounters,
    /// Per-(scheme, op) aggregates over top-level op spans.
    pub ops: Vec<((String, String), OpAgg)>,
    /// Per-(scheme, phase) aggregates over phase sub-spans.
    pub phases: Vec<((String, String), OpAgg)>,
    /// Per-session tallies, in session-id order.
    pub sessions: Vec<SessionTally>,
    /// Most recent closed spans, oldest first.
    pub events: Vec<SpanEvent>,
}

/// Take a [`TraceReport`] snapshot of the global registry.
#[must_use]
pub fn report() -> TraceReport {
    with_tracer(|t| TraceReport {
        ticks: t.ticks,
        open_spans: t.open_spans,
        out_of_order_closes: t.out_of_order_closes,
        dropped_events: t.dropped_events,
        attributed: t.attributed,
        unattributed: t.unattributed,
        ops: t
            .ops
            .iter()
            .map(|(&(s, l), agg)| ((s.to_string(), l.to_string()), agg.clone()))
            .collect(),
        phases: t
            .phases
            .iter()
            .map(|(&(s, l), agg)| ((s.to_string(), l.to_string()), agg.clone()))
            .collect(),
        sessions: t
            .sessions
            .iter()
            .map(|(&id, s)| SessionTally {
                id,
                label: s.label.to_string(),
                open: s.open,
                counters: s.counters,
            })
            .collect(),
        events: t.events.iter().cloned().collect(),
    })
}

fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => {
                out.push_str("\\u00");
                let v = u32::from(c);
                let hi = (v >> 4) & 0xf;
                let lo = v & 0xf;
                for d in [hi, lo] {
                    out.push(char::from_digit(d, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

fn agg_json_into(scheme: &str, label: &str, agg: &OpAgg, out: &mut String) {
    out.push_str("{\"scheme\":\"");
    json_escape_into(scheme, out);
    out.push_str("\",\"label\":\"");
    json_escape_into(label, out);
    out.push_str("\",\"count\":");
    out.push_str(&agg.count.to_string());
    out.push_str(",\"io_total\":");
    out.push_str(&agg.totals.io_total().to_string());
    out.push_str(",\"max_io\":");
    out.push_str(&agg.max_io.to_string());
    out.push_str(",\"counters\":");
    agg.totals.json_into(out);
    out.push_str(",\"io_hist_log2\":[");
    for (i, v) in agg.hist.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push_str("]}");
}

impl TraceReport {
    /// Serialize the report as a stable single-line JSON document. The
    /// schema is documented in DESIGN.md ("Observability & tracing").
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"boxes-trace/2\",\"ticks\":");
        out.push_str(&self.ticks.to_string());
        out.push_str(",\"open_spans\":");
        out.push_str(&self.open_spans.to_string());
        out.push_str(",\"out_of_order_closes\":");
        out.push_str(&self.out_of_order_closes.to_string());
        out.push_str(",\"dropped_events\":");
        out.push_str(&self.dropped_events.to_string());
        out.push_str(",\"attributed\":");
        self.attributed.json_into(&mut out);
        out.push_str(",\"unattributed\":");
        self.unattributed.json_into(&mut out);
        out.push_str(",\"ops\":[");
        for (i, ((s, l), agg)) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            agg_json_into(s, l, agg, &mut out);
        }
        out.push_str("],\"phases\":[");
        for (i, ((s, l), agg)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            agg_json_into(s, l, agg, &mut out);
        }
        out.push_str("],\"sessions\":[");
        for (i, s) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            out.push_str(&s.id.to_string());
            out.push_str(",\"label\":\"");
            json_escape_into(&s.label, &mut out);
            out.push_str("\",\"open\":");
            out.push_str(if s.open { "true" } else { "false" });
            out.push_str(",\"counters\":");
            s.counters.json_into(&mut out);
            out.push('}');
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            out.push_str(&e.id.to_string());
            out.push_str(",\"parent\":");
            out.push_str(&e.parent.to_string());
            out.push_str(",\"depth\":");
            out.push_str(&e.depth.to_string());
            out.push_str(",\"scheme\":\"");
            json_escape_into(e.scheme, &mut out);
            out.push_str("\",\"label\":\"");
            json_escape_into(e.label, &mut out);
            out.push_str("\",\"phase\":");
            out.push_str(if e.phase { "true" } else { "false" });
            out.push_str(",\"start_tick\":");
            out.push_str(&e.start_tick.to_string());
            out.push_str(",\"end_tick\":");
            out.push_str(&e.end_tick.to_string());
            out.push_str(",\"counters\":");
            e.counters.json_into(&mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Render a short human-readable table of the op aggregates.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} ticks, {} open span(s), attributed io {}, unattributed io {}\n",
            self.ticks,
            self.open_spans,
            self.attributed.io_total(),
            self.unattributed.io_total()
        ));
        out.push_str("scheme            op              count   io/op     max  reads  writes\n");
        for ((scheme, label), agg) in &self.ops {
            let per_op = if agg.count == 0 {
                0.0
            } else {
                to_f64(agg.totals.io_total()) / to_f64(agg.count)
            };
            out.push_str(&format!(
                "{scheme:<17} {label:<15} {:>6} {per_op:>7.2} {:>7} {:>6} {:>7}\n",
                agg.count, agg.max_io, agg.totals.reads, agg.totals.writes
            ));
        }
        out
    }
}

fn to_f64(v: u64) -> f64 {
    // Report rendering only; precision loss above 2^53 is irrelevant, and
    // a float target keeps this outside the BX004 integer-cast rule.
    v as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is global now, so tests that reset and then assert on
    /// its tallies must not interleave. Each test holds this lock for its
    /// whole body (poison-recovering: a failed test must not wedge the
    /// rest of the suite).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn io(reads: u64, writes: u64) -> TraceCounters {
        TraceCounters {
            reads,
            writes,
            ..TraceCounters::default()
        }
    }

    #[test]
    fn unattributed_without_span() {
        let _guard = serial();
        reset();
        record(Counter::BlockRead, 2);
        assert_eq!(unattributed(), io(2, 0));
        assert!(attributed().is_zero());
    }

    #[test]
    fn innermost_span_owns_events_and_folds_into_parent() {
        let _guard = serial();
        reset();
        {
            let _op = OpSpan::op("W-BOX", "insert");
            record(Counter::BlockRead, 1);
            {
                let _p = OpSpan::phase("split");
                record(Counter::BlockWrite, 3);
            }
            record(Counter::BlockWrite, 1);
        }
        let r = report();
        assert_eq!(r.open_spans, 0);
        assert_eq!(attributed(), io(1, 4));
        assert!(unattributed().is_zero());
        // The op aggregate includes the folded-in phase counters.
        let (_, op_agg) = &r.ops[0];
        assert_eq!(op_agg.totals, io(1, 4));
        // The phase shows up under the inherited scheme tag.
        let ((scheme, label), p_agg) = &r.phases[0];
        assert_eq!((scheme.as_str(), label.as_str()), ("W-BOX", "split"));
        assert_eq!(p_agg.totals, io(0, 3));
        // Two closed spans in the ring, child first.
        assert_eq!(r.events.len(), 2);
        assert!(r.events[0].phase && !r.events[1].phase);
        assert!(r.events[0].end_tick < r.events[1].end_tick);
    }

    #[test]
    fn identity_attributed_plus_unattributed() {
        let _guard = serial();
        reset();
        record(Counter::Alloc, 1);
        {
            let _op = OpSpan::op("B-BOX", "delete");
            record(Counter::BlockRead, 5);
            record(Counter::Retry, 2);
        }
        let mut total = attributed();
        total.merge(&unattributed());
        assert_eq!(total, observed());
        assert_eq!(total.allocs, 1);
        assert_eq!(total.reads, 5);
        assert_eq!(total.retries, 2);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let _guard = serial();
        reset();
        set_event_capacity(4);
        for _ in 0..10 {
            let _s = OpSpan::op("LIDF", "read");
        }
        let r = report();
        assert_eq!(r.events.len(), 4);
        assert_eq!(r.dropped_events, 6);
        set_event_capacity(DEFAULT_EVENT_CAPACITY);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 1);
        assert_eq!(log2_bucket(4), 2);
        assert_eq!(log2_bucket(1 << 15), 15);
    }

    #[test]
    fn json_is_stable_and_wellformed() {
        let _guard = serial();
        reset();
        {
            let _op = OpSpan::op("W-BOX", "lookup");
            record(Counter::BlockRead, 2);
            record(Counter::CacheHit, 1);
        }
        let a = report().to_json();
        let b = report().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"boxes-trace/2\""));
        assert!(a.contains("\"scheme\":\"W-BOX\""));
        assert!(a.contains("\"cache_hits\":1"));
        assert!(a.contains("\"sessions\":["));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn session_owns_spans_and_bare_events_on_its_thread() {
        let _guard = serial();
        reset();
        let counters = {
            let session = TraceSession::begin("reader");
            assert!(session.id() > 0);
            {
                let _op = OpSpan::op("W-BOX", "lookup");
                record(Counter::BlockRead, 3);
                {
                    let _p = OpSpan::phase("descend");
                    record(Counter::CacheHit, 2);
                }
            }
            // Span-less events on a bound thread still land in the
            // session (and in the global unattributed tally).
            record(Counter::WalSync, 1);
            session.counters()
        };
        assert_eq!(counters.reads, 3);
        assert_eq!(counters.cache_hits, 2);
        assert_eq!(counters.wal_syncs, 1);
        assert_eq!(unattributed().wal_syncs, 1);
        let r = report();
        assert_eq!(r.sessions.len(), 1);
        assert_eq!(r.sessions[0].label, "reader");
        assert!(!r.sessions[0].open);
        assert_eq!(r.sessions[0].counters, counters);
    }

    #[test]
    fn sessions_partition_events_across_threads() {
        let _guard = serial();
        reset();
        let a = TraceSession::begin("writer");
        {
            let _op = OpSpan::op("W-BOX", "insert");
            record(Counter::BlockWrite, 4);
        }
        let b_id = std::thread::spawn(|| {
            let b = TraceSession::begin("reader");
            let _op = OpSpan::op("W-BOX", "lookup");
            record(Counter::BlockRead, 2);
            b.id()
        })
        .join()
        .expect("reader thread");
        assert_eq!(a.counters(), io(0, 4));
        assert_eq!(session_counters(b_id), Some(io(2, 0)));
        // Global identity still closes across both sessions.
        assert_eq!(observed(), io(2, 4));
        assert_eq!(open_spans(), 0);
    }

    #[test]
    fn unbound_threads_tally_to_no_session() {
        let _guard = serial();
        reset();
        {
            let _op = OpSpan::op("LIDF", "read");
            record(Counter::BlockRead, 1);
        }
        let r = report();
        assert!(r.sessions.is_empty());
        assert_eq!(attributed(), io(1, 0));
    }

    #[test]
    fn out_of_order_close_is_tolerated() {
        let _guard = serial();
        reset();
        let a = OpSpan::op("W-BOX", "a");
        let b = OpSpan::op("W-BOX", "b");
        record(Counter::BlockRead, 1);
        drop(a);
        record(Counter::BlockWrite, 1);
        drop(b);
        let r = report();
        assert_eq!(r.open_spans, 0);
        assert_eq!(r.out_of_order_closes, 1);
        assert_eq!(observed(), io(1, 1));
    }
}
