//! Subtree insertion and deletion for W-BOX (§4).
//!
//! Both operations rebuild the lowest ancestor that can absorb the change
//! while every node above it keeps its weight constraint:
//!
//! * **Insert**: find the lowest ancestor v with w(v) + N′ below its bound
//!   (growing the root first if even the root cannot absorb N′), then
//!   rebuild v's subtree around the insertion point. Existing leaves keep
//!   their blocks — only their `range_lo` headers are rewritten — so the
//!   LIDF is updated only for the insertion leaf's moved suffix and the new
//!   records, the optimization the paper calls out. O((N + N′)/B) worst case.
//! * **Delete**: all doomed labels are contiguous; drop whole leaves inside
//!   the range, trim the two boundary leaves, and rebuild the lowest
//!   ancestor whose remaining weight still satisfies the constraint (the
//!   whole tree in the worst case, O(N/B)).

use crate::build::{chunk_records, LeafUnit};
use crate::node::{LeafRecord, WNode};
use crate::tree::WBox;
use boxes_lidf::{BlockPtrRecord, Lid};
use boxes_pager::BlockId;
use boxes_trace::OpSpan;

impl WBox {
    /// Insert `n_tags` new labels immediately before `lid_old` as one bulk
    /// operation. Returns the new LIDs in document order.
    pub fn insert_subtree_before(&mut self, lid_old: Lid, n_tags: usize) -> Vec<Lid> {
        let _span = OpSpan::op(self.trace_tag(), "subtree_insert");
        self.journaled(|t| t.insert_subtree_impl(lid_old, n_tags, None))
    }

    /// Pair-mode bulk insert: `partner_of[i]` is the index (within the new
    /// batch) of tag i's partner tag.
    pub fn insert_subtree_before_pairs(&mut self, lid_old: Lid, partner_of: &[usize]) -> Vec<Lid> {
        assert!(self.config().pair, "pair wiring requires pair mode");
        let _span = OpSpan::op(self.trace_tag(), "subtree_insert");
        self.journaled(|t| t.insert_subtree_impl(lid_old, partner_of.len(), Some(partner_of)))
    }

    fn insert_subtree_impl(
        &mut self,
        lid_old: Lid,
        n_tags: usize,
        partner_of: Option<&[usize]>,
    ) -> Vec<Lid> {
        if n_tags == 0 {
            return Vec::new();
        }
        if self.height() == 1 {
            // Tiny tree: element-at-a-time (then wire pairs if asked).
            let lids: Vec<Lid> = (0..n_tags).map(|_| self.insert_before(lid_old)).collect();
            if let Some(p) = partner_of {
                for (i, &j) in p.iter().enumerate() {
                    if i < j {
                        self.wire_pair(lids[i], lids[j]);
                    }
                }
            }
            return lids;
        }

        // Choose v: the lowest strict ancestor of the insertion leaf such
        // that every node from the root down to v can absorb N′ more weight.
        // Grow the root as long as even the root cannot.
        let (path, v_idx) = loop {
            let leaf_id = self.lidf_ref().read(lid_old).block;
            let leaf = self.read_node(leaf_id);
            let label = leaf.range_lo() + leaf.position_of_lid(lid_old) as u64;
            let path = self.descend(label);
            if path[0].node.weight() + n_tags as u64 >= self.config().max_weight(path[0].level) {
                let step = &path[0];
                self.grow_root_for_bulk(step);
                continue;
            }
            // Longest prefix of fitting ancestors; v must be internal.
            let mut v_idx = 0;
            for (j, step) in path.iter().enumerate() {
                if step.node.is_leaf()
                    || step.node.weight() + n_tags as u64 >= self.config().max_weight(step.level)
                {
                    break;
                }
                v_idx = j;
            }
            break (path, v_idx);
        };

        let v = &path[v_idx];
        let v_id = v.id;
        let v_level = v.level;
        let v_lo = v.range_lo;
        let u_id = path.last().expect("leaf step").id;

        // Allocate LIDF records for the new labels (block pointers are set
        // by the rebuild's repoint pass).
        let placeholders = vec![BlockPtrRecord::new(BlockId::INVALID); n_tags];
        let new_lids = self.lidf().bulk_append(&placeholders);
        let mut new_recs: Vec<LeafRecord> =
            new_lids.iter().map(|&l| LeafRecord::plain(l)).collect();
        if let Some(p) = partner_of {
            for (i, r) in new_recs.iter_mut().enumerate() {
                r.is_start = i < p[i];
                r.partner_lid = new_lids[p[i]];
            }
        }

        // Collect v's leaves in order, splitting the insertion leaf around
        // the anchor; old internal nodes below v are freed (the rebuild
        // allocates replacements).
        let mut units: Vec<LeafUnit> = Vec::new();
        let mut internal_to_free: Vec<BlockId> = Vec::new();
        self.collect_units(
            v_id,
            v_id,
            &mut |this, id, node| {
                if id != u_id {
                    units.push(keep_unit(id, node));
                    return;
                }
                let pos = node.position_of_lid(lid_old);
                let (range_lo, tombstones, recs) = explode_leaf(node);
                let _ = range_lo;
                let mut prefix = recs;
                let suffix = prefix.split_off(pos);
                if !prefix.is_empty() {
                    units.push(LeafUnit {
                        block: Some(id),
                        tombstones,
                        recs: prefix,
                    });
                } else if tombstones > 0 {
                    // Keep the tombstone weight attached to the first new unit.
                    units.push(LeafUnit {
                        block: Some(id),
                        tombstones,
                        recs: Vec::new(),
                    });
                } else {
                    this.pager().free(id);
                }
                for unit in chunk_records(
                    std::mem::take(&mut new_recs),
                    this.config().leaf_capacity(),
                    this.config().min_weight(0),
                ) {
                    units.push(unit);
                }
                if !suffix.is_empty() {
                    units.push(LeafUnit::fresh(suffix));
                }
            },
            &mut internal_to_free,
        );
        for id in internal_to_free {
            self.pager().free(id);
        }

        let mut dropped = Vec::new();
        let units = normalize_units(
            units,
            self.config().leaf_capacity(),
            self.config().min_weight(0),
            &mut dropped,
        );
        for id in dropped {
            self.pager().free(id);
        }
        self.build_at_level(units, v_level, v_id, v_lo);
        self.add_live(n_tags as i64);

        // Ancestors above v absorb the added weight.
        for step in path.iter().take(v_idx) {
            let mut step_node = step.node.clone();
            let e = &mut step_node.entries_mut()[step.child_pos];
            e.weight += n_tags as u64;
            e.size += n_tags as u64;
            self.write_node(step.id, &step_node);
        }
        new_lids
    }

    /// Grow the root for a bulk insertion (same as the single-insert grow).
    fn grow_root_for_bulk(&mut self, old_root_step: &crate::tree::PathStep) {
        self.grow_root(old_root_step);
    }

    /// Delete every label in the inclusive range spanned by `start_lid`
    /// and `end_lid`, reclaiming blocks and LIDF records.
    pub fn delete_subtree(&mut self, start_lid: Lid, end_lid: Lid) {
        let _span = OpSpan::op(self.trace_tag(), "subtree_delete");
        self.journaled(|t| t.delete_subtree_impl(start_lid, end_lid));
    }

    fn delete_subtree_impl(&mut self, start_lid: Lid, end_lid: Lid) {
        let l_s = self.lookup(start_lid);
        let l_e = self.lookup(end_lid);
        assert!(l_s < l_e, "subtree endpoints out of order");
        let path = self.descend(l_s);

        // Lowest common ancestor: the deepest path node whose range also
        // covers l_e.
        let lca_idx = (0..path.len())
            .rev()
            .find(|&j| {
                let step = &path[j];
                l_e < step.range_lo + self.config().range_len(step.level)
            })
            .expect("the root covers everything");

        // Count what the range removes (live records and tombstones of
        // fully covered leaves) with one walk below the LCA.
        let (live_deleted, weight_removed) = self.count_range(path[lca_idx].id, l_s, l_e);

        // Choose v: the deepest node at or above the LCA such that every
        // non-root node from v to the root keeps its minimum weight.
        let fits = |j: usize| -> bool {
            (0..=j).all(|t| {
                let step = &path[t];
                let remaining = step.node.weight() - weight_removed;
                t == 0 || remaining > self.config().min_weight(step.level)
            })
        };
        let v_idx = (0..=lca_idx).rev().find(|&j| fits(j)).unwrap_or(0);

        // Collect survivors under v, freeing doomed leaves and LIDs.
        let v = &path[v_idx];
        let (v_id, v_level, v_lo) = (v.id, v.level, v.range_lo);
        let mut units: Vec<LeafUnit> = Vec::new();
        let mut doomed_lids: Vec<Lid> = Vec::new();
        let mut internal_to_free: Vec<BlockId> = Vec::new();
        self.collect_units(
            v_id,
            v_id,
            &mut |this, id, node| {
                let lo = node.range_lo();
                let n = node.recs().len() as u64;
                if lo > l_e || lo + n <= l_s || n == 0 {
                    units.push(keep_unit(id, node));
                    return;
                }
                let (_, tombstones, recs) = explode_leaf(node);
                let survivors: Vec<LeafRecord> = recs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| {
                        let label = lo + i as u64;
                        if label >= l_s && label <= l_e {
                            doomed_lids.push(r.lid);
                            None
                        } else {
                            Some(*r)
                        }
                    })
                    .collect();
                if survivors.is_empty() {
                    // Fully covered: the leaf goes away, tombstones included —
                    // `count_range` charges their weight to the ancestors.
                    this.pager().free(id);
                } else {
                    units.push(LeafUnit {
                        block: Some(id),
                        tombstones,
                        recs: survivors,
                    });
                }
            },
            &mut internal_to_free,
        );
        for id in internal_to_free {
            self.pager().free(id);
        }
        debug_assert_eq!(doomed_lids.len() as u64, live_deleted);
        self.lidf().free_batch(doomed_lids);
        self.add_live(-(live_deleted as i64));

        let mut dropped = Vec::new();
        let units = normalize_units(
            units,
            self.config().leaf_capacity(),
            self.config().min_weight(0),
            &mut dropped,
        );
        for id in dropped {
            self.pager().free(id);
        }

        if v_idx == 0 {
            // Rebuild from the root: height may change. A leaf root either
            // survives inside `units` (keeping its block) or was already
            // freed by the collection pass; an internal root is replaced.
            if path.len() > 1 {
                self.pager().free(v_id);
            }
            if units.is_empty() {
                let root = self.pager().alloc();
                self.write_node(root, &WNode::leaf(0));
                self.set_root(root, 1);
                let live = self.len();
                self.set_live(live);
                return;
            }
            let (root, height) = self.build_auto(units);
            self.set_root(root, height);
            let live = self.len();
            self.set_live(live);
            return;
        }
        self.build_at_level(units, v_level, v_id, v_lo);
        for step in path.iter().take(v_idx) {
            let mut step_node = step.node.clone();
            let e = &mut step_node.entries_mut()[step.child_pos];
            e.weight -= weight_removed;
            e.size -= live_deleted;
            self.write_node(step.id, &step_node);
        }
    }

    /// Walk the subtree of `id`, invoking `on_leaf` for every leaf in
    /// document order and accumulating internal node ids (excluding
    /// `keep_top`) for the caller to free.
    fn collect_units(
        &mut self,
        id: BlockId,
        keep_top: BlockId,
        on_leaf: &mut impl FnMut(&mut Self, BlockId, WNode),
        internal_to_free: &mut Vec<BlockId>,
    ) {
        match self.read_node(id) {
            node @ WNode::Leaf { .. } => on_leaf(self, id, node),
            WNode::Internal { entries } => {
                for e in entries {
                    self.collect_units(e.child, keep_top, on_leaf, internal_to_free);
                }
                if id != keep_top {
                    internal_to_free.push(id);
                }
            }
        }
    }

    /// Count live records inside [l_s, l_e] plus the tombstones of leaves
    /// fully covered by the range (their blocks will be dropped). Returns
    /// (live_deleted, weight_removed).
    fn count_range(&self, id: BlockId, l_s: u64, l_e: u64) -> (u64, u64) {
        let mut live = 0u64;
        let mut weight = 0u64;
        self.count_range_rec(id, l_s, l_e, &mut live, &mut weight);
        (live, weight)
    }

    fn count_range_rec(&self, id: BlockId, l_s: u64, l_e: u64, live: &mut u64, weight: &mut u64) {
        match self.read_node(id) {
            WNode::Leaf {
                range_lo,
                tombstones,
                recs,
            } => {
                let n = recs.len() as u64;
                if range_lo > l_e || range_lo + n <= l_s {
                    return;
                }
                let from = l_s.saturating_sub(range_lo).min(n);
                let to = (l_e - range_lo + 1).min(n);
                let covered = to.saturating_sub(from);
                *live += covered;
                *weight += covered;
                if covered == n {
                    // The whole leaf goes away, tombstones included.
                    *weight += tombstones as u64;
                }
            }
            WNode::Internal { entries } => {
                for e in entries {
                    self.count_range_rec(e.child, l_s, l_e, live, weight);
                }
            }
        }
    }
}

fn keep_unit(id: BlockId, node: WNode) -> LeafUnit {
    let (_, tombstones, recs) = explode_leaf(node);
    LeafUnit {
        block: Some(id),
        tombstones,
        recs,
    }
}

fn explode_leaf(node: WNode) -> (u64, u16, Vec<LeafRecord>) {
    match node {
        WNode::Leaf {
            range_lo,
            tombstones,
            recs,
        } => (range_lo, tombstones, recs),
        _ => panic!("expected a leaf"),
    }
}

/// Merge too-light units into neighbors (splitting when the result would
/// overflow a leaf). Merged units lose their block identity (the abandoned
/// blocks are pushed to `dropped` for the caller to free) and their records
/// are re-pointed by the builder.
fn normalize_units(
    units: Vec<LeafUnit>,
    cap: usize,
    min_excl: u64,
    dropped: &mut Vec<BlockId>,
) -> Vec<LeafUnit> {
    let mut out: Vec<LeafUnit> = Vec::with_capacity(units.len());
    let merge = |a: LeafUnit, b: LeafUnit, out: &mut Vec<LeafUnit>, dropped: &mut Vec<BlockId>| {
        dropped.extend(a.block);
        dropped.extend(b.block);
        let tombstones = a.tombstones + b.tombstones;
        let mut recs = a.recs;
        recs.extend(b.recs);
        // The merged *weight* (live + tombstones) must stay within the
        // 2k − 1 bound; split evenly (records and tombstone counts both)
        // when it does not.
        if recs.len() + tombstones as usize <= cap {
            out.push(LeafUnit {
                block: None,
                tombstones,
                recs,
            });
        } else {
            let half = recs.len().div_ceil(2);
            let tail = recs.split_off(half);
            let t1 = tombstones / 2;
            out.push(LeafUnit {
                block: None,
                tombstones: t1,
                recs,
            });
            out.push(LeafUnit {
                block: None,
                tombstones: tombstones - t1,
                recs: tail,
            });
        }
    };
    for unit in units {
        if unit.weight() == 0 {
            dropped.extend(unit.block);
            continue;
        }
        let fine = unit.weight() > min_excl && unit.weight() <= cap as u64;
        if fine || out.is_empty() {
            out.push(unit);
            continue;
        }
        let prev = out.pop().expect("checked non-empty");
        merge(prev, unit, &mut out, dropped);
    }
    // The first unit may itself be too light (it never had a left
    // neighbor to merge into): fold units forward until it is legal.
    while out.len() >= 2 && out[0].weight() <= min_excl {
        let first = out.remove(0);
        let second = out.remove(0);
        let mut head = Vec::new();
        merge(first, second, &mut head, dropped);
        for (i, u) in head.into_iter().enumerate() {
            out.insert(i, u);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WBoxConfig;

    use boxes_pager::{Pager, PagerConfig};

    fn make(ordinal: bool) -> WBox {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        let mut c = WBoxConfig::small_for_tests();
        if ordinal {
            c = c.with_ordinal();
        }
        WBox::new(pager, c)
    }

    fn assert_order(w: &WBox, lids: &[Lid]) {
        let labels: Vec<u64> = lids.iter().map(|&l| w.lookup(l)).collect();
        for (i, win) in labels.windows(2).enumerate() {
            assert!(win[0] < win[1], "order violated at {i}");
        }
    }

    #[test]
    fn subtree_insert_in_the_middle() {
        for ordinal in [false, true] {
            let mut w = make(ordinal);
            let base = w.bulk_load(800);
            let sub = w.insert_subtree_before(base[400], 120);
            assert_eq!(w.len(), 920, "ordinal={ordinal}");
            let mut all = base[..400].to_vec();
            all.extend(&sub);
            all.extend(&base[400..]);
            assert_eq!(w.iter_lids(), all);
            assert_order(&w, &all);
            w.validate();
        }
    }

    #[test]
    fn subtree_insert_at_document_start() {
        let mut w = make(true);
        let base = w.bulk_load(300);
        let sub = w.insert_subtree_before(base[0], 50);
        let mut all = sub.clone();
        all.extend(&base);
        assert_eq!(w.iter_lids(), all);
        for (i, &lid) in all.iter().enumerate().step_by(29) {
            assert_eq!(w.ordinal_of(lid), i as u64);
        }
        w.validate();
    }

    #[test]
    fn subtree_insert_grows_root_when_needed() {
        let mut w = make(false);
        let base = w.bulk_load(60);
        let before_height = w.height();
        let sub = w.insert_subtree_before(base[30], 2_000);
        assert!(w.height() > before_height);
        assert_eq!(w.len(), 2_060);
        assert_eq!(sub.len(), 2_000);
        w.validate();
    }

    #[test]
    fn subtree_insert_keeps_untouched_leaf_blocks() {
        let mut w = make(false);
        let base = w.bulk_load(3_000);
        let pager = w.pager().clone();
        // A far-away record's LIDF entry must not be rewritten by the bulk
        // insert (the paper's block-preserving optimization).
        let far_block = {
            let before = pager.stats();
            let _ = w.lookup(base[2_900]);
            let d = pager.stats().since(&before);
            assert_eq!(d.total(), 2);
            // remember where it lives
            w.lookup(base[2_900])
        };
        w.insert_subtree_before(base[10], 100);
        assert_eq!(
            w.lookup(base[2_900]),
            far_block,
            "distant labels survive a localized subtree insert"
        );
        w.validate();
    }

    #[test]
    fn subtree_insert_cheaper_than_loose_inserts() {
        let mut bulk = make(false);
        let base = bulk.bulk_load(5_000);
        let pager = bulk.pager().clone();
        let before = pager.stats();
        bulk.insert_subtree_before(base[2_500], 1_000);
        let bulk_cost = pager.stats().since(&before).total();
        bulk.validate();

        let mut loose = make(false);
        let base = loose.bulk_load(5_000);
        let pager = loose.pager().clone();
        let before = pager.stats();
        for _ in 0..1_000 {
            loose.insert_before(base[2_500]);
        }
        let loose_cost = pager.stats().since(&before).total();
        assert!(
            bulk_cost * 3 < loose_cost,
            "bulk {bulk_cost} vs element-at-a-time {loose_cost}"
        );
    }

    #[test]
    fn subtree_delete_middle_range() {
        for ordinal in [false, true] {
            let mut w = make(ordinal);
            let base = w.bulk_load(900);
            w.delete_subtree(base[200], base[699]);
            assert_eq!(w.len(), 400, "ordinal={ordinal}");
            let mut rest = base[..200].to_vec();
            rest.extend(&base[700..]);
            assert_eq!(w.iter_lids(), rest);
            assert_order(&w, &rest);
            w.validate();
        }
    }

    #[test]
    fn subtree_delete_within_one_leaf() {
        let mut w = make(true);
        let base = w.bulk_load(100);
        w.delete_subtree(base[1], base[4]);
        assert_eq!(w.len(), 96);
        let mut rest = vec![base[0]];
        rest.extend(&base[5..]);
        assert_eq!(w.iter_lids(), rest);
        w.validate();
    }

    #[test]
    fn subtree_delete_almost_everything_rebuilds_root() {
        let mut w = make(false);
        let base = w.bulk_load(2_000);
        let tall = w.height();
        w.delete_subtree(base[1], base[1_998]);
        assert_eq!(w.len(), 2);
        assert!(w.height() < tall, "tree collapsed");
        assert_eq!(w.iter_lids(), vec![base[0], base[1_999]]);
        w.validate();
    }

    #[test]
    fn subtree_delete_matches_loose_deletes() {
        let mut bulk = make(true);
        let a = bulk.bulk_load(400);
        bulk.delete_subtree(a[50], a[349]);
        bulk.validate();

        let mut loose = make(true);
        let b = loose.bulk_load(400);
        for &lid in &b[50..350] {
            loose.delete(lid);
        }
        loose.validate();
        assert_eq!(bulk.len(), loose.len());
        let pos_a: Vec<usize> = bulk
            .iter_lids()
            .iter()
            .map(|l| a.iter().position(|x| x == l).unwrap())
            .collect();
        let pos_b: Vec<usize> = loose
            .iter_lids()
            .iter()
            .map(|l| b.iter().position(|x| x == l).unwrap())
            .collect();
        assert_eq!(pos_a, pos_b);
    }

    #[test]
    fn interleaved_subtree_ops_stay_consistent() {
        let mut w = make(true);
        let base = w.bulk_load(400);
        let s1 = w.insert_subtree_before(base[200], 150);
        w.validate();
        w.delete_subtree(s1[20], s1[129]);
        w.validate();
        let _s2 = w.insert_subtree_before(base[300], 60);
        w.validate();
        assert_eq!(w.len(), 400 + 150 - 110 + 60);
        let all = w.iter_lids();
        assert_order(&w, &all);
    }

    #[test]
    fn subtree_ops_reclaim_lidf_slots() {
        let mut w = make(false);
        let base = w.bulk_load(500);
        w.delete_subtree(base[100], base[399]);
        // Freed LIDs come back through the free list.
        let reused = w.insert_before(base[400]);
        assert!(reused.0 < 500, "recycled a freed LIDF slot: {reused:?}");
        w.validate();
    }
}
