#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! W-BOX: the Weight-balanced B-tree for Ordering XML (§4 of the paper).
//!
//! W-BOX materializes label values but bounds relabeling cost by storing
//! them in a *weight-balanced* B-tree (after Arge–Vitter, with the paper's
//! modified constraints): a node at level `i` has weight strictly below
//! `2·aⁱ·k` and (non-root) strictly above `aⁱ·k − 2·aⁱ⁻¹·k`. Every node owns
//! a contiguous label range; a node's range divides into `b` equal subranges
//! from which its children are assigned. Within a leaf, labels are *ordinal*
//! in the leaf's range (the i-th live record holds `range_lo + i`) — the
//! invariant §6's logging relies on, and what makes a leaf's labels implicit
//! in its block.
//!
//! Consequences, all reproduced here:
//! * [`WBox::lookup`] costs exactly one index I/O after the LIDF hop
//!   (Theorem 4.5) — the label is computed from the leaf alone.
//! * Inserts descend once to maintain weights; a weight violation splits
//!   the node, reassigning subranges and relabeling only the moved half —
//!   or, when both adjacent subranges are taken, respacing all of the
//!   parent's children (amortized O(log_B N), Theorem 4.6 via Lemma 4.2).
//! * Deletes tombstone the record and use *global rebuilding* every N/2
//!   deletions (amortized O(1)).
//! * Ordinal labeling is served by per-entry `size` fields (live counts).
//! * Bulk load is a single O(N/B) pass; subtree insert/delete rebuild the
//!   lowest ancestor with room, keeping surviving leaves in their blocks so
//!   LIDF records stay valid.
//! * The W-BOX-O variant ([`WBoxConfig::with_pair_optimization`]) lets a
//!   start record answer for both labels of its element in one leaf I/O, at
//!   the maintenance cost bounded by the XML document depth (Theorem 4.7).
//!
//! # Example
//!
//! ```
//! use boxes_wbox::{WBox, WBoxConfig};
//! use boxes_pager::{Pager, PagerConfig};
//!
//! let pager = Pager::new(PagerConfig::with_block_size(1024));
//! let mut wbox = WBox::new(pager, WBoxConfig::small_for_tests());
//! let lids = wbox.bulk_load(100);
//! let new = wbox.insert_before(lids[50]);
//! assert!(wbox.lookup(lids[49]) < wbox.lookup(new));
//! assert!(wbox.lookup(new) < wbox.lookup(lids[50]));
//! ```

mod audit;
mod build;
mod config;
mod node;
mod pairs;
mod subtree;
mod tree;

pub use config::WBoxConfig;
pub use tree::{WBox, WBoxCounters};
