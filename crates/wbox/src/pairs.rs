//! W-BOX-O: the start/end pair optimization (§4, "Further optimization for
//! start/end pairs").
//!
//! In pair mode each leaf record knows its partner (the other label of the
//! same element) by LID and block, and each **start** record caches the
//! current value of its element's end label. A pair lookup then costs two
//! I/Os total (LIDF + one leaf) instead of four.
//!
//! The price is maintenance, reproduced here exactly as the paper bounds it:
//!
//! * when a leaf split relocates records, the partners of the moved records
//!   must have their block pointers rewritten — O(B), amortized O(1);
//! * when a range R is relabeled, the start records *outside* R caching end
//!   labels *inside* R must be refreshed. Those elements all contain R's
//!   left endpoint, so they lie on one root-to-leaf path of the XML tree:
//!   at most D of them (Theorem 4.7's O(D + log_B N) insert bound).

use crate::node::WNode;
use crate::tree::WBox;
use boxes_lidf::Lid;
use boxes_pager::codec::usize_to_u64;
use boxes_pager::BlockId;
use std::collections::HashMap;

impl WBox {
    /// Write a leaf after records at positions ≥ `first_changed` shifted
    /// (their labels changed under the leaf-ordinal rule). In pair mode the
    /// partners of shifted **end** records get their cached end labels
    /// refreshed — locally when the partner shares this leaf, remotely
    /// otherwise.
    pub(crate) fn write_leaf_after_shift(
        &mut self,
        id: BlockId,
        node: &WNode,
        first_changed: usize,
    ) {
        if !self.config().pair {
            self.write_node(id, node);
            return;
        }
        let mut node = node.clone();
        let range_lo = node.range_lo();
        let snapshot = node.recs().clone();
        let mut remote: Vec<(BlockId, Lid, u64)> = Vec::new();
        for (i, r) in snapshot.iter().enumerate().skip(first_changed) {
            if !r.is_start && r.partner_lid != Lid::INVALID {
                let new_label = range_lo + usize_to_u64(i);
                if r.partner == id {
                    if let Some(p) = node.recs_mut().iter_mut().find(|x| x.lid == r.partner_lid) {
                        p.end_cache = new_label;
                    }
                } else {
                    remote.push((r.partner, r.partner_lid, new_label));
                }
            }
        }
        self.write_node(id, &node);
        self.apply_end_cache_fixes(remote);
    }

    /// Apply deferred end-cache refreshes, grouped by block.
    pub(crate) fn apply_end_cache_fixes(&mut self, mut fixes: Vec<(BlockId, Lid, u64)>) {
        fixes.sort_by_key(|(b, _, _)| *b);
        let mut i = 0;
        while i < fixes.len() {
            let block = fixes[i].0;
            let mut node = self.read_node(block);
            while i < fixes.len() && fixes[i].0 == block {
                let (_, lid, label) = fixes[i];
                if let Some(r) = node.recs_mut().iter_mut().find(|r| r.lid == lid) {
                    debug_assert!(r.is_start, "end caches live on start records");
                    r.end_cache = label;
                }
                i += 1;
            }
            self.write_node(block, &node);
        }
    }

    /// After relocating the records of `moved` from `old_id` into `new_id`
    /// (a leaf split), rewrite the partner block pointers that named the
    /// old location. Partners inside either half are fixed in memory by the
    /// caller's subsequent writes; this handles the in-memory updates plus
    /// the remote ones.
    ///
    /// Must be called *before* the final writes of `kept` and `moved`; it
    /// mutates both.
    pub(crate) fn fix_partner_blocks_for_split(
        &mut self,
        kept: &mut WNode,
        old_id: BlockId,
        moved: &mut WNode,
        new_id: BlockId,
    ) {
        if !self.config().pair {
            return;
        }
        let moved_lids: std::collections::HashSet<Lid> =
            moved.recs().iter().map(|r| r.lid).collect();
        let mut remote: Vec<(BlockId, Lid)> = Vec::new();
        let partners: Vec<(Lid, BlockId)> = moved
            .recs()
            .iter()
            .filter(|r| r.partner_lid != Lid::INVALID)
            .map(|r| (r.partner_lid, r.partner))
            .collect();
        for r in moved.recs_mut().iter_mut() {
            if r.partner_lid != Lid::INVALID && moved_lids.contains(&r.partner_lid) {
                // Both halves of the pair moved together.
                r.partner = new_id;
            }
        }
        for (partner_lid, partner_block) in partners {
            if moved_lids.contains(&partner_lid) {
                continue; // handled above
            }
            if partner_block == old_id {
                if let Some(p) = kept.recs_mut().iter_mut().find(|p| p.lid == partner_lid) {
                    p.partner = new_id;
                }
            } else {
                remote.push((partner_block, partner_lid));
            }
        }
        // Remote partners: rewrite their block pointers, grouped by block.
        let mut remote_fixes = remote;
        remote_fixes.sort_by_key(|(b, _)| *b);
        let mut i = 0;
        while i < remote_fixes.len() {
            let block = remote_fixes[i].0;
            let mut node = self.read_node(block);
            while i < remote_fixes.len() && remote_fixes[i].0 == block {
                let (_, lid) = remote_fixes[i];
                if let Some(r) = node.recs_mut().iter_mut().find(|r| r.lid == lid) {
                    r.partner = new_id;
                }
                i += 1;
            }
            self.write_node(block, &node);
        }
    }

    /// Cross-link the two labels of one element and prime the end cache.
    pub(crate) fn wire_pair(&mut self, start: Lid, end: Lid) {
        let start_block = self.lidf_ref().read(start).block;
        let end_block = self.lidf_ref().read(end).block;
        let mut snode = self.read_node(start_block);
        let end_label = if end_block == start_block {
            let pos = snode.position_of_lid(end);
            snode.range_lo() + usize_to_u64(pos)
        } else {
            let enode = self.read_node(end_block);
            enode.range_lo() + usize_to_u64(enode.position_of_lid(end))
        };
        {
            let pos = snode.position_of_lid(start);
            let r = &mut snode.recs_mut()[pos];
            r.is_start = true;
            r.partner_lid = end;
            r.partner = end_block;
            r.end_cache = end_label;
        }
        if end_block == start_block {
            let pos = snode.position_of_lid(end);
            let r = &mut snode.recs_mut()[pos];
            r.is_start = false;
            r.partner_lid = start;
            r.partner = start_block;
            self.write_node(start_block, &snode);
        } else {
            self.write_node(start_block, &snode);
            let mut enode = self.read_node(end_block);
            let pos = enode.position_of_lid(end);
            let r = &mut enode.recs_mut()[pos];
            r.is_start = false;
            r.partner_lid = start;
            r.partner = start_block;
            self.write_node(end_block, &enode);
        }
    }

    /// Both labels of an element from its start LID in **two I/Os** (one
    /// LIDF read + one leaf read) — the W-BOX-O payoff.
    pub fn pair_lookup(&self, start_lid: Lid) -> (u64, u64) {
        assert!(
            self.config().pair,
            "pair_lookup requires WBoxConfig::with_pair_optimization"
        );
        let _span = boxes_trace::OpSpan::op(self.trace_tag(), "pair_lookup");
        let block = self.lidf_ref().read(start_lid).block;
        let node = self.read_node(block);
        let pos = node.position_of_lid(start_lid);
        let r = &node.recs()[pos];
        assert!(r.is_start, "pair_lookup takes a start label");
        (node.range_lo() + usize_to_u64(pos), r.end_cache)
    }

    /// Recompute partner blocks and end caches for a fully materialized
    /// record set (used by bulk builds): `placed` maps every LID to its
    /// (block, label).
    pub(crate) fn refresh_pair_fields(
        recs: &mut [crate::node::LeafRecord],
        placed: &HashMap<Lid, (BlockId, u64)>,
    ) {
        for r in recs.iter_mut() {
            if r.partner_lid == Lid::INVALID {
                continue;
            }
            if let Some(&(block, label)) = placed.get(&r.partner_lid) {
                r.partner = block;
                if r.is_start {
                    r.end_cache = label;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::WBoxConfig;
    use crate::tree::WBox;
    use boxes_lidf::Lid;
    use boxes_pager::{Pager, PagerConfig};

    fn make() -> WBox {
        let pager = Pager::new(PagerConfig::with_block_size(512));
        WBox::new(
            pager,
            WBoxConfig::small_for_tests().with_pair_optimization(),
        )
    }

    /// partner map for a flat document: root element wraps n children:
    /// tags = [root_s, c1_s, c1_e, c2_s, c2_e, ..., root_e].
    fn flat_partner_map(children: usize) -> Vec<usize> {
        let total = 2 + 2 * children;
        let mut p = vec![0usize; total];
        p[0] = total - 1;
        p[total - 1] = 0;
        for c in 0..children {
            let s = 1 + 2 * c;
            p[s] = s + 1;
            p[s + 1] = s;
        }
        p
    }

    #[test]
    fn bulk_load_pairs_wires_everything() {
        let mut w = make();
        let lids = w.bulk_load_pairs(&flat_partner_map(200));
        assert_eq!(w.len(), 402);
        w.validate(); // includes the pair-linkage audit
                      // Root pair lookup: both labels in two I/Os.
        let pager = w.pager().clone();
        let before = pager.stats();
        let (s, e) = w.pair_lookup(lids[0]);
        assert_eq!(pager.stats().since(&before).total(), 2, "W-BOX-O payoff");
        assert_eq!(s, w.lookup(lids[0]));
        assert_eq!(e, w.lookup(lids[401]), "cached end label is fresh");
        assert!(s < e);
    }

    #[test]
    fn insert_element_wires_and_survives_shifts() {
        let mut w = make();
        let lids = w.bulk_load_pairs(&flat_partner_map(50));
        // Insert elements as last children of the root (before root end).
        let root_end = lids[101];
        let mut new_elems = Vec::new();
        for _ in 0..120 {
            new_elems.push(w.insert_element_before(root_end));
        }
        w.validate();
        for &(s, e) in &new_elems {
            let (ls, le) = w.pair_lookup(s);
            assert_eq!(ls, w.lookup(s));
            assert_eq!(le, w.lookup(e));
            assert!(ls < le);
        }
    }

    #[test]
    fn caches_survive_relabeling_splits() {
        let mut w = make();
        let lids = w.bulk_load_pairs(&flat_partner_map(100));
        // Hammer inserts just before one child's start tag: the containing
        // ancestors' end labels keep shifting and splits relabel ranges.
        let anchor = lids[51];
        for _ in 0..300 {
            w.insert_element_before(anchor);
        }
        w.validate();
    }

    #[test]
    fn deep_document_caches_stay_fresh() {
        let mut w = make();
        // Nested chain: <a><b><c>...</c></b></a> depth 40.
        let depth = 40usize;
        let total = depth * 2;
        let mut p = vec![0usize; total];
        for d in 0..depth {
            p[d] = total - 1 - d;
            p[total - 1 - d] = d;
        }
        let lids = w.bulk_load_pairs(&p);
        // Insert inside the innermost element repeatedly: every ancestor's
        // end label shifts each time (the paper's D-bounded fix-up case).
        let innermost_end = lids[depth];
        for _ in 0..200 {
            w.insert_element_before(innermost_end);
        }
        w.validate();
        let (s0, e0) = w.pair_lookup(lids[0]);
        assert_eq!(s0, w.lookup(lids[0]));
        assert_eq!(
            e0,
            w.lookup(lids[total - 1]),
            "outermost end label tracks every shift"
        );
    }

    #[test]
    fn pair_lookup_cost_beats_two_lookups() {
        let mut w = make();
        let lids = w.bulk_load_pairs(&flat_partner_map(2_000));
        let pager = w.pager().clone();
        let before = pager.stats();
        w.pair_lookup(lids[0]);
        let pair_cost = pager.stats().since(&before).total();
        let before = pager.stats();
        let _ = (w.lookup(lids[0]), w.lookup(lids[4001]));
        let two_cost = pager.stats().since(&before).total();
        assert!(pair_cost < two_cost);
        assert_eq!(pair_cost, 2);
    }

    #[test]
    fn deletes_keep_pairs_consistent() {
        let mut w = make();
        let lids = w.bulk_load_pairs(&flat_partner_map(80));
        // Delete elements 10..30 (both tags each).
        for c in 10..30 {
            let s = lids[1 + 2 * c];
            let e = lids[2 + 2 * c];
            w.delete(s);
            w.delete(e);
        }
        assert_eq!(w.len(), 162 - 40);
        w.validate();
    }

    #[test]
    fn subtree_insert_pairs_wire_correctly() {
        let mut w = make();
        let lids = w.bulk_load_pairs(&flat_partner_map(300));
        let sub = w.insert_subtree_before_pairs(lids[301], &flat_partner_map(60));
        w.validate();
        let (s, e) = w.pair_lookup(sub[0]);
        assert_eq!(s, w.lookup(sub[0]));
        assert_eq!(e, w.lookup(*sub.last().unwrap()));
        assert!(s < e);
    }

    #[test]
    #[should_panic(expected = "pair_lookup takes a start label")]
    fn pair_lookup_of_end_label_panics() {
        let mut w = make();
        let lids = w.bulk_load_pairs(&flat_partner_map(5));
        w.pair_lookup(*lids.last().unwrap());
    }

    #[test]
    fn plain_records_allowed_in_pair_mode() {
        // insert_before (single label) leaves the record unpaired; pairs
        // validation must tolerate INVALID partners.
        let mut w = make();
        let lids = w.bulk_load_pairs(&flat_partner_map(10));
        let _loose = w.insert_before(lids[5]);
        w.validate();
        let _ = Lid::INVALID;
    }
}
