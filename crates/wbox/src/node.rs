//! On-disk W-BOX node layouts (Figure 3).
//!
//! Leaf header:
//! ```text
//! offset 0   u8   kind (0 = leaf, 1 = internal)
//! offset 1   u16  live record count
//! offset 3   u16  tombstone count (deleted weight still charged, §4)
//! offset 5   u64  range_lo: the leaf's label range starts here; the i-th
//!                 live record's label is range_lo + i (leaf-ordinal rule)
//! ```
//! Leaf entries are LIDs (8 bytes); in W-BOX-O pair mode each entry also
//! carries a start/end flag, the partner record's LID and block, and (on
//! start records) a cached copy of the end label (29 bytes total).
//!
//! Internal header is kind + count; entries hold the child pointer, its
//! subrange index within this node's range, its weight, and its size (live
//! count, maintained for ordinal mode).

use boxes_lidf::Lid;
use boxes_pager::codec::{usize_to_u16, usize_to_u64};
use boxes_pager::{BlockId, Reader, Writer};

/// Bytes of the leaf header.
pub const LEAF_HEADER: usize = 13;
/// Bytes per leaf entry without pair optimization.
pub const LEAF_ENTRY_PLAIN: usize = 8;
/// Bytes per leaf entry with pair optimization
/// (lid + flag + partner lid + partner block + cached end label).
pub const LEAF_ENTRY_PAIR: usize = 29;
/// Bytes of the internal header.
pub const INTERNAL_HEADER: usize = 3;
/// Bytes per internal entry (child + subrange + weight + size).
pub const INTERNAL_ENTRY: usize = 22;

const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;

/// One live leaf record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeafRecord {
    /// The label's immutable ID.
    pub lid: Lid,
    /// Pair mode: whether this is a start label.
    pub is_start: bool,
    /// Pair mode: LID of the element's other label (stable identity).
    pub partner_lid: Lid,
    /// Pair mode: block holding the partner record (fast access without
    /// the LIDF hop).
    pub partner: BlockId,
    /// Pair mode, start records only: cached value of the end label.
    pub end_cache: u64,
}

impl LeafRecord {
    /// Plain record (no pair bookkeeping).
    pub fn plain(lid: Lid) -> Self {
        LeafRecord {
            lid,
            is_start: false,
            partner_lid: Lid::INVALID,
            partner: BlockId::INVALID,
            end_cache: 0,
        }
    }
}

/// One child entry of an internal node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WEntry {
    /// The child block.
    pub child: BlockId,
    /// Which of the parent's b subranges the child owns.
    pub subrange: u16,
    /// Weight: leaf records (live + tombstoned) below this child.
    pub weight: u64,
    /// Size: live records below this child (ordinal mode).
    pub size: u64,
}

/// Decoded W-BOX node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WNode {
    /// Leaf: live records in label order plus a tombstone count.
    Leaf {
        /// First label of the leaf's range.
        range_lo: u64,
        /// Deleted records still counted in weights (global rebuilding).
        tombstones: u16,
        /// Live records; the i-th holds label `range_lo + i`.
        recs: Vec<LeafRecord>,
    },
    /// Internal node: children ordered by subrange index.
    Internal {
        /// Child entries in label order.
        entries: Vec<WEntry>,
    },
}

impl WNode {
    /// Empty leaf owning the range starting at `range_lo`.
    pub fn leaf(range_lo: u64) -> Self {
        WNode::Leaf {
            range_lo,
            tombstones: 0,
            recs: Vec::new(),
        }
    }

    /// Whether this is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, WNode::Leaf { .. })
    }

    /// Weight of this node: leaf records incl. tombstones, or entry sum.
    pub fn weight(&self) -> u64 {
        match self {
            WNode::Leaf {
                recs, tombstones, ..
            } => usize_to_u64(recs.len()) + u64::from(*tombstones),
            WNode::Internal { entries } => entries.iter().map(|e| e.weight).sum(),
        }
    }

    /// Live records below this node.
    pub fn size(&self) -> u64 {
        match self {
            WNode::Leaf { recs, .. } => usize_to_u64(recs.len()),
            WNode::Internal { entries } => entries.iter().map(|e| e.size).sum(),
        }
    }

    /// Leaf records (panics on internal nodes).
    pub fn recs(&self) -> &Vec<LeafRecord> {
        match self {
            WNode::Leaf { recs, .. } => recs,
            _ => panic!("expected a W-BOX leaf"),
        }
    }

    /// Mutable leaf records (panics on internal nodes).
    pub fn recs_mut(&mut self) -> &mut Vec<LeafRecord> {
        match self {
            WNode::Leaf { recs, .. } => recs,
            _ => panic!("expected a W-BOX leaf"),
        }
    }

    /// Leaf range start (panics on internal nodes).
    pub fn range_lo(&self) -> u64 {
        match self {
            WNode::Leaf { range_lo, .. } => *range_lo,
            _ => panic!("expected a W-BOX leaf"),
        }
    }

    /// Internal entries (panics on leaves).
    pub fn entries(&self) -> &Vec<WEntry> {
        match self {
            WNode::Internal { entries } => entries,
            _ => panic!("expected a W-BOX internal node"),
        }
    }

    /// Mutable internal entries (panics on leaves).
    pub fn entries_mut(&mut self) -> &mut Vec<WEntry> {
        match self {
            WNode::Internal { entries } => entries,
            _ => panic!("expected a W-BOX internal node"),
        }
    }

    /// Position of a LID among the leaf's live records.
    pub fn position_of_lid(&self, lid: Lid) -> usize {
        self.recs()
            .iter()
            .position(|r| r.lid == lid)
            .unwrap_or_else(|| panic!("{lid:?} not in this W-BOX leaf"))
    }

    /// Serialize into a block buffer. `pair` selects the leaf entry format.
    pub fn encode(&self, buf: &mut [u8], pair: bool) {
        let mut w = Writer::new(buf);
        match self {
            WNode::Leaf {
                range_lo,
                tombstones,
                recs,
            } => {
                w.u8(KIND_LEAF);
                // A leaf never exceeds the per-block fanout, which is far
                // below u16::MAX for any supported block size.
                w.u16(usize_to_u16(recs.len()).expect("leaf record count exceeds on-disk u16"));
                w.u16(*tombstones);
                w.u64(*range_lo);
                for r in recs {
                    w.u64(r.lid.0);
                    if pair {
                        w.u8(u8::from(r.is_start));
                        w.u64(r.partner_lid.0);
                        w.u32(r.partner.0);
                        w.u64(r.end_cache);
                    }
                }
            }
            WNode::Internal { entries } => {
                w.u8(KIND_INTERNAL);
                // Internal fanout is bounded by the block size, well under
                // the on-disk u16 count field.
                w.u16(
                    usize_to_u16(entries.len()).expect("internal entry count exceeds on-disk u16"),
                );
                for e in entries {
                    w.u32(e.child.0);
                    w.u16(e.subrange);
                    w.u64(e.weight);
                    w.u64(e.size);
                }
            }
        }
    }

    /// Deserialize from a block buffer.
    ///
    /// # Panics
    /// Panics on bytes that do not decode as a node; auditors use
    /// [`WNode::try_decode`] instead.
    pub fn decode(buf: &[u8], pair: bool) -> Self {
        match Self::try_decode(buf, pair) {
            Ok(node) => node,
            Err(e) => panic!("corrupt W-BOX node: {e}"),
        }
    }

    /// Deserialize from a block buffer without panicking: structural
    /// problems (unknown kind byte, an entry count that overruns the block)
    /// come back as a description instead.
    pub fn try_decode(buf: &[u8], pair: bool) -> Result<Self, String> {
        if buf.len() < INTERNAL_HEADER {
            return Err(format!(
                "{}-byte block is smaller than a node header",
                buf.len()
            ));
        }
        let mut r = Reader::new(buf);
        let kind = r.u8();
        let count = usize::from(r.u16());
        match kind {
            KIND_LEAF => {
                let entry = if pair {
                    LEAF_ENTRY_PAIR
                } else {
                    LEAF_ENTRY_PLAIN
                };
                let need = LEAF_HEADER + count * entry;
                if need > buf.len() {
                    return Err(format!(
                        "leaf record count {count} needs {need} bytes, block has {}",
                        buf.len()
                    ));
                }
                let tombstones = r.u16();
                let range_lo = r.u64();
                let recs = (0..count)
                    .map(|_| {
                        let lid = Lid(r.u64());
                        if pair {
                            LeafRecord {
                                lid,
                                is_start: r.u8() != 0,
                                partner_lid: Lid(r.u64()),
                                partner: BlockId(r.u32()),
                                end_cache: r.u64(),
                            }
                        } else {
                            LeafRecord::plain(lid)
                        }
                    })
                    .collect();
                Ok(WNode::Leaf {
                    range_lo,
                    tombstones,
                    recs,
                })
            }
            KIND_INTERNAL => {
                let need = INTERNAL_HEADER + count * INTERNAL_ENTRY;
                if need > buf.len() {
                    return Err(format!(
                        "internal entry count {count} needs {need} bytes, block has {}",
                        buf.len()
                    ));
                }
                let entries = (0..count)
                    .map(|_| WEntry {
                        child: BlockId(r.u32()),
                        subrange: r.u16(),
                        weight: r.u64(),
                        size: r.u64(),
                    })
                    .collect();
                Ok(WNode::Internal { entries })
            }
            k => Err(format!("kind {k}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip_plain() {
        let node = WNode::Leaf {
            range_lo: 42,
            tombstones: 3,
            recs: vec![LeafRecord::plain(Lid(7)), LeafRecord::plain(Lid(9))],
        };
        let mut buf = vec![0u8; 64];
        node.encode(&mut buf, false);
        assert_eq!(WNode::decode(&buf, false), node);
        assert_eq!(node.weight(), 5);
        assert_eq!(node.size(), 2);
    }

    #[test]
    fn leaf_roundtrip_pair() {
        let node = WNode::Leaf {
            range_lo: 100,
            tombstones: 0,
            recs: vec![
                LeafRecord {
                    lid: Lid(1),
                    is_start: true,
                    partner_lid: Lid(2),
                    partner: BlockId(55),
                    end_cache: 117,
                },
                LeafRecord {
                    lid: Lid(2),
                    is_start: false,
                    partner_lid: Lid(1),
                    partner: BlockId(54),
                    end_cache: 0,
                },
            ],
        };
        let mut buf = vec![0u8; 96];
        node.encode(&mut buf, true);
        assert_eq!(WNode::decode(&buf, true), node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = WNode::Internal {
            entries: vec![
                WEntry {
                    child: BlockId(1),
                    subrange: 0,
                    weight: 40,
                    size: 35,
                },
                WEntry {
                    child: BlockId(2),
                    subrange: 9,
                    weight: 50,
                    size: 50,
                },
            ],
        };
        let mut buf = vec![0u8; 64];
        node.encode(&mut buf, false);
        let back = WNode::decode(&buf, false);
        assert_eq!(back, node);
        assert_eq!(back.weight(), 90);
        assert_eq!(back.size(), 85);
    }

    #[test]
    fn header_constants_match_encoding() {
        let node = WNode::leaf(5);
        let mut buf = vec![0u8; LEAF_HEADER];
        node.encode(&mut buf, false); // exactly the header fits
        let node = WNode::Internal { entries: vec![] };
        let mut buf = vec![0u8; INTERNAL_HEADER];
        node.encode(&mut buf, false);
    }
}
